"""Heterogeneous apiary: mixing per-service wake-up frequencies.

§IV notes that different beehive services justify different wake-up
frequencies (temperature tracking: 60–120 min; dataset collection: 5 min).
This example provisions a shared server pool for an apiary mixing both kinds
of hive and shows the benefit of phase-staggering slow uploaders — one
server can carry several times its per-cycle capacity in slow clients.

Run:
    python examples/mixed_apiary.py
"""

from repro.core.calibration import CYCLE_SECONDS
from repro.core.mixed import ClientGroup, simulate_mixed_fleet
from repro.core.routines import EDGE_CLOUD_SVM, EDGE_SVM
from repro.util.tabulate import render_table


def group(name: str, count: int, period_mult: int, uploads: bool = True) -> ClientGroup:
    base = EDGE_CLOUD_SVM.client if uploads else EDGE_SVM.client
    return ClientGroup(name, base.with_period(CYCLE_SECONDS * period_mult), count, uploads=uploads)


def main() -> None:
    server = EDGE_CLOUD_SVM.server  # 18 slots x 10 clients = 180 uploads/cycle

    # --- an apiary cooperative's mixed fleet -------------------------------
    fleet = [
        group("research hives (audio @5 min)", 120, 1),
        group("monitoring hives (@30 min)", 600, 6),
        group("legacy hives (edge-only)", 80, 1, uploads=False),
    ]
    result = simulate_mixed_fleet(fleet, server)
    print(result.render())
    print(
        f"\nPer-cycle uploads: {result.due_per_cycle[:6]}... "
        f"(peak {result.peak_due} of {server.slots_per_cycle()*server.max_parallel} per server)"
    )

    # --- the staggering effect ---------------------------------------------
    print()
    rows = []
    for mult in (1, 2, 4, 6):
        r = simulate_mixed_fleet([group(f"{mult}x", 600, mult)], server)
        rows.append((
            f"600 hives @ {5*mult} min",
            r.n_servers,
            r.server_energy_per_cycle,
            r.server_energy_per_cycle / 600,
        ))
    print(render_table(
        ["Fleet", "Servers", "Server J/cycle", "Server J/cycle/hive"],
        rows,
        formats=[None, "d", ".0f", ".2f"],
        title="Phase staggering: slower uploaders share servers across cycles",
    ))
    print(
        "\nReading: at 30-minute uploads, 600 hives fit one server (100 due per\n"
        "cycle) instead of the four a 5-minute schedule would need — the slot\n"
        "calendar, not the fleet size, is the scarce resource."
    )


if __name__ == "__main__":
    main()
