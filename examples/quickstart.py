"""Quickstart: where should the queen-detection service run?

Builds the paper's two placements (edge vs edge+cloud), simulates a fleet of
smart beehives for one 5-minute cycle, and prints the per-client energy
comparison plus the crossover analysis.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro import EDGE_CLOUD_SVM, EDGE_SVM, simulate_fleet, sweep_clients, find_crossover
from repro.util.tabulate import render_table


def main() -> None:
    # --- one fleet, both placements ------------------------------------
    fleet_size = 400
    edge = simulate_fleet(fleet_size, EDGE_SVM)
    cloud = simulate_fleet(fleet_size, EDGE_CLOUD_SVM, max_parallel=35)

    print(
        render_table(
            ["Placement", "Servers", "Edge J/client", "Server J/client", "Total J/client"],
            [
                ("edge only", edge.n_servers, edge.edge_energy_per_client, 0.0,
                 edge.total_energy_per_client),
                ("edge + cloud", cloud.n_servers, cloud.edge_energy_per_client,
                 cloud.server_energy_per_client, cloud.total_energy_per_client),
            ],
            formats=[None, "d", ".1f", ".1f", ".1f"],
            title=f"One 5-minute cycle, {fleet_size} smart beehives",
        )
    )
    saving = 1.0 - cloud.edge_energy_per_client / edge.total_energy_per_client
    print(f"\nOffloading saves {saving:.1%} of each beehive's scarce solar energy")
    print("(the cloud server pays the difference from grid power).\n")

    # --- where does edge+cloud win end-to-end? -----------------------------
    n = np.arange(100, 2001)
    edge_sweep = sweep_clients(n, EDGE_SVM)
    cloud_sweep = sweep_clients(n, EDGE_CLOUD_SVM, max_parallel=35)
    report = find_crossover(
        n, edge_sweep.total_energy_per_client, cloud_sweep.total_energy_per_client
    )
    print(report.render())


if __name__ == "__main__":
    main()
