"""Solar autonomy study: picking the wake-up frequency for a hive.

Recreates the §IV trade-off on synthetic weather: higher wake-up frequencies
collect more data but drain the battery faster; overcast weeks push frequent
schedules into night-time outages (the dark gaps of Figure 2a).  For each
wake-up period and weather regime, the example simulates a week of the full
energy chain (panel → converter → battery → duty-cycled load) and reports
uptime, outages and the data-collection yield.

Run:
    python examples/solar_autonomy.py
"""

import numpy as np

from repro.core.client import average_power_for_period
from repro.devices.specs import RASPBERRY_PI_ZERO_WH
from repro.energy.battery import Battery
from repro.energy.converter import DCDCConverter
from repro.energy.harvest import EnergyNode, HarvestSimulation
from repro.energy.solar import SolarPanel
from repro.sensing.weather import WeatherModel
from repro.util.tabulate import render_table
from repro.util.units import DAY, MINUTE


def simulate_week(wakeup_period: float, cloudiness: float, seed: int) -> dict:
    weather = WeatherModel(cloudiness=cloudiness).generate(duration=7 * DAY, step=300.0, seed=seed)
    load = RASPBERRY_PI_ZERO_WH.power["idle"] + average_power_for_period(wakeup_period)
    node = EnergyNode(
        panel=SolarPanel(),
        converter=DCDCConverter(),
        battery=Battery(capacity_joules=Battery.DEFAULT_CAPACITY * 0.25, soc=0.6),
    )
    sim = HarvestSimulation(
        node,
        irradiance_fn=lambda t: float(weather.irradiance.at(t)),
        load_fn=lambda t, available: load,
        step=300.0,
    )
    result = sim.run(7 * DAY)
    cycles_possible = int(7 * DAY / wakeup_period)
    cycles_collected = int(result.uptime_fraction * cycles_possible)
    return {
        "uptime": result.uptime_fraction,
        "outages": len(result.outages()),
        "cycles": cycles_collected,
        "audio_hours": cycles_collected * 3 * 10 / 3600.0,  # 3 x 10 s clips per cycle
    }


def main(seed: int = 11) -> None:
    for cloudiness, label in ((0.2, "sunny spring week"), (0.7, "overcast week")):
        rows = []
        for period_min in (5, 10, 15, 30, 60, 120):
            stats = simulate_week(period_min * MINUTE, cloudiness, seed)
            rows.append((
                period_min,
                average_power_for_period(period_min * MINUTE),
                f"{stats['uptime']:.0%}",
                stats["outages"],
                stats["cycles"],
                stats["audio_hours"],
            ))
        print(render_table(
            ["Wake-up (min)", "Avg power (W)", "Uptime", "Outages", "Cycles/week", "Audio (h)"],
            rows,
            formats=["d", ".2f", None, "d", "d", ".1f"],
            title=f"One week, cloudiness={cloudiness:.0%} ({label})",
        ))
        print()
    print(
        "Reading: frequent wake-ups maximize data yield in good weather but\n"
        "multiply outages when the sky closes — the §IV motivation for making\n"
        "the wake-up frequency a tunable, service-dependent parameter."
    )


if __name__ == "__main__":
    main()
