"""The queen-detection service end to end, with its energy price tag.

Synthesizes a labeled hive-audio corpus, extracts the paper's mel-spectrogram
features, trains the SVM classifier (paper settings: RBF, C=20) and a small
CNN, evaluates both, and prices each model's inference on the Raspberry Pi
3b+ with the calibrated FLOP → energy model.

Run:
    python examples/queen_detection_pipeline.py
"""

import numpy as np

from repro.audio.dataset import DatasetSpec, QueenDataset
from repro.core.calibration import PAPER
from repro.dsp.features import mel_statistics
from repro.dsp.image import spectrogram_to_image
from repro.dsp.spectrogram import MelSpectrogram, SpectrogramConfig
from repro.ml.metrics import accuracy, confusion_matrix, precision_recall_f1
from repro.ml.nn.flops import InferenceCostModel, count_flops
from repro.ml.nn.resnet import resnet18, small_cnn
from repro.ml.nn.train import TrainConfig, Trainer
from repro.ml.scaler import StandardScaler
from repro.ml.split import train_test_split
from repro.ml.svm import SVC
from repro.util.tabulate import render_kv, render_table


def main(n_samples: int = 240, clip_duration: float = 3.0, seed: int = 5) -> None:
    # --- corpus & features ------------------------------------------------
    print(f"Synthesizing {n_samples} hive clips of {clip_duration:g} s ...")
    dataset = QueenDataset(DatasetSpec.small(n_samples=n_samples, clip_duration=clip_duration, seed=seed))
    mel = MelSpectrogram(SpectrogramConfig())  # paper: n_fft 2048, hop 512, 128 mels
    specs, labels = dataset.features(mel.db)

    # --- SVM on mel statistics ----------------------------------------------
    X = np.stack([mel_statistics(s) for s in specs])
    Xtr, Xte, ytr, yte = train_test_split(X, labels, test_fraction=0.3, seed=seed)
    scaler = StandardScaler()
    svm = SVC(C=20.0, kernel="rbf", gamma="scale", seed=seed)
    svm.fit(scaler.fit_transform(Xtr), ytr)
    svm_preds = svm.predict(scaler.transform(Xte))

    # --- CNN on 32x32 spectrogram images ------------------------------------
    images = np.stack([spectrogram_to_image(s, 32) for s in specs])[:, None]
    Itr, Ite, yitr, yite = train_test_split(images, labels, test_fraction=0.3, seed=seed)
    trainer = Trainer(small_cnn(seed=seed), TrainConfig(epochs=6, lr=0.01, batch_size=16, seed=seed))
    trainer.fit(Itr, yitr)
    cnn_acc = trainer.evaluate(Ite, yite)

    # --- report accuracy ------------------------------------------------------
    prf = precision_recall_f1(yte, svm_preds, positive=1)
    print(render_kv(
        [
            ("SVM accuracy", f"{accuracy(yte, svm_preds):.3f}"),
            ("SVM precision / recall / F1",
             f"{prf['precision']:.3f} / {prf['recall']:.3f} / {prf['f1']:.3f}"),
            ("CNN (miniature) accuracy", f"{cnn_acc:.3f}"),
        ],
        title="\nQueen detection on held-out clips",
    ))
    print("\nSVM confusion matrix (rows: true queenless/queenright):")
    print(confusion_matrix(yte, svm_preds, labels=[0, 1]))

    # --- energy price on the Pi 3b+ -------------------------------------------
    model = resnet18(in_channels=1)
    anchor = count_flops(model, (1, PAPER.cnn_image_size, PAPER.cnn_image_size))
    cost = InferenceCostModel.calibrate(
        anchor_flops=anchor, anchor_seconds=PAPER.cnn_edge_s,
        active_watts=PAPER.cnn_edge_j / PAPER.cnn_edge_s, fixed_overhead_s=5.0,
    )
    rows = []
    for size in (32, 64, 100, 160):
        flops = count_flops(model, (1, size, size))
        t, e = cost.cost(flops)
        rows.append((f"{size}x{size}", flops / 1e9, t, e))
    print()
    print(render_table(
        ["CNN input", "GFLOPs", "Pi 3b+ time (s)", "Pi 3b+ energy (J)"],
        rows,
        formats=[None, ".2f", ".1f", ".1f"],
        title="ResNet-18 inference cost at the edge (calibrated to the paper's 100x100 anchor)",
    ))
    print("\nThe SVM costs", f"{PAPER.svm_edge_j:.1f} J", "at the edge vs",
          f"{PAPER.svm_cloud_j:.1f} J", "in the cloud — placement, not model choice, decides.")


if __name__ == "__main__":
    main()
