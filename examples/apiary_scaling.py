"""Capacity planning for a cooperative of beekeepers.

Scenario: several beekeepers pool their smart beehives behind shared cloud
servers ("an organization of several beekeepers putting their hardware in
one unique network", §VI).  This example answers the operator questions:

1. How many servers does a fleet of N hives need, with and without
   real-world losses?
2. At what fleet size does the shared cloud become the energy-efficient
   choice, and how does the per-slot admission cap move that point?
3. How much solar-side energy does each hive save by offloading?

Run:
    python examples/apiary_scaling.py
"""

import numpy as np

from repro.core.crossover import find_crossover, tipping_max_parallel
from repro.core.losses import LossConfig
from repro.core.routines import make_scenario
from repro.core.sweep import sweep_clients
from repro.util.tabulate import render_table


def main() -> None:
    edge = make_scenario("edge", "svm")
    fleet = np.arange(50, 2001)

    # --- Q1: server provisioning table -----------------------------------
    cloud35 = make_scenario("edge+cloud", "svm", max_parallel=35)
    ideal = sweep_clients(fleet, cloud35)
    lossy = sweep_clients(fleet, cloud35, losses=LossConfig.all_paper(), seed=42)
    rows = []
    for n in (100, 250, 500, 1000, 1500, 2000):
        i = int(np.searchsorted(fleet, n))
        rows.append((n, int(ideal.n_servers[i]), int(lossy.n_servers[i]),
                     ideal.total_energy_per_client[i], lossy.total_energy_per_client[i]))
    print(render_table(
        ["Hives", "Servers (ideal)", "Servers (lossy)", "J/hive (ideal)", "J/hive (lossy)"],
        rows,
        formats=["d", "d", "d", ".1f", ".1f"],
        title="Provisioning a shared apiary network (35 hives per time slot)",
    ))

    # --- Q2: crossover vs per-slot admission cap ------------------------------
    print()
    edge_sweep = sweep_clients(fleet, edge)
    rows = []
    for parallel in (10, 20, 26, 35, 50):
        cloud = make_scenario("edge+cloud", "svm", max_parallel=parallel)
        sweep = sweep_clients(fleet, cloud)
        rep = find_crossover(fleet, edge_sweep.total_energy_per_client, sweep.total_energy_per_client)
        rows.append((
            parallel,
            sweep.slots_per_server * parallel,
            rep.first_crossover if rep.first_crossover else "never",
            f"{rep.max_gap_j:.1f}" if rep.max_gap_j > 0 else "-",
            f"{rep.fraction_cloud_better:.0%}",
        ))
    print(render_table(
        ["Clients/slot", "Server capacity", "First crossover", "Max gain (J/hive)", "Cloud wins on"],
        rows,
        title="When does the shared cloud beat edge-only? (ideal conditions)",
    ))
    tip = tipping_max_parallel(edge, make_scenario("edge+cloud", "svm"))
    print(f"\nTipping admission cap (paper: 26 clients/slot): {tip}")

    # --- Q3: solar-side savings -----------------------------------------------
    cloud_client = make_scenario("edge+cloud", "svm").client
    edge_client = edge.client
    per_day = (edge_client.cycle_energy - cloud_client.cycle_energy) * 86400 / edge_client.period
    print(
        f"\nEach hive's solar budget saves "
        f"{edge_client.cycle_energy - cloud_client.cycle_energy:.1f} J per 5-minute cycle "
        f"({per_day/3600:.1f} Wh/day) by offloading — "
        "bought with grid energy at the server."
    )


if __name__ == "__main__":
    main()
