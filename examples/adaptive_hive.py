"""Adaptive beehive intelligence (the paper's future-work scenario).

The paper's conclusion proposes letting the connected beehive "tune its
parameters and choose between a set of scenarios".  This example runs that
idea: an energy-aware controller that re-plans the wake-up period every hour
from the battery level and a learned solar-harvest forecast, compared with
the §IV fixed schedules, across weather regimes.

Run:
    python examples/adaptive_hive.py
"""

from repro.core.adaptive import AdaptiveDutyCycle, DutyCyclePolicy, simulate_adaptive_week
from repro.util.tabulate import render_table
from repro.util.units import MINUTE


def main(seed: int = 11) -> None:
    controller = AdaptiveDutyCycle(DutyCyclePolicy())
    for cloudiness, label in ((0.3, "mostly sunny"), (0.5, "mixed"), (0.7, "overcast")):
        rows = []
        for name, kwargs in (
            ("fixed 5 min", {"fixed_period": 5 * MINUTE}),
            ("fixed 30 min", {"fixed_period": 30 * MINUTE}),
            ("fixed 120 min", {"fixed_period": 120 * MINUTE}),
            ("adaptive", {"controller": controller}),
        ):
            run = simulate_adaptive_week(cloudiness=cloudiness, seed=seed, **kwargs)
            rows.append((
                name,
                f"{run.uptime_fraction:.1%}",
                int(run.cycles_completed),
                run.mean_period / MINUTE,
                run.soc.min(),
            ))
        print(render_table(
            ["Schedule", "Uptime", "Cycles/week", "Mean period (min)", "Min SoC"],
            rows,
            formats=[None, None, "d", ".0f", ".2f"],
            title=f"One week, cloudiness {cloudiness:.0%} ({label})",
        ))
        print()
    print(
        "Reading: the adaptive schedule matches the slow schedule's 100%\n"
        "uptime while collecting an order of magnitude more data — it speeds\n"
        "up when the battery and forecast allow and backs off before nights\n"
        "it could not survive."
    )


if __name__ == "__main__":
    main()
