"""Loss-model sensitivity: how robust is the edge+cloud advantage?

The paper's §VI-C shows three loss mechanisms eroding the shared-cloud
advantage.  This example sweeps the *magnitude* of each loss (rather than
the single values the paper uses) and reports where the edge+cloud scenario
stops winning — a robustness envelope for the placement decision.

Run:
    python examples/loss_sensitivity.py
"""

import numpy as np

from repro.core.crossover import find_crossover
from repro.core.losses import ClientLoss, LossConfig, SaturationPenalty, TransferTimePenalty
from repro.core.routines import make_scenario
from repro.core.sweep import sweep_clients
from repro.util.tabulate import render_table


def crossover_with(losses: LossConfig, seed: int = 42):
    edge = make_scenario("edge", "svm")
    cloud = make_scenario("edge+cloud", "svm", max_parallel=35)
    n = np.arange(100, 2001)
    e = sweep_clients(n, edge, losses=losses, seed=seed)
    c = sweep_clients(n, cloud, losses=losses, seed=seed)
    return find_crossover(n, e.total_energy_per_client, c.total_energy_per_client)


def main() -> None:
    # --- loss A rate sweep -------------------------------------------------
    rows = []
    for rate in (0.0, 0.02, 0.05, 0.10, 0.20):
        rep = crossover_with(LossConfig(saturation=SaturationPenalty(rate=rate, base="active")))
        rows.append((f"{rate:.0%}", rep.first_crossover or "never", f"{rep.fraction_cloud_better:.0%}"))
    print(render_table(
        ["Penalty per extra client", "First crossover", "Cloud wins on"],
        rows,
        title="Loss A (slot saturation, active-energy base) — rate sweep",
    ))

    # --- loss B stretch sweep ------------------------------------------------
    print()
    rows = []
    for extra in (0.0, 0.5, 1.0, 1.5, 3.0):
        rep = crossover_with(LossConfig(transfer=TransferTimePenalty(extra, cumulative=False)))
        rows.append((f"+{extra:g} s", rep.first_crossover or "never", f"{rep.fraction_cloud_better:.0%}"))
    print(render_table(
        ["Transfer stretch", "First crossover", "Cloud wins on"],
        rows,
        title="Loss B (constant per-transfer stretch) — magnitude sweep",
    ))

    # --- loss C dropout sweep ---------------------------------------------------
    print()
    rows = []
    for frac in (0.0, 0.05, 0.10, 0.20):
        rep = crossover_with(LossConfig(client_loss=ClientLoss(mean_fraction=frac)))
        rows.append((f"{frac:.0%}", rep.first_crossover or "never", f"{rep.fraction_cloud_better:.0%}"))
    print(render_table(
        ["Mean dropout", "First crossover", "Cloud wins on"],
        rows,
        title="Loss C (client dropout) — dropout-rate sweep",
    ))
    print(
        "\nReading: dropout hits the shared cloud hardest — lost clients stop\n"
        "paying into the server's fixed idle cost, so the per-hive advantage\n"
        "shrinks even though every surviving hive still saves energy locally."
    )


if __name__ == "__main__":
    main()
