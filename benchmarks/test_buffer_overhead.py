"""Store-and-forward overhead guard (PR 6).

The intermittent-connectivity subsystem (outage schedules + edge buffers)
is strictly additive: a fleet that schedules **no outage windows** must pay
essentially nothing for carrying the machinery.  This file proves both
halves of that contract on the faulty-fleet paths:

* **zero-cost when disarmed** — ``link_outage=None`` takes the exact
  pre-existing code path (the golden cases already pin bit-identity);
* **near-zero when armed but idle** — an ``always_up`` schedule (which
  compiles zero outage windows) may add per-cycle schedule probes but must
  stay under 5% wall time on both the analytic and the event-driven
  simulators, and must leave every energy array bit-identical.

The timing assertion uses interleaved best-of-N ``perf_counter`` ratios
(as in ``test_obs_overhead.py``) so ambient CI-runner load drifts both
sides equally; the pytest-benchmark cases alongside record absolute
numbers for the CI artifact.  Run with
``pytest benchmarks/test_buffer_overhead.py -s``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.routines import make_scenario
from repro.faults.config import FaultConfig
from repro.faults.desfaults import run_des_faulty_fleet
from repro.faults.fleetsim import run_faulty_fleet
from repro.faults.spec import ClientCrash, LinkBlackout, ServerOutage
from repro.network.buffer import BufferSpec
from repro.network.outage import OutagePattern

#: Acceptance says "under a few percent"; 5% leaves headroom for CI noise
#: on runs whose true overhead measures well under 1% locally.
MAX_OVERHEAD = 0.05

N_CLIENTS = 400
N_CYCLES = 120
DES_CLIENTS = 150
DES_CYCLES = 16


def _faults(armed: bool) -> FaultConfig:
    """The golden-case fault mix, optionally carrying an idle outage layer."""
    return FaultConfig(
        server_outage=ServerOutage(mtbf_s=900.0, repair_s=240.0),
        link_blackout=LinkBlackout(mtbf_s=2400.0, repair_s=60.0),
        client_crash=ClientCrash(mtbf_s=6000.0, repair_s=0.0),
        link_outage=OutagePattern.always_up() if armed else None,
        buffer=BufferSpec.for_cycles(4) if armed else None,
    )


def _scenario():
    return make_scenario("edge+cloud", "svm", max_parallel=35)


def _analytic(armed: bool):
    return run_faulty_fleet(
        N_CLIENTS, _scenario(), faults=_faults(armed), n_cycles=N_CYCLES, seed=3
    )


def _des(armed: bool):
    return run_des_faulty_fleet(
        DES_CLIENTS, _scenario(), faults=_faults(armed), n_cycles=DES_CYCLES, seed=7
    )


def _time_once(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _overhead(fn, rounds: int = 7) -> float:
    """Interleaved best-of-N overhead of fn(True) over fn(False)."""
    fn(True)  # warm both paths before timing either
    fn(False)
    off = on = float("inf")
    for _ in range(rounds):
        off = min(off, _time_once(lambda: fn(False)))
        on = min(on, _time_once(lambda: fn(True)))
    return on / off - 1.0


def test_idle_schedule_is_bit_identical_analytic():
    """always_up + buffer must not move a single joule on the analytic path."""
    base, armed = _analytic(False), _analytic(True)
    np.testing.assert_array_equal(base.edge_energy_j, armed.edge_energy_j)
    np.testing.assert_array_equal(base.server_energy_j, armed.server_energy_j)
    assert armed.buffer_report is not None
    assert armed.buffer_report.offered_payloads == 0


def test_idle_schedule_is_bit_identical_des():
    base, armed = _des(False), _des(True)
    assert base.total_energy_j == armed.total_energy_j
    assert base.report.availability == armed.report.availability


def test_analytic_overhead_under_budget():
    overhead = _overhead(_analytic)
    print(f"\nidle-outage overhead, analytic {N_CLIENTS}x{N_CYCLES}: {overhead:+.2%}")
    assert overhead < MAX_OVERHEAD, (
        f"idle outage layer costs {overhead:.2%} on run_faulty_fleet "
        f"(budget {MAX_OVERHEAD:.0%})"
    )


def test_des_overhead_under_budget():
    overhead = _overhead(_des)
    print(f"\nidle-outage overhead, DES {DES_CLIENTS}x{DES_CYCLES}: {overhead:+.2%}")
    assert overhead < MAX_OVERHEAD, (
        f"idle outage layer costs {overhead:.2%} on run_des_faulty_fleet "
        f"(budget {MAX_OVERHEAD:.0%})"
    )


def test_faulty_analytic_idle_outage(benchmark):
    """Absolute number for the CI artifact: armed-but-idle analytic run."""
    result = benchmark(lambda: _analytic(True))
    assert result.n_clients == N_CLIENTS


def test_faulty_des_idle_outage(benchmark):
    result = benchmark(lambda: _des(True))
    assert result.n_clients == DES_CLIENTS
