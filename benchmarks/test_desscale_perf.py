"""Performance benchmarks for the DES fleet-scaling fast path.

Companions to ``bench-desscale`` (:mod:`repro.benchdes`): these guard the
engine fast path and the cohort aggregation against performance
regressions under pytest-benchmark, while the committed
``BENCH_desscale.json`` records the headline per-client-vs-cohort speedup.
"""

from repro.core.dessim import run_des_fleet
from repro.core.routines import EDGE_CLOUD_SVM
from repro.des.engine import Engine


def test_des_per_client_1k(benchmark):
    """Per-client replay, 1000 clients x 5 cycles (the slow baseline)."""
    result = benchmark(run_des_fleet, 1000, EDGE_CLOUD_SVM, n_cycles=5)
    assert result.n_clients == 1000


def test_des_cohort_10k(benchmark):
    """Cohort fast path, 10 000 clients x 5 cycles."""
    result = benchmark(run_des_fleet, 10_000, EDGE_CLOUD_SVM, n_cycles=5, cohort=True)
    assert result.n_clients == 10_000
    assert len(result.client_accounts) < 100  # collapsed to O(slots) cohorts


def test_des_cohort_100k(benchmark):
    """Cohort fast path, 100 000 clients x 5 cycles (interactive scale)."""
    result = benchmark(run_des_fleet, 100_000, EDGE_CLOUD_SVM, n_cycles=5, cohort=True)
    assert result.n_clients == 100_000


def test_engine_timeout_churn(benchmark):
    """Raw kernel throughput: 100k pooled timeouts through one process."""

    def churn():
        eng = Engine(pool_timeouts=True)

        def proc():
            for _ in range(100_000):
                yield eng.timeout(1.0)

        eng.process(proc())
        eng.run()
        return eng.now

    assert benchmark(churn) == 100_000.0
