"""Benchmark: regenerate Figure 9 (loss-laden crossover at 35 clients/slot)."""

from benchmarks.conftest import check, emit
from repro.experiments import fig9_loss_crossover


def test_fig9_loss_crossover(benchmark):
    result = benchmark.pedantic(fig9_loss_crossover.run, rounds=3, iterations=1)
    emit(result)
    check(result)
