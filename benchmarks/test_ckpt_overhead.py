"""Checkpoint overhead guard (PR 5).

Durability must be effectively free at the granularity we checkpoint:
whole simulation chunks.  This file proves it at fleet scale — a sweep
totalling 10k simulated clients, checkpointed after *every* chunk (the
default, maximally durable cadence), must cost less than a few percent of
wall time over the identical uncheckpointed sweep.

The timing assertion measures the overhead *directly*: it times every
``record`` call inside a real checkpointed sweep and asserts that the
summed save time is a small fraction of the sweep's wall clock.  (The
obvious alternative — differencing the wall time of a checkpointed sweep
against an uncheckpointed one — is hopeless against a 5% budget on a
shared machine, where two identical 2s sweeps routinely differ by more
than 5% from ambient load alone.  A ratio taken within one run drifts
with the load on both sides.)  The pytest-benchmark cases alongside
record absolute numbers for the CI artifact.  Run with
``pytest benchmarks/test_ckpt_overhead.py -s``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.core.dessim import run_des_fleet
from repro.core.routines import EDGE_CLOUD_SVM
from repro.resilience.checkpoint import RunCheckpoint
from repro.resilience.supervisor import supervised_map

#: 20 chunks x 500 clients = 10k simulated clients per sweep.
N_ITEMS = 20
CLIENTS_PER_ITEM = 500
N_CYCLES = 10

#: Acceptance says "< 5% wall-time at 10k clients"; the true cost measures
#: well under 1% locally (one fsync per ~100ms simulation chunk).
MAX_OVERHEAD = 0.05


def _simulate(i: int) -> tuple:
    # Per-client DES (cohort=False): each chunk costs what a real sweep
    # grid point costs.  The cohort-collapsed run is so fast (~3ms) that a
    # per-chunk fsync would dominate it — which is exactly why experiments
    # checkpoint at chunk granularity, not finer.
    r = run_des_fleet(CLIENTS_PER_ITEM, EDGE_CLOUD_SVM, n_cycles=N_CYCLES, cohort=False)
    return (float(r.total_energy_j), int(r.n_servers))


class _TimedStage:
    """Forwarding proxy that accounts every second spent persisting.

    ``supervised_map`` only touches ``completed()``, ``record()``,
    ``flush()`` and (via getattr) ``path`` — forward those and clock the
    two that write.
    """

    def __init__(self, stage):
        self._stage = stage
        self.save_s = 0.0

    @property
    def path(self):
        return self._stage.path

    def completed(self):
        return self._stage.completed()

    def record(self, idx, result, units=1):
        t0 = time.perf_counter()
        self._stage.record(idx, result, units=units)
        self.save_s += time.perf_counter() - t0

    def flush(self):
        t0 = time.perf_counter()
        self._stage.flush()
        self.save_s += time.perf_counter() - t0


def _sweep(checkpoint_dir=None):
    if checkpoint_dir is None:
        return supervised_map(_simulate, list(range(N_ITEMS)), chunksize=1)
    rc = RunCheckpoint(Path(checkpoint_dir) / "bench.ckpt.json", run_key="bench")
    return supervised_map(
        _simulate, list(range(N_ITEMS)), chunksize=1, checkpoint=rc.stage("sweep")
    )


def test_checkpoint_overhead_under_budget(tmp_path):
    """Every-chunk checkpointing on a 10k-client sweep costs < MAX_OVERHEAD.

    ``save_s / wall`` from a single real run: ambient load slows the saves
    and the simulation chunks together, so the fraction is stable where a
    two-run wall-clock difference is not.  Median of 3 runs shields the
    verdict from one unlucky fsync burst.
    """
    import statistics

    _sweep(tmp_path)  # warm both paths (imports, allocator) before timing
    fractions = []
    for _ in range(3):
        rc = RunCheckpoint(tmp_path / "bench.ckpt.json", run_key="bench")
        stage = _TimedStage(rc.stage("sweep"))
        t0 = time.perf_counter()
        supervised_map(_simulate, list(range(N_ITEMS)), chunksize=1, checkpoint=stage)
        wall = time.perf_counter() - t0
        fractions.append(stage.save_s / wall)
        print(
            f"\ncheckpoint overhead at {N_ITEMS * CLIENTS_PER_ITEM} clients "
            f"({N_ITEMS} saves/sweep): wall={wall * 1e3:.1f}ms "
            f"saves={stage.save_s * 1e3:.1f}ms ({fractions[-1]:+.2%})"
        )
    overhead = statistics.median(fractions)
    assert overhead < MAX_OVERHEAD, (
        f"checkpoint overhead {overhead:.2%} exceeds {MAX_OVERHEAD:.0%}"
    )


def test_checkpointed_sweep_matches_plain(tmp_path):
    """Durability must not change a single bit of the results."""
    assert _sweep(tmp_path) == _sweep()


def test_sweep_10k_ckpt_off(benchmark):
    """Absolute baseline for the CI artifact."""
    results = benchmark(_sweep)
    assert len(results) == N_ITEMS


def test_sweep_10k_ckpt_on(benchmark):
    """Same sweep checkpointing after every chunk — compare with ckpt-off."""
    with tempfile.TemporaryDirectory() as tmp:
        results = benchmark(lambda: _sweep(tmp))
    assert len(results) == N_ITEMS
