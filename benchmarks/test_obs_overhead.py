"""Observability overhead guard (PR 4).

The ``obs=`` hooks are nullable and default off; this file proves both
halves of that contract at fleet scale:

* **off-path costs nothing** — with no collector, an instrumented run never
  even imports the attribution/ledger/trace machinery (structural proof in
  a subprocess), and the resolve hook is a single module-global read;
* **on-path is cheap** — attaching a collector to the 10k-client cohort
  run adds only a few percent of wall time (the attribution work is
  O(cohorts), not O(clients)).

The timing assertion uses best-of-N ``perf_counter`` ratios rather than
pytest-benchmark so it can compare the two modes inside one test; the
plain pytest-benchmark cases alongside record absolute numbers for the CI
artifact.  Run with ``pytest benchmarks/test_obs_overhead.py -s``.
"""

from __future__ import annotations

import subprocess
import sys
import time

from repro.core.dessim import run_des_fleet
from repro.core.routines import EDGE_CLOUD_SVM
from repro.obs import Obs

N_CLIENTS = 10_000
N_CYCLES = 5

#: Acceptance says "under a few percent"; 5% leaves headroom for CI noise
#: on a run whose true overhead measures well under 1% locally.
MAX_OVERHEAD = 0.05


def _run(obs=None, n_cycles=N_CYCLES):
    return run_des_fleet(N_CLIENTS, EDGE_CLOUD_SVM, n_cycles=n_cycles, cohort=True, obs=obs)


def _time_once(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_off_path_imports_nothing():
    """An obs-off run must not pull in the obs machinery at all.

    ``repro.obs.state`` (the resolve hook) is the only allowed import; the
    ledger/trace/attribution modules load lazily and only when a collector
    is actually attached.
    """
    script = (
        "import sys\n"
        "from repro.core.dessim import run_des_fleet\n"
        "from repro.core.routines import EDGE_CLOUD_SVM\n"
        "from repro.core.simulate import simulate_fleet\n"
        "run_des_fleet(100, EDGE_CLOUD_SVM, n_cycles=2, cohort=True)\n"
        "simulate_fleet(100, EDGE_CLOUD_SVM)\n"
        "heavy = [m for m in sys.modules if m.startswith('repro.obs.') and m != 'repro.obs.state']\n"
        "assert not heavy, heavy\n"
        "print('clean')\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )
    assert out.stdout.strip() == "clean"


def test_on_path_overhead_under_budget():
    """Collector attached: 10k-client cohort run slows by < MAX_OVERHEAD.

    The off/on timings are interleaved and best-of-N so ambient machine
    load drifts both sides equally; the runs use a longer horizon than the
    headline benchmark to push the signal well above timer noise.
    """
    cycles = 20  # ~4x the headline run: ratio noise shrinks with run length
    _run(Obs(), n_cycles=cycles)  # warm both paths before timing either
    off = on = float("inf")
    for _ in range(7):
        off = min(off, _time_once(lambda: _run(n_cycles=cycles)))
        on = min(on, _time_once(lambda: _run(Obs(), n_cycles=cycles)))
    overhead = on / off - 1.0
    print(f"\nobs overhead at {N_CLIENTS} clients x {cycles} cycles: "
          f"off={off * 1e3:.1f}ms on={on * 1e3:.1f}ms ({overhead:+.2%})")
    assert overhead < MAX_OVERHEAD, (
        f"obs on-path overhead {overhead:.2%} exceeds {MAX_OVERHEAD:.0%}"
    )


def test_on_path_still_reconciles_at_scale():
    obs = Obs()
    r = _run(obs)
    assert obs.ledger.reconciles(rtol=1e-6, atol=1e-9)
    assert obs.ledger.total_energy_j > 0
    assert obs.metrics.counter("des.clients").value == N_CLIENTS
    assert r.n_clients == N_CLIENTS


def test_des_cohort_10k_obs_off(benchmark):
    """Absolute baseline for the CI artifact (mirrors test_des_cohort_10k)."""
    result = benchmark(_run)
    assert result.n_clients == N_CLIENTS


def test_des_cohort_10k_obs_on(benchmark):
    """Same run with a live collector — compare against the obs-off case."""
    result = benchmark(lambda: _run(Obs()))
    assert result.n_clients == N_CLIENTS
