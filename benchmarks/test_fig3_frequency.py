"""Benchmark: regenerate Figure 3 (average power vs wake-up frequency)."""

from benchmarks.conftest import check, emit
from repro.experiments import fig3_frequency


def test_fig3_frequency(benchmark):
    result = benchmark.pedantic(fig3_frequency.run, rounds=5, iterations=1)
    emit(result)
    check(result)
