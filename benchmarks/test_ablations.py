"""Ablation benchmarks for the design choices called out in DESIGN.md §7.

Each ablation regenerates a decision-relevant comparison:

* filling policy (first-fit vs round-robin vs balanced) under loss model A;
* slot guard time (0 / 1.5 / 3 s) — capacity and crossover sensitivity;
* analytic cycle model vs discrete-event simulation;
* SVM vs CNN service choice.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.allocator import Allocator, BalancedPolicy, FirstFitPolicy, RoundRobinPolicy
from repro.core.calibration import CYCLE_SECONDS, PAPER
from repro.core.dessim import run_des_fleet
from repro.core.losses import LossConfig, SaturationPenalty
from repro.core.routines import make_scenario
from repro.core.server import paper_server
from repro.core.simulate import simulate_allocation_energy, simulate_fleet
from repro.core.sweep import sweep_clients
from repro.experiments.report import ExperimentResult
from repro.util.tabulate import render_table


def test_ablation_filling_policy_under_saturation(benchmark):
    """Loss A penalizes saturated slots, so slot-spreading policies should
    beat the paper's first-fit whenever spare slots exist."""
    server = paper_server("svm", max_parallel=10)
    losses = LossConfig(saturation=SaturationPenalty())
    n_clients = 100  # slots available to spread into (capacity 180)

    def run():
        rows = []
        for name, policy in (
            ("first-fit (paper)", FirstFitPolicy()),
            ("round-robin", RoundRobinPolicy()),
            ("balanced", BalancedPolicy()),
        ):
            allocator = Allocator(server, losses=losses, policy=policy)
            alloc = allocator.allocate(n_clients)
            energy = simulate_allocation_energy(alloc, server, losses=losses)
            rows.append((name, alloc.n_servers, energy, energy / n_clients))
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    result = ExperimentResult("ablation-policy", "Filling policy under loss A")
    result.tables.append(
        render_table(
            ["Policy", "Servers", "Server energy (J)", "J/client"],
            rows,
            formats=[None, "d", ".0f", ".1f"],
        )
    )
    emit(result)
    first_fit, round_robin, balanced = (r[2] for r in rows)
    assert balanced <= round_robin <= first_fit
    assert balanced < first_fit  # spreading strictly helps at this occupancy


def test_ablation_slot_guard_time(benchmark):
    """Guard time sets the slot count (and thus capacity and crossover)."""

    def run():
        rows = []
        for guard in (0.0, 1.5, 3.0):
            srv = paper_server("svm", max_parallel=35)
            srv = type(srv)(
                name=srv.name, idle_watts=srv.idle_watts, receive_watts=srv.receive_watts,
                transfer_s=srv.transfer_s, service=srv.service, guard_s=guard,
                max_parallel=srv.max_parallel,
            )
            slots = srv.slots_per_cycle(CYCLE_SECONDS)
            full = srv.cycle_energy([35] * slots) / (slots * 35)
            rows.append((guard, slots, slots * 35, full))
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    result = ExperimentResult("ablation-guard", "Slot guard time sensitivity")
    result.tables.append(
        render_table(
            ["Guard (s)", "Slots/cycle", "Capacity", "Server J/client (full)"],
            rows,
            formats=[".1f", "d", "d", ".1f"],
        )
    )
    emit(result)
    slot_counts = [r[1] for r in rows]
    assert slot_counts[0] >= slot_counts[1] >= slot_counts[2]
    # The paper's geometry: guard 1.5 s -> 18 slots -> 630-client server.
    assert rows[1][1] == 18 and rows[1][2] == 630


def test_ablation_des_vs_analytic(benchmark):
    """The event-driven replay agrees with the closed-form model exactly;
    the benchmark records their relative cost."""
    scenario = make_scenario("edge+cloud", "svm", max_parallel=10)

    def run():
        des = run_des_fleet(120, scenario, n_cycles=1)
        analytic = simulate_fleet(120, scenario)
        return des, analytic

    des, analytic = benchmark.pedantic(run, rounds=2, iterations=1)
    assert des.server_energy_j == pytest.approx(analytic.server_energy_j, rel=1e-9)
    assert des.edge_energy_j == pytest.approx(analytic.edge_energy_j, rel=1e-9)


def test_ablation_service_choice_svm_vs_cnn(benchmark):
    """§V: the service choice moves edge cost by ~0.3% and cloud cost by
    ~0.4% — placement, not model choice, dominates."""

    def run():
        out = {}
        for model in ("svm", "cnn"):
            edge = make_scenario("edge", model)
            cloud = make_scenario("edge+cloud", model, max_parallel=10)
            cap = cloud.server.slots_per_cycle() * 10
            full = simulate_fleet(cap, cloud)
            out[model] = (edge.client_cycle_energy, full.total_energy_per_client)
        return out

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    result = ExperimentResult("ablation-service", "SVM vs CNN service")
    result.tables.append(
        render_table(
            ["Model", "Edge J/client", "Edge+Cloud best J/client"],
            [(m, *v) for m, v in out.items()],
            formats=[None, ".1f", ".1f"],
        )
    )
    emit(result)
    edge_delta = abs(out["cnn"][0] - out["svm"][0]) / out["svm"][0]
    assert edge_delta < 0.01  # paper: 0.3%


def test_ablation_sweep_grid_density(benchmark):
    """Crossover locations are stable under grid refinement."""
    from repro.core.crossover import find_crossover

    edge = make_scenario("edge", "svm")
    cloud = make_scenario("edge+cloud", "svm", max_parallel=35)

    def run():
        out = {}
        for step in (1, 5, 10):
            n = np.arange(100, 2001, step)
            e = sweep_clients(n, edge)
            c = sweep_clients(n, cloud)
            rep = find_crossover(n, e.total_energy_per_client, c.total_energy_per_client)
            out[step] = rep.first_crossover
        return out

    out = benchmark.pedantic(run, rounds=2, iterations=1)
    values = list(out.values())
    assert max(values) - min(values) <= 10
