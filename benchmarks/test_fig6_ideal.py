"""Benchmark: regenerate Figure 6 (ideal large-scale simulation)."""

from benchmarks.conftest import check, emit
from repro.experiments import fig6_ideal


def test_fig6_ideal(benchmark):
    result = benchmark.pedantic(fig6_ideal.run, rounds=3, iterations=1)
    emit(result)
    check(result)
