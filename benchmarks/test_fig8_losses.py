"""Benchmark: regenerate Figure 8 (loss models A/B/C and their combination)."""

from benchmarks.conftest import check, emit
from repro.experiments import fig8_losses


def test_fig8_losses(benchmark):
    result = benchmark.pedantic(fig8_losses.run, rounds=3, iterations=1)
    emit(result)
    check(result)
