"""Shared helpers for the benchmark suite.

Each benchmark regenerates one paper table/figure, prints the reproduced
rows/series next to the paper's values, and times the run via
pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def emit(result) -> None:
    """Print an experiment's reproduction report (visible with -s or -rA)."""
    print()
    print(result.render())


def check(result, allow_deviations: tuple = ()) -> None:
    """Fail the benchmark if any toleranced comparison deviates."""
    failures = [
        f"{c.quantity}: paper={c.paper_value} measured={c.measured_value} ({c.deviation_pct:+.1f}%)"
        for c in result.comparisons
        if c.within_tolerance is False and c.quantity not in allow_deviations
    ]
    assert not failures, f"{result.experiment_id} deviates:\n" + "\n".join(failures)
