"""Benchmark: regenerate Table I (edge scenario task breakdown)."""

from benchmarks.conftest import check, emit
from repro.experiments import table1_edge


def test_table1_edge(benchmark):
    result = benchmark.pedantic(table1_edge.run, rounds=3, iterations=1)
    emit(result)
    check(result)
