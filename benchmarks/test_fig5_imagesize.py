"""Benchmark: regenerate Figure 5 (CNN energy & accuracy vs image size).

The energy curve uses the full ResNet-18 FLOP model at the paper's sizes.
The accuracy curve trains on a mid-scale synthetic corpus (the paper-scale
1647×10 s corpus produces the same curve but takes far longer; the corpus
spec is one argument away).
"""

from benchmarks.conftest import check, emit
from repro.audio.dataset import DatasetSpec
from repro.experiments import fig5_imagesize


def test_fig5_energy_and_accuracy(benchmark):
    result = benchmark.pedantic(
        lambda: fig5_imagesize.run(
            sizes=(20, 40, 60, 100, 140, 180, 220),
            dataset_spec=DatasetSpec.small(n_samples=240, clip_duration=3.0, seed=5),
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    check(result)
