"""Microbenchmark guard for the specialized ``Engine.run`` event loops.

``Engine.run`` hoists the pool / clock-check / backend conditionals out of
the hot loop and dispatches to one of four specialized loops (heap-plain,
heap-pooled, heap-checked, wheel).  Each loop is timed here on the same
timeout-heavy workload so a regression in any single path shows up in
pytest-benchmark's comparison tables; every variant must also agree on the
final clock and event count, which pins the dispatch itself.
"""

import pytest

from repro.des.engine import Engine

# 64 interleaved processes x 500 timeouts with co-prime delays: enough
# churn to dominate fixed costs, small enough to keep CI time modest.
N_PROCS = 64
N_STEPS = 500
EXPECTED_EVENTS = N_PROCS * N_STEPS


def _churn(**engine_kwargs):
    eng = Engine(**engine_kwargs)

    def proc(delay):
        for _ in range(N_STEPS):
            yield eng.timeout(delay)

    for i in range(N_PROCS):
        eng.process(proc(1.0 + (i % 7) * 0.25))
    eng.run()
    return eng


VARIANTS = {
    "heap-plain": {},
    "heap-pooled": {"pool_timeouts": True},
    "heap-checked": {"check_clock": True, "pool_timeouts": True},
    "wheel": {"queue": "wheel", "pool_timeouts": True},
}


@pytest.mark.parametrize("variant", VARIANTS)
def test_engine_run_loop(benchmark, variant):
    """Time one specialized run loop on the shared timeout workload."""
    eng = benchmark(_churn, **VARIANTS[variant])
    assert eng.events_fired >= EXPECTED_EVENTS


def test_variants_agree():
    """All four loops drain the same workload to identical end states."""
    engines = {name: _churn(**kwargs) for name, kwargs in VARIANTS.items()}
    baseline = engines["heap-plain"]
    for name, eng in engines.items():
        assert eng.now == baseline.now, name
        assert eng.events_fired == baseline.events_fired, name
