"""Benchmark: regenerate Figure 7 (edge vs edge+cloud crossovers)."""

from benchmarks.conftest import check, emit
from repro.experiments import fig7_crossover


def test_fig7_crossover(benchmark):
    result = benchmark.pedantic(fig7_crossover.run, rounds=3, iterations=1)
    emit(result)
    check(result)
