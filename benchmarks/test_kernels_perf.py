"""Performance benchmarks for the hot computational kernels.

These are not paper artifacts — they guard the vectorized implementations
(mel pipeline, im2col convolution, Gram matrix, fleet sweep) against
performance regressions, per the optimize-by-measurement workflow.
"""

import numpy as np
import pytest

from repro.core.routines import EDGE_CLOUD_SVM
from repro.core.sweep import sweep_clients
from repro.dsp.spectrogram import MelSpectrogram, SpectrogramConfig
from repro.ml.kernels import rbf_kernel
from repro.ml.nn.layers import Conv2d
from repro.ml.nn.resnet import resnet18


@pytest.fixture(scope="module")
def audio_clip():
    return np.random.default_rng(0).normal(size=220500)  # 10 s @ 22 050 Hz


def test_mel_spectrogram_10s_clip(benchmark, audio_clip):
    """Full paper-settings mel pipeline on one 10-second clip."""
    mel = MelSpectrogram(SpectrogramConfig())
    out = benchmark(mel.db, audio_clip)
    assert out.shape == (128, 431)


def test_conv2d_forward(benchmark):
    """A ResNet-stage-sized convolution via im2col."""
    conv = Conv2d(64, 64, 3, stride=1, padding=1, seed=0)
    x = np.random.default_rng(0).normal(size=(4, 64, 25, 25))
    out = benchmark(conv.forward, x)
    assert out.shape == (4, 64, 25, 25)


def test_resnet18_inference_small(benchmark):
    """Quarter-width ResNet-18 forward pass at 64x64."""
    model = resnet18(in_channels=1, width=0.25, seed=0)
    x = np.random.default_rng(0).normal(size=(1, 1, 64, 64))
    logits = benchmark(lambda: model.forward(x, training=False))
    assert logits.shape == (1, 2)


def test_rbf_gram_matrix(benchmark):
    """Gram matrix of a paper-scale SVM training set (1647 x 256 features)."""
    X = np.random.default_rng(0).normal(size=(1647, 256))
    K = benchmark(rbf_kernel, X, X, 1e-5)
    assert K.shape == (1647, 1647)


def test_fleet_sweep_2000_points(benchmark):
    """The closed-form sweep over 2000 fleet sizes (Figure 7's grid)."""
    n = np.arange(1, 2001)
    result = benchmark(sweep_clients, n, EDGE_CLOUD_SVM)
    assert result.n_servers[-1] > 0
