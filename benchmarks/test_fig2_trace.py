"""Benchmark: regenerate Figure 2 (week-long trace and wake-up spikes)."""

from benchmarks.conftest import check, emit
from repro.experiments import fig2_trace


def test_fig2_week_trace(benchmark):
    result = benchmark.pedantic(lambda: fig2_trace.run(days=7.0, seed=11), rounds=1, iterations=1)
    emit(result)
    check(result)
