"""Benchmark: regenerate Table II (edge+cloud task breakdown)."""

from benchmarks.conftest import check, emit
from repro.experiments import table2_edgecloud


def test_table2_edgecloud(benchmark):
    result = benchmark.pedantic(table2_edgecloud.run, rounds=3, iterations=1)
    emit(result)
    check(result)
