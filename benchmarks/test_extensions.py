"""Benchmarks for the future-work extension experiments."""

from benchmarks.conftest import check, emit
from repro.experiments import ext_adaptive, ext_contention, ext_mixed, ext_training


def test_ext_adaptive(benchmark):
    result = benchmark.pedantic(ext_adaptive.run, rounds=1, iterations=1)
    emit(result)
    check(result)


def test_ext_contention(benchmark):
    result = benchmark.pedantic(ext_contention.run, rounds=1, iterations=1)
    emit(result)
    # The derived slope is reported against the paper's postulated 1.5 s/client
    # without a hard tolerance (different sharing-efficiency assumptions).
    assert 1.0 < result.comparisons[0].measured_value < 5.0


def test_ext_mixed(benchmark):
    result = benchmark.pedantic(ext_mixed.run, rounds=3, iterations=1)
    emit(result)
    check(result)


def test_ext_training(benchmark):
    result = benchmark.pedantic(ext_training.run, rounds=3, iterations=1)
    emit(result)
    check(result)
