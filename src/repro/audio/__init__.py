"""Synthetic hive-audio substrate.

The paper trains queen-detection models on 1647 real 10-second recordings
sampled at 22 050 Hz.  Real recordings are unavailable, so this package
synthesizes a parametric substitute grounded in hive bioacoustics: a colony
hum is a harmonic stack on the worker wing-beat fundamental (~200-250 Hz)
over broadband noise, and queen status shifts the spectral profile
(queenless colonies raise their fundamental and flatten the harmonic decay;
queenright colonies additionally carry weak queen "piping" tones).

The class cue is deliberately *fine-grained in frequency* so that it
degrades when mel-spectrograms are resized to small images — reproducing
the accuracy-vs-image-size behaviour of the paper's Figure 5.
"""

from repro.audio.synth import HiveSoundSynthesizer, SynthParams, QUEENRIGHT, QUEENLESS
from repro.audio.dataset import QueenDataset, DatasetSpec
from repro.audio.augment import Augmenter, time_shift, add_noise, gain, polarity_invert

__all__ = [
    "HiveSoundSynthesizer",
    "SynthParams",
    "QUEENRIGHT",
    "QUEENLESS",
    "QueenDataset",
    "DatasetSpec",
    "Augmenter",
    "time_shift",
    "add_noise",
    "gain",
    "polarity_invert",
]
