"""Waveform augmentation for the queen-detection corpus.

Small labeled bioacoustic corpora (the paper's is 1647 clips) are routinely
expanded with label-preserving transforms.  All transforms here are
deterministic given a seed and preserve clip length, dtype and the class
cue (which lives in spectral *structure*, not absolute level or phase).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.util.rng import SeedLike, derive_seed, make_rng
from repro.util.validation import check_in_range, check_non_negative


def _check_clip(clip: np.ndarray) -> np.ndarray:
    clip = np.asarray(clip)
    if clip.ndim != 1:
        raise ValueError(f"clip must be 1-D, got shape {clip.shape}")
    return clip


def time_shift(clip: np.ndarray, max_fraction: float = 0.2, seed: SeedLike = None) -> np.ndarray:
    """Circularly shift by up to ``max_fraction`` of the clip length."""
    clip = _check_clip(clip)
    check_in_range(max_fraction, "max_fraction", 0.0, 1.0)
    rng = make_rng(seed)
    max_shift = int(clip.size * max_fraction)
    if max_shift == 0:
        return clip.copy()
    shift = int(rng.integers(-max_shift, max_shift + 1))
    return np.roll(clip, shift)


def add_noise(clip: np.ndarray, snr_db: float = 20.0, seed: SeedLike = None) -> np.ndarray:
    """Add white noise at the given signal-to-noise ratio (dB)."""
    clip = _check_clip(clip).astype(np.float64)
    rng = make_rng(seed)
    power = float(np.mean(clip**2))
    if power == 0:
        return clip.astype(np.float32)
    noise_power = power / (10.0 ** (snr_db / 10.0))
    noisy = clip + rng.normal(0.0, np.sqrt(noise_power), size=clip.size)
    peak = np.abs(noisy).max()
    if peak > 1.0:
        noisy /= peak
    return noisy.astype(np.float32)


def gain(clip: np.ndarray, max_db: float = 6.0, seed: SeedLike = None) -> np.ndarray:
    """Random gain in ±``max_db`` dB, clipped to [-1, 1]."""
    clip = _check_clip(clip).astype(np.float64)
    check_non_negative(max_db, "max_db")
    rng = make_rng(seed)
    factor = 10.0 ** (rng.uniform(-max_db, max_db) / 20.0)
    return np.clip(clip * factor, -1.0, 1.0).astype(np.float32)


def polarity_invert(clip: np.ndarray, seed: SeedLike = None) -> np.ndarray:
    """Flip the waveform sign (phase-inversion; spectrally a no-op)."""
    return (-_check_clip(clip)).astype(np.float32)


#: Default augmentation menu.
DEFAULT_TRANSFORMS: Sequence[Callable] = (time_shift, add_noise, gain, polarity_invert)


class Augmenter:
    """Deterministic corpus expander.

    ``expand(clips, labels, factor)`` returns the original corpus plus
    ``factor−1`` augmented copies of every clip, each produced by a
    seed-derived random transform from the menu.
    """

    def __init__(self, transforms: Sequence[Callable] = DEFAULT_TRANSFORMS, seed: int = 0) -> None:
        if not transforms:
            raise ValueError("transform menu is empty")
        self.transforms = list(transforms)
        self.seed = int(seed)

    def augment_clip(self, clip: np.ndarray, index: int, copy: int) -> np.ndarray:
        """Produce augmented copy ``copy`` of clip ``index`` (deterministic)."""
        rng = make_rng(derive_seed(self.seed, "augment", index, copy))
        transform = self.transforms[int(rng.integers(len(self.transforms)))]
        return transform(clip, seed=derive_seed(self.seed, "params", index, copy))

    def expand(self, clips: Sequence[np.ndarray], labels: Sequence[int], factor: int = 2):
        """Return ``(clips, labels)`` expanded by ``factor``×."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        if len(clips) != len(labels):
            raise ValueError("clips and labels lengths differ")
        out_clips: List[np.ndarray] = []
        out_labels: List[int] = []
        for i, (clip, label) in enumerate(zip(clips, labels)):
            out_clips.append(np.asarray(clip))
            out_labels.append(int(label))
            for copy in range(factor - 1):
                out_clips.append(self.augment_clip(clip, i, copy))
                out_labels.append(int(label))
        return out_clips, np.asarray(out_labels)
