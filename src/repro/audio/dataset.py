"""Labeled queen-detection corpus builder.

Streams synthetic clips so the full paper-scale corpus (1647 × 10 s at
22 050 Hz ≈ 1.4 GB of float32) never has to sit in memory; consumers map
each clip to features as it is produced.  Labels alternate deterministically
given the seed, with a configurable class balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from repro.audio.synth import SAMPLE_RATE, HiveSoundSynthesizer
from repro.util.rng import derive_seed, make_rng
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class DatasetSpec:
    """Corpus description.

    The paper-scale configuration is ``DatasetSpec.paper()``: 1647 clips of
    10 s.  Tests use shorter clips and smaller corpora — the class-cue
    spectral structure is duration-invariant.
    """

    n_samples: int = 1647
    clip_duration: float = 10.0
    sample_rate: int = SAMPLE_RATE
    queen_fraction: float = 0.5
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_samples < 2:
            raise ValueError("n_samples must be >= 2")
        check_positive(self.clip_duration, "clip_duration")
        check_in_range(self.queen_fraction, "queen_fraction", 0.0, 1.0)

    @staticmethod
    def paper(seed: int = 7) -> "DatasetSpec":
        """The corpus size used in §V of the paper."""
        return DatasetSpec(n_samples=1647, clip_duration=10.0, seed=seed)

    @staticmethod
    def small(n_samples: int = 160, clip_duration: float = 2.0, seed: int = 7) -> "DatasetSpec":
        """A laptop-scale corpus for tests and quick experiments."""
        return DatasetSpec(n_samples=n_samples, clip_duration=clip_duration, seed=seed)


class QueenDataset:
    """Iterable corpus of ``(clip, label)`` pairs.

    ``label`` is 1 for queenright, 0 for queenless.  Iteration order and clip
    content are fully determined by ``spec.seed``.
    """

    def __init__(self, spec: DatasetSpec, synth: Optional[HiveSoundSynthesizer] = None) -> None:
        self.spec = spec
        self.synth = synth or HiveSoundSynthesizer(sample_rate=spec.sample_rate)
        self._labels = self._make_labels()

    def _make_labels(self) -> np.ndarray:
        n_queen = int(round(self.spec.n_samples * self.spec.queen_fraction))
        labels = np.zeros(self.spec.n_samples, dtype=np.int64)
        labels[:n_queen] = 1
        # Deterministic shuffle so classes interleave.
        rng = make_rng(derive_seed(self.spec.seed, "labels"))
        rng.shuffle(labels)
        return labels

    def __len__(self) -> int:
        return self.spec.n_samples

    @property
    def labels(self) -> np.ndarray:
        """Label array (copy)."""
        return self._labels.copy()

    def clip(self, index: int) -> Tuple[np.ndarray, int]:
        """Render clip ``index`` (deterministic in index and seed)."""
        if not 0 <= index < len(self):
            raise IndexError(f"index {index} out of range [0, {len(self)})")
        label = int(self._labels[index])
        clip_seed = derive_seed(self.spec.seed, "clip", index)
        clip = self.synth.render(self.spec.clip_duration, queen_present=bool(label), seed=clip_seed)
        return clip, label

    def __iter__(self) -> Iterator[Tuple[np.ndarray, int]]:
        for i in range(len(self)):
            yield self.clip(i)

    def features(self, extractor: Callable[[np.ndarray], np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
        """Map every clip through ``extractor`` and stack results.

        Returns ``(X, y)`` where ``X`` has shape ``(n_samples, *feature_shape)``.
        Memory scales with the *feature* size, not the audio size.
        """
        first, label0 = self.clip(0)
        f0 = np.asarray(extractor(first))
        X = np.empty((len(self),) + f0.shape, dtype=f0.dtype)
        y = np.empty(len(self), dtype=np.int64)
        X[0], y[0] = f0, label0
        for i in range(1, len(self)):
            clip, label = self.clip(i)
            X[i] = extractor(clip)
            y[i] = label
        return X, y
