"""Parametric hive-sound synthesizer.

A rendered clip is the sum of

* a **harmonic stack**: partials ``k·f0`` with geometric amplitude decay and
  slow random amplitude modulation (the colony hum; ``f0`` jitters per clip);
* **queen piping** (queenright only): a weak tone near 400 Hz with vibrato;
* **band noise**: pink-ish broadband noise plus a mid-band fanning component;
* clip-level gain jitter.

Queenright and queenless parameter sets differ in fundamental frequency and
harmonic decay — a spectrally *narrow* difference that low-resolution
spectrogram images blur away, which is what makes the Figure 5 accuracy
curve non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_in_range, check_positive

#: Default sample rate used throughout (paper: 22 050 Hz).
SAMPLE_RATE = 22050


@dataclass(frozen=True)
class SynthParams:
    """Class-conditional synthesis parameters."""

    f0_hz: float = 230.0  # harmonic-stack fundamental
    f0_jitter_hz: float = 12.0  # per-clip fundamental jitter (std)
    n_harmonics: int = 14
    harmonic_decay: float = 0.72  # amplitude ratio between consecutive partials
    hum_level: float = 0.22  # stack amplitude
    piping_hz: float = 400.0  # queen piping carrier
    piping_level: float = 0.0  # 0 disables piping
    piping_vibrato_hz: float = 5.0
    piping_vibrato_depth: float = 8.0
    piping_burst_rate_hz: float = 0.3  # burst gating; duty >= 1 means continuous
    piping_duty: float = 1.0
    #: When > 0, the piping energy is split into two sidebands at
    #: ``piping_hz ± piping_split_hz/2`` with the same *total* power.  A split
    #: is a purely positional spectral cue: coarse spectrogram images cannot
    #: distinguish split from unsplit piping, fine ones can — which is what
    #: gives Figure 5 its accuracy-vs-image-size shape.
    piping_split_hz: float = 0.0
    #: Per-clip jitter (std, Hz) of the piping centre frequency.  Randomizing
    #: the centre removes accidental pixel-grid alignment cues at coarse
    #: image sizes, so only genuinely resolving the split separates classes.
    piping_center_jitter_hz: float = 0.0
    noise_level: float = 0.12  # broadband pink-ish noise
    band_noise_level: float = 0.05  # 400-600 Hz fanning band
    am_rate_hz: float = 4.0  # slow amplitude flutter of the hum
    am_depth: float = 0.25

    def __post_init__(self) -> None:
        check_positive(self.f0_hz, "f0_hz")
        check_in_range(self.harmonic_decay, "harmonic_decay", 0.0, 1.0, low_inclusive=False)
        if self.n_harmonics < 1:
            raise ValueError("n_harmonics must be >= 1")


#: Queenright colony: the queen's piping is a single narrow tone near 400 Hz.
#: The hum parameters are shared with the queenless preset so the classes
#: differ only in the *fine structure* of the 400 Hz region — a positional
#: cue that coarse spectrogram images blur away (Figure 5's accuracy knee).
QUEENRIGHT = SynthParams(
    f0_hz=230.0,
    f0_jitter_hz=10.0,
    harmonic_decay=0.72,
    noise_level=0.10,
    piping_level=0.18,
    piping_vibrato_depth=2.0,
    piping_center_jitter_hz=12.0,
)

#: Queenless colony: the characteristic "roar" carries the same tonal energy
#: near 400 Hz but amplitude-modulated — i.e. split into two sidebands of
#: equal total power.  Identical to queenright below the resolving scale.
QUEENLESS = SynthParams(
    f0_hz=230.0,
    f0_jitter_hz=10.0,
    harmonic_decay=0.72,
    noise_level=0.10,
    piping_level=0.18,
    piping_vibrato_depth=2.0,
    piping_center_jitter_hz=12.0,
    piping_split_hz=70.0,
)


class HiveSoundSynthesizer:
    """Renders labeled hive-audio clips.

    Parameters
    ----------
    sample_rate:
        Output sampling rate in Hz.
    queenright / queenless:
        Class-conditional parameter sets (defaults mirror the module-level
        presets; override for ablations, e.g. shrinking the class separation).
    """

    def __init__(
        self,
        sample_rate: int = SAMPLE_RATE,
        queenright: SynthParams = QUEENRIGHT,
        queenless: SynthParams = QUEENLESS,
    ) -> None:
        if sample_rate < 4000:
            raise ValueError(f"sample_rate must be >= 4000, got {sample_rate}")
        self.sample_rate = int(sample_rate)
        self.queenright = queenright
        self.queenless = queenless

    def params_for(self, queen_present: bool) -> SynthParams:
        return self.queenright if queen_present else self.queenless

    def render(self, duration: float, queen_present: bool, seed: SeedLike = None) -> np.ndarray:
        """Render one clip as float32 in [-1, 1]."""
        check_positive(duration, "duration")
        rng = make_rng(seed)
        p = self.params_for(queen_present)
        sr = self.sample_rate
        n = int(round(duration * sr))
        t = np.arange(n) / sr

        # --- harmonic stack ------------------------------------------------
        f0 = p.f0_hz + rng.normal(0.0, p.f0_jitter_hz)
        f0 = max(f0, 40.0)
        nyquist = sr / 2.0
        amps = p.harmonic_decay ** np.arange(p.n_harmonics)
        freqs = f0 * np.arange(1, p.n_harmonics + 1)
        keep = freqs < 0.95 * nyquist
        freqs, amps = freqs[keep], amps[keep]
        phases = rng.uniform(0.0, 2 * np.pi, size=freqs.size)
        # Per-partial random amplitude wobble (slow): one low-freq sinusoid each.
        wobble_rate = rng.uniform(0.1, 0.6, size=freqs.size)
        wobble_phase = rng.uniform(0.0, 2 * np.pi, size=freqs.size)
        # Vectorized synthesis: partials × time.
        carrier = np.sin(2 * np.pi * freqs[:, None] * t[None, :] + phases[:, None])
        wobble = 1.0 + 0.15 * np.sin(2 * np.pi * wobble_rate[:, None] * t[None, :] + wobble_phase[:, None])
        hum = (amps[:, None] * carrier * wobble).sum(axis=0)
        hum /= max(np.abs(hum).max(), 1e-9)
        # Slow colony-level flutter.
        am = 1.0 + p.am_depth * np.sin(2 * np.pi * p.am_rate_hz * t + rng.uniform(0, 2 * np.pi))
        hum *= am * p.hum_level

        # --- queen piping ----------------------------------------------------
        piping = np.zeros(n)
        if p.piping_level > 0:
            if p.piping_duty >= 1.0:
                gate = 1.0
            else:
                # Piping occurs in bursts: smoothed random on/off pattern.
                gate = self._burst_gate(n, sr, rng, burst_rate_hz=p.piping_burst_rate_hz, duty=p.piping_duty)
            center = p.piping_hz + rng.normal(0.0, p.piping_center_jitter_hz) if p.piping_center_jitter_hz else p.piping_hz
            if p.piping_split_hz > 0:
                carriers = (center - p.piping_split_hz / 2, center + p.piping_split_hz / 2)
                level = p.piping_level / np.sqrt(2.0)  # equal total power
            else:
                carriers = (center,)
                level = p.piping_level
            vib = p.piping_vibrato_depth * np.sin(
                2 * np.pi * p.piping_vibrato_hz * t + rng.uniform(0, 2 * np.pi)
            )
            for carrier in carriers:
                phase = 2 * np.pi * np.cumsum(carrier + vib) / sr
                piping = piping + level * np.sin(phase + rng.uniform(0, 2 * np.pi))
            piping *= gate

        # --- noise ----------------------------------------------------------
        noise = self._pink_noise(n, rng) * p.noise_level
        band = self._band_noise(n, sr, rng, 400.0, 600.0) * p.band_noise_level

        clip = hum + piping + noise + band
        clip *= rng.uniform(0.8, 1.1)  # recording-gain jitter
        peak = np.abs(clip).max()
        if peak > 1.0:
            clip /= peak
        return clip.astype(np.float32)

    # -- noise helpers --------------------------------------------------------
    @staticmethod
    def _pink_noise(n: int, rng: np.random.Generator) -> np.ndarray:
        """Approximate 1/f noise via spectral shaping of white noise."""
        white = rng.normal(0.0, 1.0, size=n)
        spec = np.fft.rfft(white)
        freqs = np.fft.rfftfreq(n)
        shaping = np.ones_like(freqs)
        nonzero = freqs > 0
        shaping[nonzero] = 1.0 / np.sqrt(freqs[nonzero] / freqs[nonzero][0])
        out = np.fft.irfft(spec * shaping, n=n)
        return out / max(np.abs(out).max(), 1e-9)

    @staticmethod
    def _band_noise(n: int, sr: int, rng: np.random.Generator, lo_hz: float, hi_hz: float) -> np.ndarray:
        """White noise band-limited to [lo_hz, hi_hz] via FFT masking."""
        white = rng.normal(0.0, 1.0, size=n)
        spec = np.fft.rfft(white)
        freqs = np.fft.rfftfreq(n, d=1.0 / sr)
        mask = (freqs >= lo_hz) & (freqs <= hi_hz)
        spec = spec * mask
        out = np.fft.irfft(spec, n=n)
        return out / max(np.abs(out).max(), 1e-9)

    @staticmethod
    def _burst_gate(n: int, sr: int, rng: np.random.Generator, burst_rate_hz: float, duty: float) -> np.ndarray:
        """Smooth on/off gating for intermittent sounds."""
        # Low-rate random square wave, smoothed with a raised-cosine ramp.
        period = int(sr / burst_rate_hz)
        n_periods = n // period + 2
        on = rng.random(n_periods) < duty
        gate = np.repeat(on.astype(float), period)[:n]
        ramp = int(0.05 * sr)
        if ramp > 1:
            kernel = 0.5 * (1 - np.cos(2 * np.pi * np.arange(ramp) / ramp))
            kernel /= kernel.sum()
            gate = np.convolve(gate, kernel, mode="same")
        return gate


def class_separation(synth: HiveSoundSynthesizer) -> float:
    """Spectral scale (Hz) of the class cue — the piping-split difference.

    A coarse separability indicator used by tests and ablations; 0 means
    the classes are statistically identical.
    """
    return abs(synth.queenright.piping_split_hz - synth.queenless.piping_split_hz)


def narrowed(synth: HiveSoundSynthesizer, factor: float) -> HiveSoundSynthesizer:
    """Return a synthesizer whose class separation is scaled by ``factor``.

    ``factor=0`` makes the classes statistically identical (accuracy should
    drop to chance) — used by sanity tests on the ML pipeline.
    """
    check_in_range(factor, "factor", 0.0, 1.0)
    qr = synth.queenright
    ql = replace(
        synth.queenless,
        piping_split_hz=qr.piping_split_hz
        + (synth.queenless.piping_split_hz - qr.piping_split_hz) * factor,
    )
    return HiveSoundSynthesizer(synth.sample_rate, qr, ql)
