"""Live fleet orchestration service (ROADMAP item 1).

The batch simulator answers "what would the fleet cost"; this package
*runs* the orchestration: a long-lived process admitting hives, placing
each telemetry/inference request on the edge or in the cloud with the
existing energy models, and exposing the decisions over HTTP.  The core is
:class:`~repro.core.livealloc.LiveAllocation` — the same layout engine the
batch policies fold over — so online placement and batch allocation cannot
disagree (the ``serve-trace`` golden and the hypothesis suite in
``tests/core/test_livealloc.py`` pin this).

Layering, innermost first:

``repro.serve.engine``
    :class:`OrchestrationEngine` — deterministic, transport-free request
    handler (simulated time, obs-instrumented, trace-hashed).
``repro.serve.trace``
    :class:`PlacementTrace` — canonical event log + streaming SHA-256.
``repro.serve.http``
    stdlib single-threaded HTTP front end with graceful SIGTERM shutdown.
``repro.serve.cli``
    the ``repro-serve`` entry point.
``repro.serve.smoke``
    the canonical smoke configuration shared by CI and the golden case.

Drive it with :mod:`repro.loadgen` for seeded, replayable load.
"""

from repro.serve.engine import OPS, OrchestrationEngine, ServeConfig
from repro.serve.trace import PlacementTrace

__all__ = ["OPS", "OrchestrationEngine", "ServeConfig", "PlacementTrace"]
