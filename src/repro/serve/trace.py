"""Deterministic placement trace: the serve layer's golden-able artifact.

Every placement-relevant event the orchestration engine emits — admission,
release, repack, and each request's placement decision — is appended here
in arrival order.  The trace folds a running SHA-256 over a canonical
line rendering (``repr`` floats, so the hash is exact to the bit, same
discipline as the DES event-trace goldens), which makes "same seed, same
run" checkable across processes, transports (in-process vs HTTP), and
time (the committed ``tests/golden/serve-trace.json`` pin).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

#: Bump on any change to the canonical event rendering.
TRACE_VERSION = 1


def render_event(event: Dict[str, Any]) -> str:
    """Canonical one-line rendering of one trace event.

    Floats go through ``repr`` (shortest round-trip form, stable across
    CPython versions we support); keys are sorted so dict construction
    order cannot leak into the hash.
    """
    parts = []
    for key in sorted(event):
        value = event[key]
        if isinstance(value, float):
            parts.append(f"{key}={value!r}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


class PlacementTrace:
    """Append-only event log with a streaming canonical hash.

    ``keep_events=False`` retains only the hash and counters (for sweep
    workloads that replay many runs); the serving CLI keeps the events so
    ``--trace-out`` can flush the full log on shutdown.
    """

    def __init__(self, keep_events: bool = True) -> None:
        self.keep_events = keep_events
        self.n_events = 0
        self._hash = hashlib.sha256()
        self._events: List[Dict[str, Any]] = []

    def append(self, **event: Any) -> None:
        event["seq"] = self.n_events
        self._hash.update(render_event(event).encode("ascii"))
        self._hash.update(b"\n")
        self.n_events += 1
        if self.keep_events:
            self._events.append(event)

    @property
    def events(self) -> List[Dict[str, Any]]:
        if not self.keep_events:
            raise RuntimeError("trace was created with keep_events=False")
        return self._events

    def fingerprint(self) -> str:
        """Hex digest of the canonical event stream so far."""
        return self._hash.hexdigest()

    def to_dict(self, include_events: bool = False) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "trace_version": TRACE_VERSION,
            "n_events": self.n_events,
            "sha256": self.fingerprint(),
        }
        if include_events:
            payload["events"] = [dict(e) for e in self.events]
        return payload

    def dump(self, fh: Any) -> None:
        """Write the full trace (metadata + events) as stable JSON."""
        json.dump(self.to_dict(include_events=True), fh, indent=2, sort_keys=True)
        fh.write("\n")


def trace_summary(trace: Optional[PlacementTrace]) -> Dict[str, Any]:
    """Hash-and-count summary (``{}`` for an absent trace)."""
    return {} if trace is None else trace.to_dict(include_events=False)


__all__ = ["TRACE_VERSION", "PlacementTrace", "render_event", "trace_summary"]
