"""Serve smoke: one canonical serve-under-load run, pinned end to end.

One configuration — 64 hives, ~5.2k requests over a simulated 4000 s —
is shared by three consumers so they can never drift apart:

* the ``serve-trace`` golden case (``repro-golden``): fingerprints the
  in-process replay (placement-trace SHA-256, response SHA-256, placement
  counts, final occupancies) into ``tests/golden/serve-trace.json``;
* the gating ``serve-smoke`` CI job (``python -m repro.serve.smoke --http``):
  boots a real ``repro-serve`` subprocess, replays the same load over HTTP,
  and requires zero errors, an HTTP trace bit-identical to the in-process
  fold, and a match against the committed golden;
* the non-gating ``serve-latency`` CI job (``--latency-out``): uploads the
  p50/p99/RPS report as an artifact.

The fingerprint *refuses* to be taken unless the steady-state live
allocation is bit-identical to the batch ``Allocator.allocate`` fold over
the same client set — the acceptance criterion of the serving PR — the
same refuse-then-pin pattern as the ``des-array``/``faulty-array`` cases.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.loadgen.arrivals import LoadSpec
from repro.loadgen.replay import HttpTransport, ReplayReport, replay, replay_in_process
from repro.serve.engine import OrchestrationEngine, ServeConfig

#: The canonical smoke load: ~64 × (1 admit + 0.02 Hz × 4000 s) ≈ 5.2k requests.
SMOKE_SPEC = LoadSpec(
    n_hives=64,
    rate_hz=0.02,
    horizon_s=4000.0,
    telemetry_fraction=0.5,
    payload_bytes=1024,
    seed=0xBEE5,
    mode="open",
)


def run_smoke_in_process(
    policy: str = "first-fit", policy_seed: int = 0
) -> Tuple[OrchestrationEngine, ReplayReport]:
    """The canonical replay against an in-process engine under ``policy``."""
    engine = OrchestrationEngine(ServeConfig(policy=policy, policy_seed=policy_seed))
    return replay_in_process(SMOKE_SPEC, engine)


def smoke_fingerprint(policy: str = "first-fit", policy_seed: int = 0) -> Dict[str, Any]:
    """Golden-able fingerprint of the canonical run (raises on any breach)."""
    from repro.validate.golden import round_sig

    engine, report = run_smoke_in_process(policy, policy_seed)
    if report.n_errors:
        raise RuntimeError(f"smoke replay produced {report.n_errors} failed responses")
    if not engine.steady_state_matches_batch():
        raise RuntimeError(
            "steady-state live allocation diverged from the batch allocate fold"
        )
    alloc = engine.live.to_allocation()
    latency = engine.latency_report()
    return {
        "spec": SMOKE_SPEC.describe(),
        # the full engine config header (policy params, link, calibration
        # constants): a retuned engine cannot silently share a fingerprint
        "config": engine.config.describe(),
        "n_requests": report.n_requests,
        "n_errors": report.n_errors,
        "by_op": dict(sorted(report.by_op.items())),
        "placements": dict(sorted(report.placements.items())),
        "response_sha256": report.response_sha256,
        "trace_sha256": engine.trace.fingerprint(),
        "trace_events": engine.trace.n_events,
        "fleet": len(engine.live),
        "servers": engine.live.n_servers,
        "occupancies": [srv.occupancies for srv in alloc.servers],
        "latency": {
            kind: {
                "count": stats["count"],
                "p50_s": round_sig(stats["p50_s"]),
                "p99_s": round_sig(stats["p99_s"]),
            }
            for kind, stats in latency.items()
            if isinstance(stats, dict) and stats.get("count")
        },
        "rps": round_sig(latency["rps"]),
    }


# ---------------------------------------------------------------------------
# subprocess HTTP smoke (the gating CI job)
# ---------------------------------------------------------------------------


def _boot_server(
    tmp: Path, policy: str = "first-fit", policy_seed: int = 0
) -> Tuple[subprocess.Popen, str, Path, Path]:
    """Start ``repro-serve`` on an ephemeral port; returns (proc, url, trace, obs)."""
    port_file = tmp / "port"
    trace_out = tmp / "trace.json"
    obs_out = tmp / "obs.json"
    env = dict(os.environ)
    src = Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = f"{src}{os.pathsep}{env['PYTHONPATH']}" if env.get("PYTHONPATH") else str(src)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve.cli",
            "--policy", policy, "--policy-seed", str(policy_seed),
            "--port", "0", "--port-file", str(port_file),
            "--trace-out", str(trace_out), "--obs-out", str(obs_out),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
    )
    deadline = time.monotonic() + 30.0
    while not port_file.exists():
        if proc.poll() is not None:
            raise RuntimeError(f"repro-serve exited early with {proc.returncode}")
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("repro-serve did not write its port file in 30 s")
        time.sleep(0.05)
    port = int(port_file.read_text().strip())
    return proc, f"http://127.0.0.1:{port}", trace_out, obs_out


def run_smoke_http(policy: str = "first-fit", policy_seed: int = 0) -> Dict[str, Any]:
    """Boot a real server, replay the canonical load over HTTP, shut it down.

    Returns ``{report, trace_sha256, trace_events, obs_snapshot}`` read
    back from the server's shutdown artifacts.
    """
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmpdir:
        tmp = Path(tmpdir)
        proc, url, trace_out, obs_out = _boot_server(tmp, policy, policy_seed)
        try:
            transport = HttpTransport(url)
            health = transport.health()
            if not health.get("ok"):
                raise RuntimeError(f"health endpoint not ok: {health}")
            report = replay(SMOKE_SPEC, transport)
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                stdout, _ = proc.communicate(timeout=30.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise RuntimeError("repro-serve did not shut down within 30 s of SIGTERM")
        if proc.returncode != 0:
            raise RuntimeError(f"repro-serve exited {proc.returncode} on SIGTERM")
        trace = json.loads(trace_out.read_text())
        obs_snapshot = json.loads(obs_out.read_text())
        del stdout
        return {
            "report": report,
            "trace_sha256": trace["sha256"],
            "trace_events": trace["n_events"],
            "obs_snapshot": obs_snapshot,
        }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve-smoke",
        description="Replay the canonical serve load and gate on the golden trace.",
    )
    parser.add_argument("--http", action="store_true",
                        help="also boot a repro-serve subprocess and replay over HTTP")
    parser.add_argument("--policy", default="first-fit",
                        help="placement policy to smoke (non-default skips the "
                             "golden compare; zero-error + bit-identity still gate)")
    parser.add_argument("--policy-seed", type=int, default=0,
                        help="seed for stochastic-score policies (swarm-scored)")
    parser.add_argument("--golden-dir", default=None,
                        help="directory holding serve-trace.json (default: tests/golden)")
    parser.add_argument("--latency-out", default=None,
                        help="write the p50/p99/RPS latency report here (CI artifact)")
    args = parser.parse_args(argv)

    from repro.core.placement import normalize_kind
    from repro.validate.golden import diff_fingerprints, load_golden, render_drift_report

    policy = normalize_kind(args.policy)
    fresh = smoke_fingerprint(policy, args.policy_seed)
    print(f"in-process replay [{policy}]: {fresh['n_requests']} requests, "
          f"{fresh['n_errors']} errors, trace {fresh['trace_sha256'][:16]}…")

    canonical = policy == "first-fit" and args.policy_seed == 0
    if canonical:
        directory = Path(args.golden_dir) if args.golden_dir else None
        stored = load_golden("serve-trace", directory)
        drifts = diff_fingerprints(stored["fingerprint"], fresh)
        if drifts:
            print(render_drift_report({"serve-trace": drifts}))
            return 1
        print("golden serve-trace: match")
    else:
        # only the canonical config is pinned; other policies still gate on
        # zero errors (smoke_fingerprint raised otherwise) and, with --http,
        # on subprocess bit-identity below
        print(f"golden serve-trace: skipped (non-canonical policy {policy})")

    if args.latency_out:
        from repro.util.atomic import atomic_write_json

        engine, _report = run_smoke_in_process(policy, args.policy_seed)
        atomic_write_json(
            args.latency_out,
            {"spec": SMOKE_SPEC.describe(), "policy": policy,
             "latency": engine.latency_report()},
            sort_keys=True,
        )
        print(f"latency report written to {args.latency_out}")

    if args.http:
        http = run_smoke_http(policy, args.policy_seed)
        report: ReplayReport = http["report"]
        if report.n_errors:
            print(f"HTTP replay: {report.n_errors} failed responses")
            return 1
        if report.response_sha256 != fresh["response_sha256"]:
            print("HTTP responses diverged from the in-process replay")
            return 1
        if http["trace_sha256"] != fresh["trace_sha256"]:
            print("HTTP server trace diverged from the in-process fold")
            return 1
        if http["obs_snapshot"].get("schema_version") is None:
            print("server obs snapshot missing schema_version")
            return 1
        print(f"HTTP replay: {report.n_requests} requests, 0 errors, "
              "trace bit-identical to in-process")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
