"""stdlib HTTP transport for the orchestration engine.

One deliberately small layer: ``POST /v1/{admit,release,telemetry,inference}``
with a JSON body and ``GET /v1/health`` map straight onto
:meth:`~repro.serve.engine.OrchestrationEngine.handle`.  The server is
**single-threaded by design** — requests are serialized in arrival order,
which is what makes an HTTP replay produce the same placement trace as the
in-process fold (the determinism the ``serve-trace`` golden pins).  A
beekeeping fleet's control plane is a few requests per second; this is not
a throughput play.

Graceful shutdown: SIGTERM/SIGINT set a flag and stop the accept loop from
a helper thread (``HTTPServer.shutdown`` must not be called from the
serving thread); the process then flushes the final obs snapshot and the
full placement trace before exiting 0, so a supervised rollout never loses
the run's telemetry.
"""

from __future__ import annotations

import json
import math
import select
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Any, Dict, Optional

from repro.serve.engine import OPS, OrchestrationEngine

#: URL prefix of the serving API.
API_PREFIX = "/v1/"

#: Accept-backlog drain budget on graceful shutdown (seconds).
DRAIN_BUDGET_S = 2.0


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    # A rude keep-alive client must not wedge the single serving thread
    # (nor the shutdown drain): idle connections are dropped after this.
    timeout = 5.0
    engine: OrchestrationEngine  # set by make_server on the class

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # keep stdout/stderr deterministic; obs carries the counters

    def _reply(self, status: int, payload: Dict[str, Any],
               headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _route(self) -> Optional[str]:
        if not self.path.startswith(API_PREFIX):
            return None
        op = self.path[len(API_PREFIX):].rstrip("/")
        return op if op in OPS else None

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        if self._route() == "health":
            self._reply(200, self.engine.handle({"op": "health"}))
        else:
            self._reply(404, {"ok": False, "error": f"no such endpoint: {self.path}"})

    def do_POST(self) -> None:  # noqa: N802
        op = self._route()
        if op is None:
            self._reply(404, {"ok": False, "error": f"no such endpoint: {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            request = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(request, dict):
                raise ValueError("request body must be a JSON object")
        except (ValueError, json.JSONDecodeError) as exc:
            self._reply(400, {"ok": False, "op": op, "error": f"bad request body: {exc}"})
            return
        request["op"] = op
        response = self.engine.handle(request)
        if response.get("shed"):
            # Deterministic overload rejection: 503 plus the engine's hint
            # for when the oldest in-flight request frees a queue slot.
            retry_after = max(1, math.ceil(float(response.get("retry_after_s", 1.0))))
            self._reply(503, response, headers={"Retry-After": str(retry_after)})
            return
        self._reply(200 if response.get("ok") else 422, response)


def make_server(engine: OrchestrationEngine, host: str = "127.0.0.1",
                port: int = 0) -> HTTPServer:
    """Bind an HTTP server on ``host:port`` (0 = ephemeral) for ``engine``."""
    handler = type("BoundHandler", (_Handler,), {"engine": engine})
    return HTTPServer((host, port), handler)


def drain_pending(server: HTTPServer, budget_s: float = DRAIN_BUDGET_S) -> int:
    """Serve connections already queued in the accept backlog.

    ``HTTPServer.shutdown`` only stops the *loop*: a request whose TCP
    connection was accepted by the kernel but not yet picked up by
    ``serve_forever`` would be silently dropped — offered but never
    counted, breaking the serve-conservation contract at the transport.
    This drains the backlog (bounded by ``budget_s``) before the socket
    closes, so every request that reached the listener gets an answer.
    Returns the number of drained connections.
    """
    deadline = time.monotonic() + budget_s
    drained = 0
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        ready, _, _ = select.select([server], [], [], min(remaining, 0.05))
        if not ready:
            break  # backlog empty — nothing left to answer
        server.handle_request()
        drained += 1
    return drained


def serve_until_signal(server: HTTPServer) -> int:
    """Run the accept loop until SIGTERM/SIGINT; returns the signal number.

    Restores the previous handlers on exit so embedding callers (tests)
    keep their signal disposition.  Before the socket closes, the accept
    backlog is drained (:func:`drain_pending`) so a graceful stop never
    drops an already-connected client.
    """
    got = {"signum": 0}

    def _stop(signum: int, frame: Any) -> None:
        got["signum"] = signum
        # shutdown() blocks until serve_forever drains; hop threads so the
        # handler (which runs on the serving thread) cannot deadlock.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {
        sig: signal.signal(sig, _stop) for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        server.serve_forever(poll_interval=0.05)
        drain_pending(server)
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)
        server.server_close()
    return got["signum"]


__all__ = ["API_PREFIX", "DRAIN_BUDGET_S", "make_server", "serve_until_signal", "drain_pending"]
