"""The orchestration engine: per-request admission and placement decisions.

This is the transport-free core of ``repro-serve``.  It owns a
:class:`~repro.core.livealloc.LiveAllocation` (the same layout engine the
batch simulator folds over), prices every request with the existing energy
primitives (:func:`~repro.core.simulate.occupied_slot_energy`, the Table
I/II task calibration, the Wi-Fi :class:`~repro.network.link.LinkModel`),
and answers in *simulated* time: requests carry their arrival time ``t``
and responses report deterministic completion times, so a replayed load is
bit-reproducible regardless of wall clock, host, or transport.

Request model
-------------
A request is a dict with an ``op`` in :data:`OPS` plus operands; the
response is a dict with ``ok`` and op-specific fields.  Five operations:

``admit``      seat a hive on the cloud tier (O(log n) via LiveAllocation)
``release``    free the hive's seat
``telemetry``  small sensor payload upload — priced on the wifi link
``inference``  one queen-detection request — the engine decides edge vs
               cloud by marginal system joules and reports latency/energy
``health``     liveness + fleet/occupancy snapshot

Latency semantics (documented in ``docs/SERVING.md``): cloud inferences
start at their slot's next cycle occurrence (wake-up slotting is the
paper's orchestration contract), edge inferences run immediately on the
hive, and both queue behind the same hive's previous in-flight request —
so offered load beyond one request per service window saturates and the
latency series shows the knee ``ext-serve`` sweeps for.
"""

from __future__ import annotations

import dataclasses
import heapq
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.allocator import Allocator
from repro.core.calibration import CYCLE_SECONDS, PAPER, PaperConstants
from repro.core.client import fallback_inference_task
from repro.core.livealloc import AdmissionFull, LiveAllocation
from repro.core.losses import LossConfig
from repro.core.placement import normalize_kind, resolve_policy
from repro.core.routines import make_scenario
from repro.core.simulate import occupied_slot_energy
from repro.network.buffer import STORED, EdgeBuffer
from repro.network.link import LinkModel
from repro.network.wifi import WIFI_80211N_2G4
from repro.obs import Obs
from repro.serve.faults import SERVER_FAIL, CompiledServeFaults, ServeFaultSpec
from repro.serve.trace import PlacementTrace
from repro.util.rng import derive_seed, make_rng
from repro.validate.invariants import ServeConservation, run_checkers

#: The serving API's operation set.
OPS = ("admit", "release", "telemetry", "inference", "health")


@dataclass(frozen=True)
class ServeConfig:
    """Everything that pins an engine's behaviour (and thus its trace).

    ``queue_bound`` switches on deterministic overload shedding: when the
    simulated number of in-flight server-bound requests reaches the bound,
    inference requests are shed; telemetry is shed earlier, at half the
    bound (lower-value traffic yields first).  ``faults`` attaches a seeded
    live fault surface (:class:`~repro.serve.faults.ServeFaultSpec`).  Both
    default to off, in which case the engine's trace and responses are
    byte-identical to the fault-free serving layer.
    """

    model: str = "svm"
    policy: str = "first-fit"
    policy_seed: int = 0
    max_parallel: Optional[int] = None
    period: float = CYCLE_SECONDS
    max_servers: Optional[int] = None
    telemetry_bytes: int = 1024
    constants: PaperConstants = PAPER
    losses: LossConfig = field(default_factory=LossConfig.none)
    link: LinkModel = WIFI_80211N_2G4
    queue_bound: Optional[int] = None
    faults: Optional[ServeFaultSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "policy", normalize_kind(self.policy))
        if self.period <= 0:
            raise ValueError(f"period must be > 0, got {self.period}")
        if self.queue_bound is not None and self.queue_bound < 1:
            raise ValueError(f"queue_bound must be >= 1, got {self.queue_bound}")

    def describe(self) -> Dict[str, Any]:
        """Stable, JSON-safe header pinning the full engine behaviour.

        Includes the link model and the calibration constants: two engines
        that price transfers differently (another Wi-Fi profile, retuned
        Table I/II numbers) must produce different trace/report headers,
        or the placement-trace fingerprint silently weakens.
        """
        return {
            "model": self.model,
            "policy": self.policy,
            "policy_params": resolve_policy(self.policy, seed=self.policy_seed).describe(),
            "max_parallel": self.max_parallel,
            "period": self.period,
            "max_servers": self.max_servers,
            "telemetry_bytes": self.telemetry_bytes,
            "losses": self.losses.describe(),
            "link": self.link.describe(),
            "queue_bound": self.queue_bound,
            "faults": None if self.faults is None else self.faults.describe(),
            # json round-trip flattens the nested dataclasses/tuples
            "constants": json.loads(json.dumps(dataclasses.asdict(self.constants))),
        }


class OrchestrationEngine:
    """Deterministic request-at-a-time orchestrator over a live allocation."""

    def __init__(self, config: Optional[ServeConfig] = None, obs: Optional[Obs] = None,
                 keep_trace_events: bool = True) -> None:
        self.config = config or ServeConfig()
        cfg = self.config
        scenario = make_scenario("edge+cloud", cfg.model, cfg.max_parallel, cfg.constants)
        self.server = scenario.server
        self.client = scenario.client
        # one shared policy instance: the batch allocator and the live
        # structure must agree on memoized score tables (solar/swarm)
        policy = resolve_policy(cfg.policy, seed=cfg.policy_seed)
        self.allocator = Allocator(self.server, cfg.period, cfg.losses, policy)
        self.plan = self.allocator.plan
        self.live = LiveAllocation(self.plan, policy, cfg.max_servers)
        self.edge_task = fallback_inference_task(cfg.model, cfg.constants)
        # Radio draw during an upload: the Table II send_audio row's power.
        self.radio_watts = cfg.constants.send_audio_j / cfg.constants.send_audio_s
        self.obs = obs if obs is not None else Obs()
        self.trace = PlacementTrace(keep_events=keep_trace_events)
        self._busy_until: Dict[int, float] = {}
        self._latencies: Dict[str, List[float]] = {"telemetry": [], "inference": []}
        self._last_t: Optional[float] = None
        self.n_requests = 0
        self.n_errors = 0
        # -- live-resilience state (all quiescent between requests) --------
        # Conservation ledgers over non-health requests: every offered
        # request lands in exactly one of served / shed / errored
        # (ServeConservation enforces the partition in report()).
        self.n_offered = 0
        self.n_served = 0
        self.n_shed = 0
        self.n_errored = 0
        self.faults: Optional[CompiledServeFaults] = (
            cfg.faults.compile() if cfg.faults is not None and cfg.faults.active else None
        )
        self._fault_cursor = 0
        self._down_servers: Set[int] = set()
        self._buffers: Dict[int, EdgeBuffer] = {}
        # Min-heap of completion times of server-bound work (cloud
        # inferences and telemetry uploads); its pruned length at a request's
        # arrival time is the admission-queue depth shedding decides on.
        self._inflight: List[float] = []
        # Duck-typed checkpoint hook (see repro.serve.checkpoint): called
        # after every handled request, when attached by the CLI.
        self.checkpointer: Optional[Any] = None

    # -- pricing -------------------------------------------------------------
    def _slot_marginal_j(self, occupancy: int) -> float:
        """Server-side joules the ``occupancy``-th occupant adds to its slot."""
        cfg = self.config
        extra = self.allocator.sizing_extra_s
        full = occupied_slot_energy(self.server, occupancy, extra, cfg.losses)
        if occupancy > 1:
            rest = occupied_slot_energy(self.server, occupancy - 1, extra, cfg.losses)
        else:
            rest = self.server.idle_watts * self.server.slot_duration(extra)
        return full - rest

    def _cloud_cost(self, client_id: int) -> Tuple[float, float, Any]:
        """(client-side joules, server-side marginal joules, placement)."""
        placement = self.live.placement_of(client_id)
        occ = self.live.slot_occupancy(placement)
        send_j = self.config.constants.send_audio_j
        return send_j, self._slot_marginal_j(occ), placement

    def _edge_cost(self) -> Tuple[float, float]:
        return self.edge_task.energy, self.edge_task.duration

    def _next_slot_start(self, slot: int, after: float) -> float:
        """First occurrence of ``slot``'s window at or after sim time ``after``."""
        offset = slot * self.plan.slot_duration
        if after <= offset:
            return offset
        cycles = math.ceil((after - offset) / self.config.period)
        return offset + cycles * self.config.period

    # -- request handling ----------------------------------------------------
    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Process one request dict; never raises on a bad request.

        Every handled request is counted exactly once, *before* dispatch:
        health probes and malformed requests both land in ``n_requests``
        and the per-op counters (unknown ops under ``serve.requests.invalid``),
        so ``n_requests >= n_errors`` always holds and the per-op counter
        totals sum to the request count.
        """
        op = request.get("op")
        self.n_requests += 1
        m = self.obs.metrics
        m.counter("serve.requests").inc()
        m.counter(f"serve.requests.{op if op in OPS else 'invalid'}").inc()
        response = self._dispatch(op, request)
        if op != "health":
            self.n_offered += 1
            if response.get("shed"):
                self.n_shed += 1
            elif response.get("ok"):
                self.n_served += 1
            else:
                self.n_errored += 1
        if self.checkpointer is not None:
            self.checkpointer.after_request(self)
        return response

    def _dispatch(self, op: Optional[str], request: Dict[str, Any]) -> Dict[str, Any]:
        try:
            if op == "health":
                return self._health()
            if op not in OPS:
                raise ValueError(f"unknown op {op!r} (expected one of {OPS})")
            hive = int(request["hive"])
            t = float(request.get("t", 0.0))
            if self._last_t is not None and t < self._last_t:
                raise ValueError(
                    f"non-monotonic request time {t!r} after {self._last_t!r}"
                )
            self._observe_arrival(t)
            self._advance_faults(t)
            if op == "admit":
                return self._admit(hive, t)
            if op == "release":
                return self._release(hive, t)
            self._maybe_drain(hive, t)
            if op == "telemetry":
                return self._telemetry(hive, t, int(request.get("bytes", self.config.telemetry_bytes)))
            return self._inference(hive, t)
        except Exception as exc:  # noqa: BLE001 — surface as a structured error
            self.n_errors += 1
            self.obs.metrics.counter("serve.errors").inc()
            return {"ok": False, "op": op, "error": f"{type(exc).__name__}: {exc}"}

    def _observe_arrival(self, t: float) -> None:
        if self._last_t is not None and t > self._last_t:
            self.obs.metrics.histogram("serve.interarrival_s").record(t - self._last_t)
        self._last_t = t if self._last_t is None else max(self._last_t, t)

    # -- live fault injection ------------------------------------------------
    def _advance_faults(self, t: float) -> None:
        """Apply every server fail/recover transition due at or before ``t``.

        Transitions ride the request clock: the engine is quiescent between
        requests, so applying them lazily — but always *before* the request
        that first observes time ``t`` — yields the same state as a
        continuously running timer, deterministically.  A failure repacks
        the live allocation immediately (the orchestrator re-seats the dead
        server's hives in the active policy's ``repack_preference`` order);
        recovery only clears the down flag — clients re-spread naturally as
        admissions churn, matching the batch fold over survivors.
        """
        f = self.faults
        if f is None:
            return
        while self._fault_cursor < len(f.transitions):
            when, _target, kind, server = f.transitions[self._fault_cursor]
            if when > t:
                break
            self._fault_cursor += 1
            if kind == SERVER_FAIL:
                self._down_servers.add(server)
                self.obs.metrics.counter("serve.faults.server_fail").inc()
                orphans = readmitted = dropped = 0
                if server < self.live.n_servers and len(self.live) > 0:
                    result = self.live.repack_on_failure(server, policy_order=True)
                    orphans = len(result.orphans)
                    readmitted = len(result.readmitted)
                    dropped = len(result.dropped)
                self.trace.append(
                    t=when, op="server-fail", server=server,
                    orphans=orphans, readmitted=readmitted, dropped=dropped,
                )
            else:
                self._down_servers.discard(server)
                self.obs.metrics.counter("serve.faults.server_recover").inc()
                self.trace.append(t=when, op="server-recover", server=server)
            self.obs.metrics.gauge("serve.servers_down").set(len(self._down_servers))

    def _buffer_for(self, hive: int) -> EdgeBuffer:
        buf = self._buffers.get(hive)
        if buf is None:
            buf = self._buffers[hive] = EdgeBuffer(self.faults.spec.buffer)
        return buf

    def _buffer_telemetry(self, hive: int, t: float, payload_bytes: int) -> Dict[str, Any]:
        """Dark-window telemetry: store-and-forward on the hive, zero radio."""
        buf = self._buffer_for(hive)
        outcome = buf.offer(t, payload_bytes)
        self.obs.metrics.counter(f"serve.buffered.{outcome}").inc()
        self.trace.append(
            t=t, op="telemetry", hive=hive, bytes=payload_bytes, outcome=outcome,
        )
        return {
            "ok": True, "op": "telemetry", "hive": hive, "t": t,
            "bytes": payload_bytes, "buffered": outcome == STORED,
            "outcome": outcome,
        }

    def _maybe_drain(self, hive: int, t: float) -> None:
        """Burst-drain a reconnected hive's backlog before its request.

        Bounded by the buffer's contended drain quota; each drained byte is
        priced on the serving link and charged to the hive's transfer phase
        — catching up is never free.
        """
        if self.faults is None:
            return
        buf = self._buffers.get(hive)
        if buf is None or buf.resident_payloads == 0:
            return
        if self.faults.hive_dark(hive, t):
            return
        quota = self.faults.spec.buffer.drain_quota(self.config.link, 1)
        payloads = buf.drain(t, quota)
        if not payloads:
            return
        nbytes = sum(p.nbytes for p in payloads)
        duration = float(self.config.link.expected_duration(nbytes))
        energy = self.radio_watts * duration
        self.obs.ledger.add("transfer", energy, duration)
        self.obs.metrics.counter("serve.drained").inc(len(payloads))
        self.trace.append(
            t=t, op="drain", hive=hive, payloads=len(payloads),
            bytes=nbytes, energy=energy,
        )

    # -- overload shedding ---------------------------------------------------
    def _prune_inflight(self, t: float) -> None:
        while self._inflight and self._inflight[0] <= t:
            heapq.heappop(self._inflight)

    def _maybe_shed(self, op: str, hive: int, t: float) -> Optional[Dict[str, Any]]:
        """Deterministic admission control over the bounded in-flight queue.

        Telemetry sheds first (at half the bound, rounded up); inference
        holds on until the queue is actually full.  The 503 carries a
        ``retry_after_s`` hint: the time until the oldest in-flight request
        completes (one service period when the queue is somehow empty).
        """
        bound = self.config.queue_bound
        if bound is None:
            return None
        self._prune_inflight(t)
        depth = len(self._inflight)
        threshold = bound if op == "inference" else (bound + 1) // 2
        if depth < threshold:
            return None
        retry_after = self._inflight[0] - t if self._inflight else self.config.period
        self.obs.metrics.counter(f"serve.shed.{op}").inc()
        self.trace.append(
            t=t, op="shed", hive=hive, shed_op=op,
            queue_depth=depth, retry_after=retry_after,
        )
        return {
            "ok": False, "op": op, "hive": hive, "t": t, "shed": True,
            "queue_depth": depth, "retry_after_s": retry_after,
        }

    def _admit(self, hive: int, t: float) -> Dict[str, Any]:
        try:
            placement = self.live.admit(hive)
        except AdmissionFull as exc:
            self.obs.metrics.counter("serve.admissions.rejected").inc()
            self.trace.append(t=t, op="admit", hive=hive, outcome="rejected")
            return {
                "ok": True, "op": "admit", "hive": hive, "t": t,
                "admitted": False, "reason": str(exc),
            }
        self.obs.metrics.counter("serve.admissions").inc()
        self.obs.metrics.gauge("serve.fleet").set(len(self.live))
        self.obs.metrics.gauge("serve.servers").set(self.live.n_servers)
        self.trace.append(
            t=t, op="admit", hive=hive, outcome="admitted",
            server=placement.server, slot=placement.slot, position=placement.position,
        )
        return {
            "ok": True, "op": "admit", "hive": hive, "t": t, "admitted": True,
            "server": placement.server, "slot": placement.slot,
            "position": placement.position,
        }

    def _release(self, hive: int, t: float) -> Dict[str, Any]:
        if hive not in self.live:
            raise KeyError(f"hive {hive} is not admitted")
        self.live.release(hive)
        self.obs.metrics.counter("serve.releases").inc()
        self.obs.metrics.gauge("serve.fleet").set(len(self.live))
        self.obs.metrics.gauge("serve.servers").set(self.live.n_servers)
        self.trace.append(t=t, op="release", hive=hive, outcome="released")
        return {"ok": True, "op": "release", "hive": hive, "t": t, "released": True}

    def _telemetry(self, hive: int, t: float, payload_bytes: int) -> Dict[str, Any]:
        if self.faults is not None and self.faults.hive_dark(hive, t):
            return self._buffer_telemetry(hive, t, payload_bytes)
        shed = self._maybe_shed("telemetry", hive, t)
        if shed is not None:
            return shed
        # float() strips the numpy scalar: trace lines hash the repr and the
        # HTTP layer JSON-encodes the response, both need a plain float.
        duration = float(self.config.link.expected_duration(payload_bytes))
        energy = self.radio_watts * duration
        self.obs.ledger.add("transfer", energy, duration)
        self._latencies["telemetry"].append(duration)
        self.obs.metrics.histogram("serve.latency_s.telemetry").record(duration)
        self.trace.append(
            t=t, op="telemetry", hive=hive, bytes=payload_bytes,
            latency=duration, energy=energy,
        )
        heapq.heappush(self._inflight, t + duration)
        return {
            "ok": True, "op": "telemetry", "hive": hive, "t": t,
            "bytes": payload_bytes, "latency_s": duration, "energy_j": energy,
        }

    def _inference(self, hive: int, t: float) -> Dict[str, Any]:
        """Place one inference by *client* joules — the hive battery is the
        paper's objective; the server's marginal draw is attributed to the
        ledger but amortizes over the fleet rather than vetoing offload."""
        edge_j, edge_service_s = self._edge_cost()
        if self.faults is not None and self.faults.hive_dark(hive, t):
            # A dark hive cannot reach the service at all: it degrades to
            # local inference without consulting (or loading) the frontend.
            return self._run_edge(hive, t, edge_j, edge_service_s, "link-dark")
        shed = self._maybe_shed("inference", hive, t)
        if shed is not None:
            return shed
        if hive in self.live:
            client_j, server_j, placement = self._cloud_cost(hive)
            if client_j <= edge_j:
                if self.faults is not None and placement.server in self._down_servers:
                    return self._retry_cloud(hive, t, client_j, server_j, placement)
                return self._run_cloud(hive, t, client_j, server_j, placement)
            reason = "upload-costs-more-than-local-inference"
        else:
            reason = "not-admitted"
        return self._run_edge(hive, t, edge_j, edge_service_s, reason)

    def _retry_cloud(self, hive: int, t: float, client_j: float, server_j: float,
                     placement) -> Dict[str, Any]:
        """Upload aimed at a down server: walk the seeded retry ladder.

        Attempt ``i`` probes the fault schedule at its (timeout- and
        backoff-shifted) start time — a server repaired mid-ladder rescues
        the request onto the cloud path with the accumulated delay and
        retry joules attached; an exhausted ladder degrades to the edge
        with reason ``server-down``.  The jitter stream is derived from
        ``(fault seed, hive, trace position)``, so a resumed engine replays
        the identical ladder.
        """
        spec = self.faults.spec
        retry = spec.retry
        rng = make_rng(derive_seed(spec.seed, "serve-retry", hive, self.trace.n_events))
        attempt_t = max(t, self._busy_until.get(hive, 0.0))
        attempts = 0
        retry_j = 0.0
        for i in range(retry.max_retries + 1):
            if not self.faults.server_down(placement.server, attempt_t):
                return self._run_cloud(
                    hive, t, client_j, server_j, placement,
                    start_floor=attempt_t, retries=attempts, retry_energy=retry_j,
                )
            attempts += 1
            burn = retry.attempt_energy_j(self.radio_watts)
            retry_j += burn
            self.obs.ledger.add("retry", burn, retry.timeout_s)
            attempt_t += retry.timeout_s
            if i < retry.max_retries:
                attempt_t += retry.delay_s(i, rng)
        self.obs.metrics.counter("serve.retries.exhausted").inc()
        edge_j, edge_service_s = self._edge_cost()
        return self._run_edge(
            hive, t, edge_j, edge_service_s, "server-down",
            start_floor=attempt_t, retries=attempts, retry_energy=retry_j,
        )

    def _run_cloud(self, hive: int, t: float, client_j: float, server_j: float,
                   placement, start_floor: Optional[float] = None,
                   retries: int = 0, retry_energy: float = 0.0) -> Dict[str, Any]:
        eff_t = max(t, self._busy_until.get(hive, 0.0))
        if start_floor is not None:
            eff_t = max(eff_t, start_floor)
        start = self._next_slot_start(placement.slot, eff_t)
        done = start + self.server.transfer_s + self.server.service.duration
        self._busy_until[hive] = done
        latency = done - t
        self.obs.ledger.add("transfer", client_j, self.config.constants.send_audio_s)
        self.obs.ledger.add("infer", server_j, self.server.service.duration)
        self._record_inference("cloud", latency)
        extra = {"retries": retries, "retry_energy": retry_energy} if retries else {}
        self.trace.append(
            t=t, op="inference", hive=hive, placement="cloud",
            server=placement.server, slot=placement.slot, position=placement.position,
            latency=latency, energy=client_j, server_energy=server_j, **extra,
        )
        heapq.heappush(self._inflight, done)
        response = {
            "ok": True, "op": "inference", "hive": hive, "t": t,
            "placement": "cloud", "server": placement.server,
            "slot": placement.slot, "position": placement.position,
            "latency_s": latency, "energy_j": client_j,
            "server_energy_j": server_j, "done_t": done,
        }
        if retries:
            response["retries"] = retries
            response["retry_energy_j"] = retry_energy
        return response

    def _run_edge(self, hive: int, t: float, energy_j: float, service_s: float,
                  reason: str, start_floor: Optional[float] = None,
                  retries: int = 0, retry_energy: float = 0.0) -> Dict[str, Any]:
        eff_t = max(t, self._busy_until.get(hive, 0.0))
        if start_floor is not None:
            eff_t = max(eff_t, start_floor)
        done = eff_t + service_s
        self._busy_until[hive] = done
        latency = done - t
        self.obs.ledger.add("infer", energy_j, service_s)
        self._record_inference("edge", latency)
        extra = {"retries": retries, "retry_energy": retry_energy} if retries else {}
        self.trace.append(
            t=t, op="inference", hive=hive, placement="edge", reason=reason,
            latency=latency, energy=energy_j, **extra,
        )
        response = {
            "ok": True, "op": "inference", "hive": hive, "t": t,
            "placement": "edge", "reason": reason,
            "latency_s": latency, "energy_j": energy_j, "done_t": done,
        }
        if retries:
            response["retries"] = retries
            response["retry_energy_j"] = retry_energy
        return response

    def _record_inference(self, where: str, latency: float) -> None:
        self.obs.metrics.counter(f"serve.placements.{where}").inc()
        self._latencies["inference"].append(latency)
        self.obs.metrics.histogram("serve.latency_s.inference").record(latency)

    def _health(self) -> Dict[str, Any]:
        if self._last_t is not None:
            self._prune_inflight(self._last_t)
        depth = len(self._inflight)
        degraded = bool(self._down_servers) or (
            self.config.queue_bound is not None and depth >= self.config.queue_bound
        )
        return {
            "ok": True, "op": "health",
            "status": "degraded" if degraded else "up",
            "fleet": len(self.live), "servers": self.live.n_servers,
            "requests": self.n_requests, "errors": self.n_errors,
            "policy": self.config.policy, "capacity_left": self.live.capacity_left,
            "offered": self.n_offered, "served": self.n_served,
            "shed": self.n_shed, "errored": self.n_errored,
            "queue_depth": depth, "failed_servers": len(self._down_servers),
            "uptime_s": self._last_t if self._last_t is not None else 0.0,
        }

    # -- reporting -----------------------------------------------------------
    def latency_report(self) -> Dict[str, Any]:
        """Exact p50/p99 latency quantiles plus offered requests/sec."""
        out: Dict[str, Any] = {}
        for kind, values in self._latencies.items():
            if not values:
                out[kind] = {"count": 0}
                continue
            ordered = sorted(values)
            out[kind] = {
                "count": len(ordered),
                "p50_s": _quantile(ordered, 0.50),
                "p99_s": _quantile(ordered, 0.99),
                "mean_s": sum(ordered) / len(ordered),
                "max_s": ordered[-1],
            }
        horizon = self._last_t or 0.0
        out["rps"] = self.n_requests / horizon if horizon > 0 else 0.0
        return out

    def report(self) -> Dict[str, Any]:
        """Shutdown summary: config, counters, latency, trace, allocation.

        Runs the serve-conservation checker first: a report whose request
        partition does not balance raises instead of publishing.
        """
        run_checkers(self, [ServeConservation()], {"path": "serve-report"})
        alloc = self.live.to_allocation()
        return {
            "config": self.config.describe(),
            "requests": self.n_requests,
            "errors": self.n_errors,
            "offered": self.n_offered,
            "served": self.n_served,
            "shed": self.n_shed,
            "errored": self.n_errored,
            "fleet": len(self.live),
            "servers": self.live.n_servers,
            "failed_servers": sorted(self._down_servers),
            "occupancies": [srv.occupancies for srv in alloc.servers],
            "latency": self.latency_report(),
            "trace": self.trace.to_dict(include_events=False),
        }

    def steady_state_matches_batch(self) -> bool:
        """True iff the live layout equals the batch fold over survivors.

        Structurally guaranteed (``to_allocation`` *is* the fold), but the
        serve smoke re-asserts it end-to-end through the request path.
        """
        batch = self.allocator.policy.allocate(self.live.client_ids(), self.plan)
        live = self.live.to_allocation()
        return batch.servers == live.servers and batch.plan == live.plan


def _quantile(ordered: List[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted list."""
    idx = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[idx]


__all__ = ["OPS", "ServeConfig", "OrchestrationEngine"]
