"""Live fault injection for the serving path.

:class:`ServeFaultSpec` describes the adversities a running
:class:`~repro.serve.engine.OrchestrationEngine` must survive, reusing the
batch fault machinery end to end: seeded server-outage and link-blackout
renewal processes (:mod:`repro.faults.spec`), the retry/backoff ladder
(:class:`~repro.faults.retry.RetryPolicy`) and the store-and-forward edge
buffer (:class:`~repro.network.buffer.BufferSpec`).  Compiling the spec
yields a :class:`CompiledServeFaults` — the realized
:class:`~repro.faults.schedule.FaultSchedule` plus a flat, time-sorted list
of server fail/recover *transitions* the engine advances through on its
simulated request clock, so servers die and return mid-replay at
deterministic instants.

Everything here is a pure function of ``(spec, seed)``: the same spec
always produces the same timeline, which is what lets a SIGKILLed server
resume from a checkpoint and still converge to a bit-identical placement
trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.faults.retry import RetryPolicy
from repro.faults.schedule import (
    LINK_BLACKOUT,
    SERVER_OUTAGE,
    FaultSchedule,
    compile_schedule,
)
from repro.faults.spec import LinkBlackout, ServerOutage
from repro.network.buffer import BufferSpec
from repro.util.validation import check_non_negative, check_positive

#: Transition kinds in :attr:`CompiledServeFaults.transitions`.
SERVER_FAIL = "server-fail"
SERVER_RECOVER = "server-recover"


@dataclass(frozen=True)
class ServeFaultSpec:
    """Seeded failure surface of one serving run.

    Attributes
    ----------
    server_mtbf_s / server_repair_s / fault_servers:
        Exponential crash/repair process per logical server index
        ``0..fault_servers-1`` (``inf`` MTBF disables server outages).
    dark_mtbf_s / dark_repair_s / fault_hives:
        Link-blackout process per hive id ``0..fault_hives-1`` — while a
        hive's window is active its uplink is dark: telemetry is buffered
        locally and inference degrades to the edge.
    horizon_s:
        Simulated horizon the schedules are realized over; requests past
        the horizon see a fault-free world.
    seed:
        Base seed for every derived stream (windows and retry jitter).
    retry:
        Backoff ladder for uploads aimed at a down server.
    buffer:
        Per-hive store-and-forward buffer used during dark windows.
    """

    server_mtbf_s: float = math.inf
    server_repair_s: float = 600.0
    fault_servers: int = 4
    dark_mtbf_s: float = math.inf
    dark_repair_s: float = 240.0
    fault_hives: int = 0
    horizon_s: float = 4000.0
    seed: int = 0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    buffer: BufferSpec = field(
        default_factory=lambda: BufferSpec(capacity_bytes=8 * 1024, payload_bytes=1024)
    )

    def __post_init__(self) -> None:
        check_positive(self.horizon_s, "horizon_s")
        check_non_negative(self.server_repair_s, "server_repair_s")
        check_non_negative(self.dark_repair_s, "dark_repair_s")
        if self.fault_servers < 0 or self.fault_hives < 0:
            raise ValueError("fault_servers and fault_hives must be >= 0")
        for name in ("server_mtbf_s", "dark_mtbf_s"):
            value = getattr(self, name)
            if not (value > 0):  # inf allowed: the "never fires" sentinel
                raise ValueError(f"{name} must be > 0 (or +inf), got {value}")

    @property
    def active(self) -> bool:
        """True when at least one fault process can actually fire."""
        return (math.isfinite(self.server_mtbf_s) and self.fault_servers > 0) or (
            math.isfinite(self.dark_mtbf_s) and self.fault_hives > 0
        )

    def describe(self) -> Dict[str, Any]:
        """Stable JSON-safe header (infinities rendered as ``"inf"``)."""

        def _num(x: float) -> Any:
            return "inf" if math.isinf(x) else x

        return {
            "server_mtbf_s": _num(self.server_mtbf_s),
            "server_repair_s": self.server_repair_s,
            "fault_servers": self.fault_servers,
            "dark_mtbf_s": _num(self.dark_mtbf_s),
            "dark_repair_s": self.dark_repair_s,
            "fault_hives": self.fault_hives,
            "horizon_s": self.horizon_s,
            "seed": self.seed,
            "retry": self.retry.describe(),
            "buffer": self.buffer.describe(),
        }

    def compile(self) -> "CompiledServeFaults":
        """Realize the seeded timetable and the server transition list."""
        specs = []
        if math.isfinite(self.server_mtbf_s) and self.fault_servers > 0:
            specs.append(
                ServerOutage(mtbf_s=self.server_mtbf_s, repair_s=self.server_repair_s)
            )
        if math.isfinite(self.dark_mtbf_s) and self.fault_hives > 0:
            specs.append(
                LinkBlackout(mtbf_s=self.dark_mtbf_s, repair_s=self.dark_repair_s)
            )
        schedule = compile_schedule(
            specs,
            self.horizon_s,
            n_servers=self.fault_servers,
            n_clients=self.fault_hives,
            seed=self.seed,
        )
        transitions: List[Tuple[float, int, str, int]] = []
        for w in schedule.windows:
            if w.kind != SERVER_OUTAGE:
                continue
            transitions.append((w.start, w.target, SERVER_FAIL, w.target))
            if w.end > w.start:
                transitions.append((w.end, w.target, SERVER_RECOVER, w.target))
        transitions.sort()
        return CompiledServeFaults(self, schedule, tuple(transitions))


@dataclass(frozen=True)
class CompiledServeFaults:
    """A realized fault timeline the engine can advance through.

    ``transitions`` is time-sorted ``(t, target, kind, server)`` tuples
    (the redundant target in the sort key makes same-instant transitions
    deterministic); :meth:`server_down` / :meth:`hive_dark` answer the
    point-in-time queries on the underlying schedule.
    """

    spec: ServeFaultSpec
    schedule: FaultSchedule
    transitions: Tuple[Tuple[float, int, str, int], ...]

    def server_down(self, server: int, t: float) -> bool:
        return self.schedule.is_down(SERVER_OUTAGE, server, t)

    def hive_dark(self, hive: int, t: float) -> bool:
        return self.schedule.is_down(LINK_BLACKOUT, hive, t)


__all__ = [
    "SERVER_FAIL",
    "SERVER_RECOVER",
    "ServeFaultSpec",
    "CompiledServeFaults",
]
