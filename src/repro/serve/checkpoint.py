"""Crash-recoverable serving: periodic engine checkpoints and exact resume.

The orchestration engine is quiescent between requests — all of its state
(live allocation layout, sim clock, busy map, streaming trace, obs ledger,
fault cursor, buffers, conservation counters) is a pure fold over the
request stream.  :func:`snapshot_engine` freezes that fold after request
``k``; :func:`restore_engine` rebuilds an engine that behaves — to the bit
— like the original after its first ``k`` requests.  A SIGKILLed
``repro-serve`` therefore restarts with ``--resume`` and a reconnecting
load generator (skipping the ``offered`` count the resumed ``/v1/health``
reports) converges to the identical :class:`~repro.serve.trace.
PlacementTrace` fingerprint as an uninterrupted run.

Two deliberate choices:

* The live allocation is stored as its **admission order** (``client_ids``)
  rather than its seat map: rank-derived placement makes the layout a pure
  function of that order, and failure repacks only ever rotate orphans to
  the tail of it — so re-admitting in order reproduces the exact layout,
  post-repack included.
* The trace is stored as its **event list**, not its hash object (hashlib
  states do not pickle): replaying the events through a fresh trace
  re-derives the identical streaming SHA-256.

The envelope (digest, schema, run-key binding) is
:mod:`repro.resilience.checkpoint`'s — a serve checkpoint refuses to resume
under a different :class:`~repro.serve.engine.ServeConfig`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

from repro.network.buffer import EdgeBuffer
from repro.obs import Obs
from repro.resilience.checkpoint import load_checkpoint, run_key, write_checkpoint
from repro.resilience.snapshot import restore_obs, snapshot_obs
from repro.serve.engine import OrchestrationEngine, ServeConfig

#: Envelope ``kind`` tag for serve checkpoints.
SERVE_CHECKPOINT_KIND = "serve"

#: Default checkpoint cadence (requests between snapshots).
DEFAULT_EVERY = 50


def engine_run_key(config: ServeConfig) -> str:
    """Run identity a checkpoint is bound to: the full config header."""
    return run_key("serve", json.dumps(config.describe(), sort_keys=True))


def snapshot_engine(engine: OrchestrationEngine) -> Dict[str, Any]:
    """Freeze one quiescent engine as a plain payload dict."""
    return {
        "clients": engine.live.client_ids(),
        "last_t": engine._last_t,
        "busy_until": sorted(engine._busy_until.items()),
        "inflight": sorted(engine._inflight),
        "latencies": {k: list(v) for k, v in engine._latencies.items()},
        "counters": {
            "n_requests": engine.n_requests,
            "n_errors": engine.n_errors,
            "n_offered": engine.n_offered,
            "n_served": engine.n_served,
            "n_shed": engine.n_shed,
            "n_errored": engine.n_errored,
        },
        "fault_cursor": engine._fault_cursor,
        "down_servers": sorted(engine._down_servers),
        "buffers": {hive: buf.snapshot() for hive, buf in sorted(engine._buffers.items())},
        "trace_events": [dict(e) for e in engine.trace.events],
        "obs": snapshot_obs(engine.obs),
    }


def restore_engine(
    config: ServeConfig,
    payload: Dict[str, Any],
    keep_trace_events: bool = True,
) -> OrchestrationEngine:
    """Rebuild an engine that continues bit-identically from ``payload``."""
    engine = OrchestrationEngine(config, obs=restore_obs(payload["obs"]),
                                 keep_trace_events=keep_trace_events)
    for client_id in payload["clients"]:
        engine.live.admit(client_id)
    for event in payload["trace_events"]:
        line = dict(event)
        line.pop("seq", None)  # append() re-derives identical sequence numbers
        engine.trace.append(**line)
    engine._last_t = payload["last_t"]
    engine._busy_until = {int(h): float(v) for h, v in payload["busy_until"]}
    engine._inflight = [float(v) for v in payload["inflight"]]
    engine._latencies = {k: [float(v) for v in vs] for k, vs in payload["latencies"].items()}
    counters = payload["counters"]
    engine.n_requests = int(counters["n_requests"])
    engine.n_errors = int(counters["n_errors"])
    engine.n_offered = int(counters["n_offered"])
    engine.n_served = int(counters["n_served"])
    engine.n_shed = int(counters["n_shed"])
    engine.n_errored = int(counters["n_errored"])
    engine._fault_cursor = int(payload["fault_cursor"])
    engine._down_servers = set(int(s) for s in payload["down_servers"])
    if payload["buffers"]:
        spec = config.faults.buffer  # buffers only exist under a fault spec
        engine._buffers = {
            int(hive): EdgeBuffer.restore(spec, snap)
            for hive, snap in payload["buffers"].items()
        }
    return engine


def save_engine(path, engine: OrchestrationEngine) -> None:
    """Write one digest-protected serve checkpoint (atomic replace)."""
    write_checkpoint(
        path,
        snapshot_engine(engine),
        kind=SERVE_CHECKPOINT_KIND,
        run_key=engine_run_key(engine.config),
    )


def resume_engine(
    path,
    config: ServeConfig,
    obs: Optional[Obs] = None,
    keep_trace_events: bool = True,
) -> OrchestrationEngine:
    """Load a serve checkpoint written under exactly this config.

    ``obs`` is accepted for signature symmetry with the engine constructor
    but must be ``None`` — the checkpoint carries its own obs continuity.
    """
    if obs is not None:
        raise ValueError("resume_engine restores obs from the checkpoint; pass obs=None")
    payload = load_checkpoint(
        path, kind=SERVE_CHECKPOINT_KIND, expect_run_key=engine_run_key(config)
    )
    return restore_engine(config, payload, keep_trace_events=keep_trace_events)


class ServeCheckpointer:
    """Request-cadence checkpoint hook the CLI attaches to the engine.

    ``engine.handle`` calls :meth:`after_request` once per handled request;
    every ``every`` requests the full quiescent state is flushed (atomic
    replace, so a kill mid-write leaves the previous checkpoint intact).
    """

    def __init__(self, path, every: int = DEFAULT_EVERY) -> None:
        if every < 1:
            raise ValueError(f"checkpoint cadence must be >= 1, got {every}")
        self.path = Path(path)
        self.every = int(every)
        self.n_written = 0
        self._since = 0

    def after_request(self, engine: OrchestrationEngine) -> None:
        self._since += 1
        if self._since >= self.every:
            self._since = 0
            self.flush(engine)

    def flush(self, engine: OrchestrationEngine) -> None:
        save_engine(self.path, engine)
        self.n_written += 1


__all__ = [
    "SERVE_CHECKPOINT_KIND",
    "DEFAULT_EVERY",
    "engine_run_key",
    "snapshot_engine",
    "restore_engine",
    "save_engine",
    "resume_engine",
    "ServeCheckpointer",
]
