"""``repro-serve``: run the orchestration service from the command line.

Boots an :class:`~repro.serve.engine.OrchestrationEngine` behind the stdlib
HTTP front end, announces the bound address, and serves until SIGTERM or
SIGINT.  On shutdown it flushes the final obs snapshot (``--obs-out``) and
the full placement trace (``--trace-out``) atomically, prints the run
report to stdout, and exits 0 — the contract the integration tests and the
``serve-smoke`` CI job rely on.

``--port 0`` binds an ephemeral port; ``--port-file`` writes the chosen
port as soon as the socket is bound so a parent process (test harness,
load generator script) can discover it without racing the boot.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.core.calibration import CYCLE_SECONDS
from repro.core.placement import POLICY_KINDS
from repro.serve.engine import OrchestrationEngine, ServeConfig
from repro.serve.http import make_server, serve_until_signal
from repro.util.atomic import atomic_write, atomic_write_json


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve live admission/placement decisions for a hive fleet.",
    )
    parser.add_argument("--model", choices=("svm", "cnn"), default="svm")
    parser.add_argument(
        "--policy",
        choices=POLICY_KINDS,
        default="first-fit",
        help="slot filling policy (default: the paper's first-fit)",
    )
    parser.add_argument(
        "--policy-seed", type=int, default=0,
        help="seed for stochastic-score policies (swarm-scored)",
    )
    parser.add_argument("--max-parallel", type=int, default=None,
                        help="per-slot client cap (default: calibration)")
    parser.add_argument("--period", type=float, default=CYCLE_SECONDS,
                        help="wake-up cycle seconds (default: %(default)s)")
    parser.add_argument("--max-servers", type=int, default=None,
                        help="server budget; omit for elastic cloud")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8037,
                        help="listen port; 0 binds an ephemeral port")
    parser.add_argument("--port-file", default=None,
                        help="write the bound port to this file once listening")
    parser.add_argument("--trace-out", default=None,
                        help="flush the full placement trace here on shutdown")
    parser.add_argument("--obs-out", default=None,
                        help="flush the final obs snapshot here on shutdown")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.max_servers is not None and args.max_servers < 0:
        print("error: --max-servers must be >= 0", file=sys.stderr)
        return 2
    config = ServeConfig(
        model=args.model,
        policy=args.policy,
        policy_seed=args.policy_seed,
        max_parallel=args.max_parallel,
        period=args.period,
        max_servers=args.max_servers,
    )
    engine = OrchestrationEngine(config)
    server = make_server(engine, args.host, args.port)
    port = server.server_address[1]
    if args.port_file:
        atomic_write(args.port_file, f"{port}\n")
    print(f"repro-serve listening on http://{args.host}:{port}/v1/ "
          f"(policy={config.policy}, model={config.model})", file=sys.stderr)
    signum = serve_until_signal(server)
    report = engine.report()
    report["shutdown_signal"] = signum
    if args.trace_out:
        from repro.util.atomic import atomic_writer

        with atomic_writer(args.trace_out) as fh:
            engine.trace.dump(fh)
    if args.obs_out:
        atomic_write_json(
            args.obs_out,
            engine.obs.snapshot(extra={"kind": "serve", "report": report}),
            sort_keys=True,
        )
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
