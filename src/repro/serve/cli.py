"""``repro-serve``: run the orchestration service from the command line.

Boots an :class:`~repro.serve.engine.OrchestrationEngine` behind the stdlib
HTTP front end, announces the bound address, and serves until SIGTERM or
SIGINT.  On shutdown it flushes the final obs snapshot (``--obs-out``) and
the full placement trace (``--trace-out``) atomically, prints the run
report to stdout, and exits 0 — the contract the integration tests and the
``serve-smoke`` CI job rely on.

``--port 0`` binds an ephemeral port; ``--port-file`` writes the chosen
port as soon as the socket is bound so a parent process (test harness,
load generator script) can discover it without racing the boot.

Resilience knobs (all off by default — the default run stays bit-identical
to the fault-free serving layer):

* ``--server-mtbf`` / ``--dark-mtbf`` turn on the seeded live fault surface
  (server crash/repair, per-hive link blackouts) of
  :class:`~repro.serve.faults.ServeFaultSpec`;
* ``--queue-bound`` enables deterministic overload shedding (503 +
  Retry-After, telemetry shed before inference);
* ``--checkpoint`` writes a crash checkpoint every ``--checkpoint-every``
  requests; a SIGKILLed process restarts with the same arguments plus
  ``--resume`` and continues bit-identically.  ``--resume`` with a missing
  checkpoint file starts fresh (first boot and resumed boot share one
  command line); a checkpoint written under a *different* config refuses
  with exit code 3.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.calibration import CYCLE_SECONDS
from repro.core.placement import POLICY_KINDS
from repro.resilience.errors import CheckpointError
from repro.serve.checkpoint import DEFAULT_EVERY, ServeCheckpointer, resume_engine
from repro.serve.engine import OrchestrationEngine, ServeConfig
from repro.serve.faults import ServeFaultSpec
from repro.serve.http import make_server, serve_until_signal
from repro.util.atomic import atomic_write, atomic_write_json


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve live admission/placement decisions for a hive fleet.",
    )
    parser.add_argument("--model", choices=("svm", "cnn"), default="svm")
    parser.add_argument(
        "--policy",
        choices=POLICY_KINDS,
        default="first-fit",
        help="slot filling policy (default: the paper's first-fit)",
    )
    parser.add_argument(
        "--policy-seed", type=int, default=0,
        help="seed for stochastic-score policies (swarm-scored)",
    )
    parser.add_argument("--max-parallel", type=int, default=None,
                        help="per-slot client cap (default: calibration)")
    parser.add_argument("--period", type=float, default=CYCLE_SECONDS,
                        help="wake-up cycle seconds (default: %(default)s)")
    parser.add_argument("--max-servers", type=int, default=None,
                        help="server budget; omit for elastic cloud")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8037,
                        help="listen port; 0 binds an ephemeral port")
    parser.add_argument("--port-file", default=None,
                        help="write the bound port to this file once listening")
    parser.add_argument("--trace-out", default=None,
                        help="flush the full placement trace here on shutdown")
    parser.add_argument("--obs-out", default=None,
                        help="flush the final obs snapshot here on shutdown")
    overload = parser.add_argument_group("overload protection")
    overload.add_argument(
        "--queue-bound", type=int, default=None,
        help="bounded admission queue: shed inference at this in-flight "
        "depth, telemetry at half of it (default: unbounded, never shed)",
    )
    faults = parser.add_argument_group("live fault injection (off unless an MTBF is given)")
    faults.add_argument("--server-mtbf", type=float, default=None,
                        help="mean seconds between failures per faulty server")
    faults.add_argument("--server-repair", type=float, default=600.0,
                        help="mean repair seconds per server outage (default: %(default)s)")
    faults.add_argument("--fault-servers", type=int, default=4,
                        help="how many logical servers can fail (default: %(default)s)")
    faults.add_argument("--dark-mtbf", type=float, default=None,
                        help="mean seconds between link blackouts per faulty hive")
    faults.add_argument("--dark-repair", type=float, default=240.0,
                        help="mean blackout seconds (default: %(default)s)")
    faults.add_argument("--fault-hives", type=int, default=0,
                        help="how many hives see link blackouts (default: %(default)s)")
    faults.add_argument("--fault-horizon", type=float, default=4000.0,
                        help="sim seconds the fault schedules cover (default: %(default)s)")
    faults.add_argument("--fault-seed", type=int, default=0,
                        help="base seed of every fault/retry stream (default: %(default)s)")
    recovery = parser.add_argument_group("crash recovery")
    recovery.add_argument("--checkpoint", default=None,
                          help="write a crash checkpoint of the engine state here")
    recovery.add_argument("--checkpoint-every", type=int, default=DEFAULT_EVERY,
                          help="requests between checkpoints (default: %(default)s)")
    recovery.add_argument("--resume", action="store_true",
                          help="continue from --checkpoint if it exists "
                          "(fresh start when it does not)")
    return parser


def _fault_spec(args: argparse.Namespace) -> Optional[ServeFaultSpec]:
    """Build the live fault surface the flags describe (None when off)."""
    if args.server_mtbf is None and args.dark_mtbf is None:
        return None
    import math

    return ServeFaultSpec(
        server_mtbf_s=args.server_mtbf if args.server_mtbf is not None else math.inf,
        server_repair_s=args.server_repair,
        fault_servers=args.fault_servers,
        dark_mtbf_s=args.dark_mtbf if args.dark_mtbf is not None else math.inf,
        dark_repair_s=args.dark_repair,
        fault_hives=args.fault_hives,
        horizon_s=args.fault_horizon,
        seed=args.fault_seed,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.max_servers is not None and args.max_servers < 0:
        print("error: --max-servers must be >= 0", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    try:
        config = ServeConfig(
            model=args.model,
            policy=args.policy,
            policy_seed=args.policy_seed,
            max_parallel=args.max_parallel,
            period=args.period,
            max_servers=args.max_servers,
            queue_bound=args.queue_bound,
            faults=_fault_spec(args),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    resumed = False
    if args.resume and Path(args.checkpoint).exists():
        try:
            engine = resume_engine(args.checkpoint, config)
        except CheckpointError as exc:
            print(f"error: cannot resume from {args.checkpoint}: {exc}", file=sys.stderr)
            return 3
        resumed = True
    else:
        engine = OrchestrationEngine(config)
    if args.checkpoint:
        engine.checkpointer = ServeCheckpointer(args.checkpoint, args.checkpoint_every)

    server = make_server(engine, args.host, args.port)
    port = server.server_address[1]
    if args.port_file:
        atomic_write(args.port_file, f"{port}\n")
    state = "resumed" if resumed else "fresh"
    print(f"repro-serve listening on http://{args.host}:{port}/v1/ "
          f"(policy={config.policy}, model={config.model}, {state}, "
          f"requests={engine.n_requests})", file=sys.stderr)
    signum = serve_until_signal(server)
    if engine.checkpointer is not None:
        engine.checkpointer.flush(engine)
    report = engine.report()
    report["shutdown_signal"] = signum
    report["resumed"] = resumed
    if args.trace_out:
        from repro.util.atomic import atomic_writer

        with atomic_writer(args.trace_out) as fh:
            engine.trace.dump(fh)
    if args.obs_out:
        atomic_write_json(
            args.obs_out,
            engine.obs.snapshot(extra={"kind": "serve", "report": report}),
            sort_keys=True,
        )
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
