"""Sensor models.

Each sensor knows its sampling cost (duration, power) and produces synthetic
readings from the environment traces.  The catalog mirrors the deployed
hardware (§III): an SHT31 temperature/humidity sensor, three USB microphones
(20 Hz–16 kHz), a Raspberry Pi camera module 2, and ±5 A Grove current
sensors on the Pi Zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensing.traces import Trace
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class Sensor:
    """Base sensor description: name, acquisition cost, payload size."""

    name: str
    acquisition_s: float
    acquisition_w: float
    payload_bytes: int

    def __post_init__(self) -> None:
        check_positive(self.acquisition_s, f"{self.name}.acquisition_s")
        check_non_negative(self.acquisition_w, f"{self.name}.acquisition_w")
        if self.payload_bytes < 0:
            raise ValueError(f"{self.name}.payload_bytes must be >= 0")

    @property
    def acquisition_energy(self) -> float:
        """Joules per acquisition."""
        return self.acquisition_s * self.acquisition_w


class TemperatureHumiditySensor(Sensor):
    """SHT31 on the Grove hat, placed on the queen excluder."""

    def __init__(self, noise_c: float = 0.2, noise_pct: float = 1.5) -> None:
        super().__init__(name="sht31", acquisition_s=0.05, acquisition_w=0.005, payload_bytes=16)
        object.__setattr__(self, "noise_c", noise_c)
        object.__setattr__(self, "noise_pct", noise_pct)

    def read(self, temp_trace: Trace, hum_trace: Trace, time: float, seed: SeedLike = None) -> tuple[float, float]:
        """Sample (temperature °C, humidity %) at ``time`` with sensor noise."""
        rng = make_rng(seed)
        t = float(temp_trace.at(time)) + rng.normal(0.0, self.noise_c)
        h = float(np.clip(hum_trace.at(time) + rng.normal(0.0, self.noise_pct), 0.0, 100.0))
        return t, h


class Microphone(Sensor):
    """USB microphone, 20 Hz–16 kHz; records ``duration_s`` at ``sample_rate``."""

    def __init__(self, duration_s: float = 10.0, sample_rate: int = 22050, bit_depth: int = 16) -> None:
        payload = int(duration_s * sample_rate * bit_depth // 8)
        super().__init__(name="usb-microphone", acquisition_s=duration_s, acquisition_w=0.15, payload_bytes=payload)
        object.__setattr__(self, "sample_rate", int(sample_rate))
        object.__setattr__(self, "duration_s", float(duration_s))

    def record(self, synth, queen_present: bool, seed: SeedLike = None) -> np.ndarray:
        """Record a clip from a :class:`repro.audio.synth.HiveSoundSynthesizer`."""
        return synth.render(duration=self.duration_s, queen_present=queen_present, seed=seed)


class Camera(Sensor):
    """Raspberry Pi camera module 2 shooting 800×600 stills of the entrance."""

    def __init__(self, width: int = 800, height: int = 600, n_images: int = 5, burst_s: float = 5.0) -> None:
        payload = int(width * height * 3 * 0.15) * n_images  # ~JPEG 0.15 bpp-equivalent
        super().__init__(name="pi-camera-v2", acquisition_s=burst_s, acquisition_w=0.25, payload_bytes=payload)
        object.__setattr__(self, "width", int(width))
        object.__setattr__(self, "height", int(height))
        object.__setattr__(self, "n_images", int(n_images))


class CurrentSensor(Sensor):
    """±5 A DC/AC Grove current sensor (three per hive on the Pi Zero)."""

    def __init__(self, full_scale_a: float = 5.0, noise_a: float = 0.01) -> None:
        super().__init__(name="grove-current", acquisition_s=0.02, acquisition_w=0.003, payload_bytes=8)
        object.__setattr__(self, "full_scale_a", float(full_scale_a))
        object.__setattr__(self, "noise_a", float(noise_a))

    def read_power(self, true_watts: float, volts: float = 5.0, seed: SeedLike = None) -> float:
        """Measure a power draw through the 5 V rail, with clipping and noise."""
        rng = make_rng(seed)
        amps = true_watts / volts
        measured = np.clip(amps + rng.normal(0.0, self.noise_a), -self.full_scale_a, self.full_scale_a)
        return float(measured * volts)
