"""The composed smart beehive of §III.

Glues the substrates into the deployed node: a Pi Zero WH (always on,
current monitoring, wake-up signalling), a Pi 3b+ (duty-cycled recorder), an
SHT31, three microphones on the queen excluder, the entrance camera, the
Wi-Fi uplink and the solar energy node.  One :meth:`SmartBeehive.run_cycle`
performs the full §IV routine — wake, sample every sensor, record audio,
shoot the image burst, upload, shut down — returning the collected payload
and charging every energy ledger.

This is the object a downstream user instantiates; the §VI fleet simulators
abstract it into calibrated :class:`~repro.core.client.ClientProfile`
numbers, and an integration test checks the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.audio.synth import HiveSoundSynthesizer
from repro.core.calibration import PAPER, PaperConstants
from repro.devices.device import AlwaysOnDevice, DutyCycledDevice
from repro.devices.sensors import Camera, CurrentSensor, Microphone, TemperatureHumiditySensor
from repro.devices.specs import RASPBERRY_PI_3B_PLUS, RASPBERRY_PI_ZERO_WH
from repro.energy.power import TaskPower
from repro.network.link import LinkModel
from repro.network.wifi import WIFI_80211N_2G4
from repro.sensing.traces import Trace
from repro.util.rng import SeedLike, derive_seed, make_rng


@dataclass(frozen=True)
class CyclePayload:
    """Everything one wake-up collects."""

    time: float
    temperature_c: float
    humidity_pct: float
    audio_clips: Tuple[np.ndarray, ...]
    n_images: int
    payload_bytes: int
    upload_duration_s: float
    queen_detected: Optional[bool] = None

    @property
    def audio_seconds(self) -> float:
        total = sum(clip.size for clip in self.audio_clips)
        return total / 22050.0


class SmartBeehive:
    """One deployed smart beehive (hardware of §III, routine of §IV).

    Parameters
    ----------
    hive_temperature / hive_humidity:
        Environment traces the sensors sample (e.g. from
        :class:`repro.sensing.hive.HiveMicroclimate`).
    queen_present:
        Ground truth for the synthesized audio.
    link:
        Uplink model (default: the deployed 2.4 GHz profile).
    seed:
        Base seed; every cycle derives its own stream.
    """

    N_MICROPHONES = 3  # on the queen excluder (§III)

    def __init__(
        self,
        hive_temperature: Trace,
        hive_humidity: Trace,
        queen_present: bool = True,
        link: LinkModel = WIFI_80211N_2G4,
        synth: Optional[HiveSoundSynthesizer] = None,
        constants: PaperConstants = PAPER,
        seed: SeedLike = 0,
        name: str = "hive",
    ) -> None:
        self.name = name
        self.hive_temperature = hive_temperature
        self.hive_humidity = hive_humidity
        self.queen_present = bool(queen_present)
        self.link = link
        self.synth = synth or HiveSoundSynthesizer()
        self.constants = constants
        self.seed = 0 if seed is None else int(make_rng(seed).integers(2**31))

        # Hardware.
        self.recorder = DutyCycledDevice(RASPBERRY_PI_3B_PLUS, name=f"{name}-pi3")
        self.monitor = AlwaysOnDevice(RASPBERRY_PI_ZERO_WH, name=f"{name}-pizero")
        self.sht31 = TemperatureHumiditySensor()
        self.microphones = [Microphone(duration_s=10.0) for _ in range(self.N_MICROPHONES)]
        self.camera = Camera()
        self.current_sensors = [CurrentSensor() for _ in range(3)]  # two supplies + panel
        self._payloads: List[CyclePayload] = []

    @property
    def payloads(self) -> List[CyclePayload]:
        """All collected cycles, in order."""
        return list(self._payloads)

    def run_cycle(
        self,
        wake_time: float,
        audio_duration: Optional[float] = None,
        classifier=None,
    ) -> CyclePayload:
        """Execute one full §IV routine starting at ``wake_time``.

        ``audio_duration`` shortens the microphone recordings for fast tests
        (energy accounting still uses the calibrated task figures, which
        assume the deployed 10-second clips).  ``classifier`` — optional
        callable ``clip -> bool`` executed on the middle microphone's clip
        (the §V queen-detection placement at the edge).
        """
        cycle_index = len(self._payloads)
        rng_seed = derive_seed(self.seed, self.name, "cycle", cycle_index)
        rng = make_rng(rng_seed)

        # --- sensor sampling ------------------------------------------------
        temp, hum = self.sht31.read(
            self.hive_temperature, self.hive_humidity, wake_time, seed=derive_seed(rng_seed, "sht")
        )
        duration = audio_duration if audio_duration is not None else self.microphones[0].duration_s
        clips = tuple(
            self.synth.render(duration, self.queen_present, seed=derive_seed(rng_seed, "mic", i))
            for i in range(self.N_MICROPHONES)
        )
        n_images = self.camera.n_images

        # --- payload & upload -------------------------------------------------
        payload_bytes = (
            sum(m.payload_bytes for m in self.microphones)
            + self.camera.payload_bytes
            + self.sht31.payload_bytes
        )
        upload = self.link.transfer(payload_bytes, rng=derive_seed(rng_seed, "uplink"))

        # --- optional on-device service ----------------------------------------
        queen_detected = None
        service_tasks: List[TaskPower] = []
        if classifier is not None:
            queen_detected = bool(classifier(clips[len(clips) // 2]))
            c = self.constants
            service_tasks = [
                TaskPower("queen_detection_svm", c.svm_edge_s, measured_energy=c.svm_edge_j)
            ]

        # --- energy accounting (calibrated §IV/Table rows; the stochastic
        # upload duration replaces the nominal transfer window) ---------------
        c = self.constants
        tasks = [
            TaskPower("wake_collect", c.collect_s, measured_energy=c.collect_j),
            *service_tasks,
            TaskPower(
                "send_audio",
                upload.duration_s,
                watts=c.send_audio_j / c.send_audio_s,  # transfer power, stochastic time
            ),
            TaskPower("shutdown", c.shutdown_s, measured_energy=c.shutdown_j),
        ]
        self.recorder.sleep_until(wake_time)
        self.recorder.run_routine(wake_time, tasks)
        # The monitor samples currents around the wake-up (cheap excursions).
        self.monitor.idle_until(wake_time)
        self.monitor.excursion(wake_time, "active", 0.5)

        payload = CyclePayload(
            time=wake_time,
            temperature_c=temp,
            humidity_pct=hum,
            audio_clips=clips,
            n_images=n_images,
            payload_bytes=payload_bytes,
            upload_duration_s=upload.duration_s,
            queen_detected=queen_detected,
        )
        self._payloads.append(payload)
        return payload

    def finish(self, time: float) -> None:
        """Close both devices' observation windows."""
        self.recorder.finish(time)
        self.monitor.finish(time)

    @property
    def total_energy_j(self) -> float:
        """Recorder + monitor ledger total so far."""
        return self.recorder.account.total + self.monitor.account.total
