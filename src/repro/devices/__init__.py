"""Device substrate: hardware catalog, duty-cycled devices, sensors.

Models the three machines of the paper's testbed:

* **Raspberry Pi 3b+** — the beehive data recorder (duty-cycled; boots on a
  GPIO wake-up signal, samples sensors, uploads, shuts down);
* **Raspberry Pi Zero WH** — the always-on energy monitor that issues the
  wake-up signals and records currents;
* **Cloud server** — an i7-8700K + RTX 2070 machine that is always idle-on
  and executes the queen-detection service in the edge+cloud scenario.
"""

from repro.devices.specs import (
    DeviceSpec,
    RASPBERRY_PI_3B_PLUS,
    RASPBERRY_PI_ZERO_WH,
    CLOUD_SERVER_I7_RTX2070,
    catalog,
)
from repro.devices.device import DutyCycledDevice, AlwaysOnDevice, DeviceError
from repro.devices.beehive import SmartBeehive, CyclePayload
from repro.devices.sensors import (
    Sensor,
    TemperatureHumiditySensor,
    Microphone,
    Camera,
    CurrentSensor,
)

__all__ = [
    "DeviceSpec",
    "RASPBERRY_PI_3B_PLUS",
    "RASPBERRY_PI_ZERO_WH",
    "CLOUD_SERVER_I7_RTX2070",
    "catalog",
    "DutyCycledDevice",
    "AlwaysOnDevice",
    "DeviceError",
    "SmartBeehive",
    "CyclePayload",
    "Sensor",
    "TemperatureHumiditySensor",
    "Microphone",
    "Camera",
    "CurrentSensor",
]
