"""Device state machines with energy accounting.

:class:`DutyCycledDevice` models the Pi 3b+: it is normally in ``sleep``,
boots on a wake-up call, executes a sequence of named tasks, and shuts down.
Every residency is recorded on a :class:`~repro.des.monitor.StateTimeline`
and charged to an :class:`~repro.energy.account.EnergyAccount`, so the same
object yields both Figure 2b-style power traces and Table I-style ledgers.

:class:`AlwaysOnDevice` models the Pi Zero WH and the cloud server: always
powered, with transient excursions to higher-power states.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.des.monitor import StateTimeline
from repro.devices.specs import DeviceSpec
from repro.energy.account import EnergyAccount
from repro.energy.power import TaskPower
from repro.util.validation import check_non_negative


class DeviceError(RuntimeError):
    """Raised on invalid device state transitions."""


class _BaseDevice:
    """Shared timeline/ledger plumbing.

    The device is always *in* exactly one residency.  A residency is charged
    when it ends (at the next transition), using either the spec's state
    power or a per-residency override (how named tasks carry their own
    measured power without polluting the spec's state table).
    """

    def __init__(self, spec: DeviceSpec, initial_state: str, start_time: float = 0.0, name: str = "") -> None:
        if initial_state not in spec.power:
            raise DeviceError(f"{spec.name!r} has no state {initial_state!r}")
        self.spec = spec
        self.name = name or spec.name
        self.timeline = StateTimeline(initial_state, start_time)
        self.account = EnergyAccount(owner=self.name)
        self._time = float(start_time)
        # (category, watts) override for the residency in progress, if any.
        self._override: Optional[Tuple[str, float]] = None

    @property
    def state(self) -> str:
        return self.timeline.state

    @property
    def time(self) -> float:
        """Device-local clock (time of the last transition)."""
        return self._time

    def _charge_residency(self, until: float) -> None:
        dt = until - self._time
        if dt < 0:
            raise DeviceError(f"time went backwards: {until} < {self._time}")
        if dt == 0:
            return
        if self._override is not None:
            category, watts = self._override
        else:
            category, watts = self.state, self.spec.watts(self.state)
        self.account.charge_power(category, watts, dt, time=self._time)

    def _enter(self, time: float, state: str, override: Optional[Tuple[str, float]] = None) -> None:
        if state not in self.spec.power:
            raise DeviceError(f"{self.spec.name!r} has no state {state!r}")
        self._charge_residency(time)
        self.timeline.transition(time, state)
        self._time = time
        self._override = override

    def finish(self, time: float) -> None:
        """Close the observation window, charging the final residency."""
        self._charge_residency(time)
        self._time = time
        self.timeline.close(time)

    def power_trace(self, step: float, end_time: Optional[float] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Sample instantaneous power on a fixed grid (Figure 2b style)."""
        check_non_negative(step, "step")
        segs = self.timeline.segments(end_time)
        if not segs:
            raise DeviceError("no recorded segments")
        t0, t_end = segs[0][0], segs[-1][1]
        n = max(int(np.floor((t_end - t0) / step)) + 1, 1)
        times = t0 + np.arange(n) * step
        watts = np.zeros(n)
        for t_start, t_stop, state in segs:
            mask = (times >= t_start) & (times < t_stop)
            watts[mask] = self.spec.watts(state)
        # A grid point landing exactly on the window end belongs to the
        # final segment (segments are half-open on the right).
        watts[times >= segs[-1][1]] = self.spec.watts(segs[-1][2])
        return times, watts


class DutyCycledDevice(_BaseDevice):
    """Sleep → boot → tasks → shutdown → sleep duty cycle (the Pi 3b+)."""

    def __init__(
        self,
        spec: DeviceSpec,
        start_time: float = 0.0,
        name: str = "",
        sleep_state: str = "sleep",
        boot_state: str = "boot",
        shutdown_state: str = "shutdown",
    ) -> None:
        for st in (sleep_state, boot_state, shutdown_state):
            if st not in spec.power:
                raise DeviceError(f"{spec.name!r} has no state {st!r}")
        super().__init__(spec, sleep_state, start_time, name)
        self.sleep_state = sleep_state
        self.boot_state = boot_state
        self.shutdown_state = shutdown_state
        self._cycles = 0

    @property
    def cycles_completed(self) -> int:
        return self._cycles

    def run_routine(
        self,
        wake_time: float,
        tasks: Iterable[TaskPower],
        boot_duration: float = 0.0,
        shutdown_duration: float = 0.0,
    ) -> float:
        """Execute one wake-up routine starting at ``wake_time``.

        ``tasks`` run back-to-back, each charged at its own measured power
        under its own ledger category.  Returns the time at which the device
        is back asleep.
        """
        if wake_time < self._time:
            raise DeviceError(f"wake_time {wake_time} precedes device clock {self._time}")
        if self.state != self.sleep_state:
            raise DeviceError(f"routine requested while in state {self.state!r}")
        t = wake_time
        if boot_duration > 0:
            self._enter(t, self.boot_state)
            t += boot_duration
        for task in tasks:
            # Timeline shows the task's name if the spec knows it, else 'active'.
            state = task.name if task.name in self.spec.power else "active"
            self._enter(t, state, override=(task.name, task.power))
            t += task.duration
        if shutdown_duration > 0:
            self._enter(t, self.shutdown_state)
            t += shutdown_duration
        self._enter(t, self.sleep_state)
        self._cycles += 1
        return t

    def sleep_until(self, time: float) -> None:
        """Remain asleep until ``time`` (charges sleep power)."""
        if self.state != self.sleep_state:
            raise DeviceError(f"sleep_until while in state {self.state!r}")
        self._enter(time, self.sleep_state)


class AlwaysOnDevice(_BaseDevice):
    """Always-powered device with transient state excursions (Pi Zero, server)."""

    def __init__(self, spec: DeviceSpec, idle_state: str = "idle", start_time: float = 0.0, name: str = "") -> None:
        super().__init__(spec, idle_state, start_time, name)
        self.idle_state = idle_state

    def excursion(
        self,
        start: float,
        state: str,
        duration: float,
        override: Optional[Tuple[str, float]] = None,
    ) -> float:
        """Spend ``duration`` seconds in ``state`` and return to idle.

        ``override=(category, watts)`` charges the excursion at a measured
        power under a custom ledger category.
        """
        check_non_negative(duration, "duration")
        self._enter(start, state, override=override)
        end = start + duration
        self._enter(end, self.idle_state)
        return end

    def idle_until(self, time: float) -> None:
        """Hold idle until ``time``."""
        if self.state != self.idle_state:
            raise DeviceError(f"idle_until while in state {self.state!r}")
        self._enter(time, self.idle_state)
