"""Hardware specification catalog.

Power figures come from the paper where available (§IV/§V: Pi 3b+ sleep
0.62 W, active ≈ 2.14 W; cloud idle ≈ 44.6 W and receive ≈ 68.8 W derived
from Table II) and from vendor datasheets otherwise.  Compute throughput
numbers (``effective_gflops``) are the calibration knob of the FLOP→energy
model in :mod:`repro.ml.nn.flops`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.energy.power import PowerModel, PowerState


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a device type.

    Attributes
    ----------
    name:
        Catalog identifier.
    cpu:
        Human-readable CPU description.
    ram_bytes:
        Installed memory.
    power:
        ``state -> watts`` map (becomes a :class:`PowerModel`).
    effective_gflops:
        Sustained throughput achieved by our NumPy-style inference workloads;
        used by the FLOP→time→energy model.
    network_mbps:
        Nominal uplink throughput in Mbit/s.
    """

    name: str
    cpu: str
    ram_bytes: int
    power: Dict[str, float]
    effective_gflops: float
    network_mbps: float = 0.0
    description: str = ""

    def power_model(self) -> PowerModel:
        """Materialize the spec's power table as a :class:`PowerModel`."""
        return PowerModel(
            self.name,
            [PowerState(state, watts, description=f"{self.name} {state}") for state, watts in self.power.items()],
        )

    def watts(self, state: str) -> float:
        try:
            return self.power[state]
        except KeyError:
            known = ", ".join(sorted(self.power))
            raise KeyError(f"{self.name!r} has no state {state!r} (known: {known})") from None


#: Beehive data recorder.  Sleep/active powers from §IV; boot/shutdown and
#: transfer powers implied by Tables I/II (transfer ≈ 2.5 W: "the network
#: components have a larger energy cost than the sensors").
RASPBERRY_PI_3B_PLUS = DeviceSpec(
    name="raspberry-pi-3b+",
    cpu="quad-core 1.4 GHz 64-bit (BCM2837B0)",
    ram_bytes=1 * 1024**3,
    power={
        "off": 0.0,
        "sleep": 0.625,  # §IV quotes 0.62; Tables I/II imply 0.625 (111.6 J / 178.5 s)
        "boot": 2.3,
        "active": 2.14,  # §IV: average routine power
        "collect": 2.06,  # Table I: 131.8 J / 64.0 s
        "compute": 2.15,  # Table I: SVM row 98.9 J / 46.1 s
        "transfer": 2.49,  # Table II: send audio 37.3 J / 15.0 s
        "shutdown": 2.12,  # Table I: 21.0 J / 9.9 s
    },
    effective_gflops=0.9,
    network_mbps=20.0,
    description="Beehive data recorder (duty-cycled).",
)

#: Always-on energy monitor / wake-up signaller.
RASPBERRY_PI_ZERO_WH = DeviceSpec(
    name="raspberry-pi-zero-wh",
    cpu="single-core 1 GHz (BCM2835)",
    ram_bytes=512 * 1024**2,
    power={
        "off": 0.0,
        "idle": 0.45,
        "active": 0.85,
        "transfer": 1.1,
    },
    effective_gflops=0.15,
    network_mbps=10.0,
    description="Always-on current monitor; raises the GPIO wake-up signal.",
)

#: Cloud server: idle/receive/compute powers derived from Table II
#: (idle 9415 J / 211.1 s = 44.6 W; receive 1032 J / 15 s = 68.8 W;
#: CNN inference 108 J / 1.0 s = 108 W on the GPU).
CLOUD_SERVER_I7_RTX2070 = DeviceSpec(
    name="cloud-i7-8700k-rtx2070",
    cpu="Intel i7-8700K + Nvidia RTX 2070",
    ram_bytes=32 * 1024**3,
    power={
        "off": 0.0,
        "idle": 44.6,
        "receive": 68.8,
        "compute_cpu": 63.0,  # Table II SVM: 6.3 J / 0.1 s
        "compute_gpu": 108.0,  # Table II CNN: 108 J / 1.0 s
    },
    effective_gflops=220.0,
    network_mbps=1000.0,
    description="Dedicated inference server, always on in the edge+cloud scenario.",
)

_CATALOG: Dict[str, DeviceSpec] = {
    spec.name: spec
    for spec in (RASPBERRY_PI_3B_PLUS, RASPBERRY_PI_ZERO_WH, CLOUD_SERVER_I7_RTX2070)
}


def catalog(name: str | None = None):
    """Look up a spec by name, or return the full catalog dict."""
    if name is None:
        return dict(_CATALOG)
    try:
        return _CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(_CATALOG))
        raise KeyError(f"unknown device {name!r} (known: {known})") from None
