"""Battery (power-bank) state-of-charge model.

The deployed system uses a 20 000 mAh USB power bank charged from a solar
panel through a 5 V DC/DC converter.  We model it as an energy reservoir with
charge/discharge efficiencies, a low-voltage cutoff (the paper's night-time
outages: "the system is not running due to the lack of light at night"), and
a recovery hysteresis so the device does not flap around the cutoff.
"""

from __future__ import annotations

from repro.util.units import mah_to_joules
from repro.util.validation import check_in_range, check_non_negative, check_positive


class Battery:
    """Energy reservoir with efficiency losses and a cutoff/recovery band.

    Parameters
    ----------
    capacity_joules:
        Usable capacity in joules (default: 20 000 mAh at 3.7 V ≈ 266 kJ).
    soc:
        Initial state of charge in [0, 1].
    charge_efficiency / discharge_efficiency:
        Fractions of energy retained on the way in / delivered on the way out.
    cutoff_soc:
        Below this state of charge the battery refuses to supply load
        (protection circuit).  The outage latches until ``recovery_soc``.
    recovery_soc:
        State of charge at which supply resumes after a cutoff.
    """

    DEFAULT_CAPACITY = mah_to_joules(20_000.0, volts=3.7)

    def __init__(
        self,
        capacity_joules: float = DEFAULT_CAPACITY,
        soc: float = 1.0,
        charge_efficiency: float = 0.92,
        discharge_efficiency: float = 0.92,
        cutoff_soc: float = 0.02,
        recovery_soc: float = 0.05,
    ) -> None:
        self.capacity = check_positive(capacity_joules, "capacity_joules")
        check_in_range(soc, "soc", 0.0, 1.0)
        self._stored = soc * self.capacity
        self.charge_efficiency = check_in_range(charge_efficiency, "charge_efficiency", 0.0, 1.0, low_inclusive=False)
        self.discharge_efficiency = check_in_range(
            discharge_efficiency, "discharge_efficiency", 0.0, 1.0, low_inclusive=False
        )
        self.cutoff_soc = check_in_range(cutoff_soc, "cutoff_soc", 0.0, 1.0)
        self.recovery_soc = check_in_range(recovery_soc, "recovery_soc", 0.0, 1.0)
        if self.recovery_soc < self.cutoff_soc:
            raise ValueError("recovery_soc must be >= cutoff_soc")
        self._in_cutoff = self.soc <= self.cutoff_soc

    @property
    def stored(self) -> float:
        """Stored energy in joules."""
        return self._stored

    @property
    def soc(self) -> float:
        """State of charge in [0, 1]."""
        return self._stored / self.capacity

    @property
    def can_supply(self) -> bool:
        """False while the protection cutoff is latched."""
        return not self._in_cutoff

    def charge(self, energy: float) -> float:
        """Store ``energy`` joules (pre-loss); returns joules actually stored.

        Overflow beyond capacity is discarded (the charge controller floats).
        """
        check_non_negative(energy, "energy")
        stored = energy * self.charge_efficiency
        accepted = min(stored, self.capacity - self._stored)
        self._stored += accepted
        if self._in_cutoff and self.soc >= self.recovery_soc:
            self._in_cutoff = False
        return accepted

    def discharge(self, energy: float) -> float:
        """Draw ``energy`` joules of *delivered* load; returns joules delivered.

        If the battery cannot cover the full request (or is in cutoff), it
        delivers what it can and latches the cutoff — modelling the brownout
        that halts the beehive electronics at night.
        """
        check_non_negative(energy, "energy")
        if self._in_cutoff:
            return 0.0
        needed = energy / self.discharge_efficiency
        floor = self.cutoff_soc * self.capacity
        available = max(0.0, self._stored - floor)
        drawn = min(needed, available)
        self._stored -= drawn
        delivered = drawn * self.discharge_efficiency
        if drawn < needed or self.soc <= self.cutoff_soc:
            self._in_cutoff = True
        return delivered

    def __repr__(self) -> str:
        flag = " CUTOFF" if self._in_cutoff else ""
        return f"Battery(soc={self.soc:.3f}, stored={self._stored:.0f} J{flag})"
