"""Short-horizon solar-harvest forecasting.

The paper's future work proposes "connected beehives' intelligence to tune
its parameters": an adaptive duty cycle needs an estimate of the energy the
panel will deliver before the battery runs dry.  This module provides two
estimators:

* :class:`DiurnalProfileForecaster` — learns an hour-of-day harvest profile
  online (exponentially weighted over days) and predicts by replaying it, a
  standard technique for energy-neutral sensor nodes (cf. Kansal et al.'s
  EWMA scheme);
* :class:`PersistenceForecaster` — "tomorrow ≈ today" baseline.

Both consume ``observe(time, watts)`` samples and answer
``predict_energy(t0, t1)`` in joules.
"""

from __future__ import annotations

import numpy as np

from repro.util.units import DAY
from repro.util.validation import check_in_range, check_positive


class DiurnalProfileForecaster:
    """EWMA hour-of-day harvest profile.

    Maintains ``n_bins`` time-of-day bins; each finished day's observed bin
    averages are folded into the profile with weight ``alpha``.  Prediction
    integrates the profile over the query window.
    """

    def __init__(self, n_bins: int = 48, alpha: float = 0.3) -> None:
        if n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        self.n_bins = int(n_bins)
        self.alpha = check_in_range(alpha, "alpha", 0.0, 1.0, low_inclusive=False)
        self._profile = np.zeros(self.n_bins)  # watts per bin
        self._have_profile = False
        # Current-day accumulation.
        self._day_sum = np.zeros(self.n_bins)
        self._day_count = np.zeros(self.n_bins, dtype=np.int64)
        self._current_day: int | None = None
        self._last_time: float | None = None

    @property
    def bin_seconds(self) -> float:
        return DAY / self.n_bins

    def observe(self, time: float, watts: float) -> None:
        """Feed one harvest-power sample (times must be non-decreasing)."""
        if watts < 0:
            raise ValueError("watts must be >= 0")
        if self._last_time is not None and time < self._last_time:
            raise ValueError(f"time went backwards: {time} < {self._last_time}")
        self._last_time = time
        day = int(time // DAY)
        if self._current_day is None:
            self._current_day = day
        while day > self._current_day:
            self._fold_day()
            self._current_day += 1
        b = int((time % DAY) / DAY * self.n_bins)
        b = min(b, self.n_bins - 1)
        self._day_sum[b] += watts
        self._day_count[b] += 1

    def _fold_day(self) -> None:
        observed = self._day_count > 0
        if not observed.any():
            return
        day_avg = np.zeros(self.n_bins)
        day_avg[observed] = self._day_sum[observed] / self._day_count[observed]
        if self._have_profile:
            self._profile[observed] = (
                (1 - self.alpha) * self._profile[observed] + self.alpha * day_avg[observed]
            )
        else:
            self._profile[observed] = day_avg[observed]
            self._have_profile = True
        self._day_sum[:] = 0.0
        self._day_count[:] = 0

    def predict_power(self, time: float) -> float:
        """Expected harvest power (W) at a future instant."""
        b = int((time % DAY) / DAY * self.n_bins)
        return float(self._profile[min(b, self.n_bins - 1)])

    def predict_energy(self, t0: float, t1: float) -> float:
        """Expected harvest (J) over [t0, t1] by integrating the profile."""
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        if t1 == t0:
            return 0.0
        # Integrate bin by bin (handles multi-day windows).
        total = 0.0
        t = t0
        while t < t1:
            b = int((t % DAY) / DAY * self.n_bins)
            b = min(b, self.n_bins - 1)
            bin_end = (t // self.bin_seconds + 1) * self.bin_seconds
            seg_end = min(bin_end, t1)
            total += self._profile[b] * (seg_end - t)
            t = seg_end
        return total

    @property
    def trained(self) -> bool:
        """True once at least one full day has been folded in."""
        return self._have_profile


class PersistenceForecaster:
    """Baseline: predicts the average power observed over the last day."""

    def __init__(self, window: float = DAY) -> None:
        self.window = check_positive(window, "window")
        self._times: list[float] = []
        self._watts: list[float] = []

    def observe(self, time: float, watts: float) -> None:
        if watts < 0:
            raise ValueError("watts must be >= 0")
        if self._times and time < self._times[-1]:
            raise ValueError("time went backwards")
        self._times.append(time)
        self._watts.append(watts)
        # Trim samples older than the window.
        cutoff = time - self.window
        while self._times and self._times[0] < cutoff:
            self._times.pop(0)
            self._watts.pop(0)

    def predict_energy(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        if not self._watts:
            return 0.0
        return float(np.mean(self._watts)) * (t1 - t0)
