"""Solar irradiance and panel model.

The deployed hives carry a 30 W monocrystalline panel.  We model clear-sky
irradiance with a truncated-cosine day profile (a standard engineering
approximation), modulated by per-day cloudiness from the synthetic weather
generator, and convert irradiance to electrical power through panel
efficiency with a low-light knee — the paper observes that "low luminosity
takes the solar panel's output voltage to uncontrolled values", so below the
knee the panel delivers nothing usable.
"""

from __future__ import annotations

import numpy as np

from repro.util.units import DAY
from repro.util.validation import check_in_range, check_non_negative, check_positive

#: Standard test condition irradiance (W/m^2) at which panels are rated.
STC_IRRADIANCE = 1000.0


def clear_sky_irradiance(
    time_s,
    sunrise_s: float = 6.0 * 3600,
    sunset_s: float = 20.0 * 3600,
    peak_irradiance: float = 900.0,
):
    """Clear-sky horizontal irradiance (W/m²) at time-of-day ``time_s``.

    A half-cosine arch between sunrise and sunset, zero at night.  Accepts
    scalars or arrays; times beyond one day wrap around.
    """
    check_positive(peak_irradiance, "peak_irradiance")
    if sunset_s <= sunrise_s:
        raise ValueError("sunset must be after sunrise")
    t = np.asarray(time_s, dtype=float) % DAY
    daylen = sunset_s - sunrise_s
    phase = (t - sunrise_s) / daylen  # 0..1 across the day
    irr = peak_irradiance * np.sin(np.clip(phase, 0.0, 1.0) * np.pi)
    irr = np.where((t >= sunrise_s) & (t <= sunset_s), irr, 0.0)
    if np.isscalar(time_s):
        return float(irr)
    return irr


class SolarPanel:
    """Flat-plate PV panel with a low-light cutoff knee.

    Parameters
    ----------
    rated_watts:
        Nameplate power at STC (1000 W/m²); the paper's panel is 30 W.
    low_light_knee:
        Irradiance (W/m²) below which output is zero (unregulated voltage).
    derating:
        Overall system derating (soiling, temperature, wiring), applied
        multiplicatively.
    """

    def __init__(
        self,
        rated_watts: float = 30.0,
        low_light_knee: float = 60.0,
        derating: float = 0.85,
    ) -> None:
        self.rated_watts = check_positive(rated_watts, "rated_watts")
        self.low_light_knee = check_non_negative(low_light_knee, "low_light_knee")
        self.derating = check_in_range(derating, "derating", 0.0, 1.0, low_inclusive=False)

    def output_watts(self, irradiance):
        """Electrical output (W) for ``irradiance`` (W/m², scalar or array)."""
        irr = np.asarray(irradiance, dtype=float)
        if np.any(irr < 0):
            raise ValueError("irradiance must be >= 0")
        watts = self.rated_watts * self.derating * irr / STC_IRRADIANCE
        watts = np.where(irr >= self.low_light_knee, watts, 0.0)
        if np.isscalar(irradiance):
            return float(watts)
        return watts

    def energy(self, times: np.ndarray, irradiance: np.ndarray) -> float:
        """Integrate output power over a sampled irradiance trace (joules)."""
        times = np.asarray(times, dtype=float)
        if times.ndim != 1 or times.size < 2:
            raise ValueError("times must be a 1-D array with >= 2 samples")
        if np.any(np.diff(times) <= 0):
            raise ValueError("times must be strictly increasing")
        watts = self.output_watts(np.asarray(irradiance, dtype=float))
        return float(np.trapezoid(watts, times))
