"""Per-entity energy ledger.

Every simulated entity (edge device, cloud server, whole fleet) charges its
consumption into an :class:`EnergyAccount`.  The ledger keeps per-category
sub-totals (``sleep``, ``collect``, ``transfer`` …) so experiment reports can
reproduce the paper's task-by-task tables, and it supports hierarchical
roll-up via :meth:`merge`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.util.validation import check_non_negative


@dataclass(frozen=True)
class LedgerEntry:
    """One charge: ``energy`` joules attributed to ``category`` over ``duration`` s."""

    category: str
    energy: float
    duration: float = 0.0
    time: Optional[float] = None  # sim time of the charge, if known

    def __post_init__(self) -> None:
        check_non_negative(self.energy, "LedgerEntry.energy")
        check_non_negative(self.duration, "LedgerEntry.duration")


class EnergyAccount:
    """Additive energy ledger with per-category totals.

    Invariants (property-tested): the grand total equals the sum of category
    totals; merging accounts is associative and commutative on totals.
    """

    def __init__(self, owner: str = "", keep_entries: bool = False) -> None:
        self.owner = owner
        self._totals: Dict[str, float] = {}
        self._durations: Dict[str, float] = {}
        self._entries: Optional[List[LedgerEntry]] = [] if keep_entries else None

    def charge(self, category: str, energy: float, duration: float = 0.0, time: Optional[float] = None) -> None:
        """Record ``energy`` joules under ``category``."""
        check_non_negative(energy, "energy")
        check_non_negative(duration, "duration")
        self._totals[category] = self._totals.get(category, 0.0) + energy
        self._durations[category] = self._durations.get(category, 0.0) + duration
        if self._entries is not None:
            self._entries.append(LedgerEntry(category, energy, duration, time))

    def charge_power(self, category: str, watts: float, duration: float, time: Optional[float] = None) -> None:
        """Record a constant-power draw: ``watts × duration`` joules."""
        check_non_negative(watts, "watts")
        check_non_negative(duration, "duration")
        self.charge(category, watts * duration, duration, time)

    @property
    def total(self) -> float:
        """Grand total in joules."""
        return sum(self._totals.values())

    @property
    def total_duration(self) -> float:
        """Sum of charged durations in seconds (categories may overlap in time)."""
        return sum(self._durations.values())

    def category_total(self, category: str) -> float:
        return self._totals.get(category, 0.0)

    def category_duration(self, category: str) -> float:
        return self._durations.get(category, 0.0)

    @property
    def categories(self) -> List[str]:
        return sorted(self._totals)

    @property
    def entries(self) -> List[LedgerEntry]:
        if self._entries is None:
            raise ValueError("account was created with keep_entries=False")
        return list(self._entries)

    def breakdown(self) -> Dict[str, float]:
        """``category -> joules`` copy."""
        return dict(self._totals)

    def merge(self, other: "EnergyAccount") -> "EnergyAccount":
        """Return a new account combining both ledgers' totals."""
        out = EnergyAccount(owner=self.owner or other.owner)
        for src in (self, other):
            for cat, e in src._totals.items():
                out._totals[cat] = out._totals.get(cat, 0.0) + e
            for cat, d in src._durations.items():
                out._durations[cat] = out._durations.get(cat, 0.0) + d
        return out

    @staticmethod
    def sum(accounts: Iterable["EnergyAccount"], owner: str = "fleet") -> "EnergyAccount":
        """Roll up many accounts into one."""
        out = EnergyAccount(owner=owner)
        for acc in accounts:
            for cat, e in acc._totals.items():
                out._totals[cat] = out._totals.get(cat, 0.0) + e
            for cat, d in acc._durations.items():
                out._durations[cat] = out._durations.get(cat, 0.0) + d
        return out

    def __repr__(self) -> str:
        return f"EnergyAccount({self.owner!r}, total={self.total:.1f} J, categories={len(self._totals)})"
