"""DC/DC step-down converter model.

The hives convert panel output to 5 V through a step-down converter rated
5 V / 3 A.  The model applies a load-dependent efficiency curve (buck
converters are inefficient at very light load) and clamps output power at the
converter's rating.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_in_range, check_positive


class DCDCConverter:
    """Buck converter with load-dependent efficiency and a power ceiling.

    Efficiency rises from ``light_load_efficiency`` toward
    ``peak_efficiency`` with a saturating exponential in the load fraction —
    a shape matching typical buck-converter datasheet curves.
    """

    def __init__(
        self,
        max_output_watts: float = 15.0,  # 5 V × 3 A
        peak_efficiency: float = 0.92,
        light_load_efficiency: float = 0.70,
        knee_fraction: float = 0.15,
    ) -> None:
        self.max_output_watts = check_positive(max_output_watts, "max_output_watts")
        self.peak_efficiency = check_in_range(peak_efficiency, "peak_efficiency", 0.0, 1.0, low_inclusive=False)
        self.light_load_efficiency = check_in_range(
            light_load_efficiency, "light_load_efficiency", 0.0, self.peak_efficiency
        )
        self.knee_fraction = check_in_range(knee_fraction, "knee_fraction", 0.0, 1.0, low_inclusive=False)

    def efficiency(self, output_watts):
        """Efficiency at the given output power (scalar or array)."""
        p = np.asarray(output_watts, dtype=float)
        if np.any(p < 0):
            raise ValueError("output_watts must be >= 0")
        frac = np.clip(p / self.max_output_watts, 0.0, 1.0)
        eff = self.peak_efficiency - (self.peak_efficiency - self.light_load_efficiency) * np.exp(
            -frac / self.knee_fraction
        )
        if np.isscalar(output_watts):
            return float(eff)
        return eff

    def convert(self, input_watts):
        """Output power available for ``input_watts`` at the input (scalar/array).

        Output is ``input × efficiency`` clamped at the rating; the efficiency
        is evaluated at the (clamped) output operating point via one fixed-point
        refinement, which is accurate to <0.5 % for these smooth curves.
        """
        p_in = np.asarray(input_watts, dtype=float)
        if np.any(p_in < 0):
            raise ValueError("input_watts must be >= 0")
        # First guess: peak efficiency; refine once at the implied output point.
        p_out = np.clip(p_in * self.peak_efficiency, 0.0, self.max_output_watts)
        p_out = np.clip(p_in * self.efficiency(p_out), 0.0, self.max_output_watts)
        if np.isscalar(input_watts):
            return float(p_out)
        return p_out
