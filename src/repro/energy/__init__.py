"""Energy substrate: power models, ledgers, battery, solar harvest.

This package models the *energy node* of the deployed system (§III of the
paper): a 30 W monocrystalline solar panel, a DC/DC step-down converter
(5 V / 3 A) and a 20 000 mAh power bank, plus the power-state machinery used
to account for the duty-cycled Raspberry Pi devices.

The day/night outages visible in the paper's Figure 2a (the system halts when
panel output collapses after sunset and the battery is drained) emerge from
:class:`repro.energy.harvest.HarvestSimulation`.
"""

from repro.energy.power import PowerState, PowerModel, TaskPower
from repro.energy.account import EnergyAccount, LedgerEntry
from repro.energy.battery import Battery
from repro.energy.solar import SolarPanel, clear_sky_irradiance
from repro.energy.converter import DCDCConverter
from repro.energy.harvest import EnergyNode, HarvestSimulation, HarvestResult
from repro.energy.forecast import DiurnalProfileForecaster, PersistenceForecaster

__all__ = [
    "PowerState",
    "PowerModel",
    "TaskPower",
    "EnergyAccount",
    "LedgerEntry",
    "Battery",
    "SolarPanel",
    "clear_sky_irradiance",
    "DCDCConverter",
    "EnergyNode",
    "HarvestSimulation",
    "HarvestResult",
    "DiurnalProfileForecaster",
    "PersistenceForecaster",
]
