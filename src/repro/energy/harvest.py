"""Combined energy-node simulation: panel → converter → battery → load.

:class:`HarvestSimulation` steps the full chain on a fixed time grid and
produces the availability trace underlying the paper's Figure 2a: during the
day the panel covers the load and recharges the battery; after sunset the
battery alone carries the load, and once it hits the protection cutoff the
beehive electronics go dark until enough morning light has accumulated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.energy.battery import Battery
from repro.energy.converter import DCDCConverter
from repro.energy.solar import SolarPanel, clear_sky_irradiance
from repro.util.validation import check_positive


@dataclass
class EnergyNode:
    """Panel + converter + battery assembly of one smart beehive."""

    panel: SolarPanel
    converter: DCDCConverter
    battery: Battery

    @staticmethod
    def paper_default(soc: float = 0.8) -> "EnergyNode":
        """The deployed configuration: 30 W panel, 5 V/3 A buck, 20 Ah bank."""
        return EnergyNode(panel=SolarPanel(), converter=DCDCConverter(), battery=Battery(soc=soc))


@dataclass(frozen=True)
class HarvestResult:
    """Output of a harvest simulation on a fixed grid.

    Attributes
    ----------
    times:
        Grid timestamps (s).
    irradiance:
        Input irradiance (W/m²).
    harvest_watts:
        Converter output power (W).
    load_watts:
        Requested load (W).
    supplied_watts:
        Load actually supplied (W); zero during outages.
    soc:
        Battery state of charge after each step.
    available:
        Boolean availability trace (True while the load runs).
    """

    times: np.ndarray
    irradiance: np.ndarray
    harvest_watts: np.ndarray
    load_watts: np.ndarray
    supplied_watts: np.ndarray
    soc: np.ndarray
    available: np.ndarray

    @property
    def uptime_fraction(self) -> float:
        """Fraction of steps during which the load was fully supplied."""
        return float(np.mean(self.available))

    def outages(self) -> list[tuple[float, float]]:
        """Return ``(start, end)`` intervals of unavailability."""
        out = []
        in_outage = False
        start = 0.0
        for t, avail in zip(self.times, self.available):
            if not avail and not in_outage:
                in_outage, start = True, float(t)
            elif avail and in_outage:
                in_outage = False
                out.append((start, float(t)))
        if in_outage:
            out.append((start, float(self.times[-1])))
        return out


class HarvestSimulation:
    """Fixed-step simulation of the energy node under a load profile.

    Parameters
    ----------
    node:
        The :class:`EnergyNode` to simulate.
    irradiance_fn:
        ``f(time_s) -> W/m²``; defaults to :func:`clear_sky_irradiance`.
    load_fn:
        ``f(time_s, available) -> W`` requested by the electronics; receives
        the current availability so duty-cycled loads can stay dark during an
        outage.
    step:
        Grid step in seconds.
    """

    def __init__(
        self,
        node: EnergyNode,
        irradiance_fn: Optional[Callable[[float], float]] = None,
        load_fn: Optional[Callable[[float, bool], float]] = None,
        step: float = 60.0,
    ) -> None:
        self.node = node
        self.irradiance_fn = irradiance_fn or clear_sky_irradiance
        self.load_fn = load_fn or (lambda t, available: 1.0)
        self.step = check_positive(step, "step")

    def run(self, duration: float) -> HarvestResult:
        """Simulate ``duration`` seconds and return the full trace."""
        check_positive(duration, "duration")
        n = int(np.ceil(duration / self.step))
        times = np.arange(n) * self.step
        irr = np.empty(n)
        harvest = np.empty(n)
        load = np.empty(n)
        supplied = np.empty(n)
        soc = np.empty(n)
        available = np.empty(n, dtype=bool)

        battery = self.node.battery
        for i, t in enumerate(times):
            avail = battery.can_supply
            irr[i] = self.irradiance_fn(float(t))
            panel_watts = self.node.panel.output_watts(irr[i])
            harvest_watts = self.node.converter.convert(panel_watts)
            load_watts = self.load_fn(float(t), avail) if avail else 0.0

            # Harvest covers the load first; surplus charges, deficit discharges.
            dt = self.step
            direct = min(harvest_watts, load_watts)
            surplus = (harvest_watts - direct) * dt
            deficit = (load_watts - direct) * dt
            if surplus > 0:
                battery.charge(surplus)
            delivered = direct * dt
            if deficit > 0:
                delivered += battery.discharge(deficit)

            harvest[i] = harvest_watts
            load[i] = load_watts
            supplied[i] = delivered / dt
            soc[i] = battery.soc
            # The step counts as available if the full request was met.
            available[i] = avail and (delivered >= load_watts * dt - 1e-9)

        return HarvestResult(
            times=times,
            irradiance=irr,
            harvest_watts=harvest,
            load_watts=load,
            supplied_watts=supplied,
            soc=soc,
            available=available,
        )
