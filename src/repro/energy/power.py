"""Power states and task power models.

A device is described by a :class:`PowerModel`: a set of named
:class:`PowerState` levels (``off``, ``sleep``, ``idle``, ``active`` …) plus
optional per-task powers.  A :class:`TaskPower` couples a task name with a
draw in watts and is the unit from which the paper's Table I/II rows are
built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class PowerState:
    """A named steady-state power level.

    Attributes
    ----------
    name:
        Identifier (``"sleep"``, ``"idle"`` …).
    watts:
        Steady-state draw in watts.
    description:
        Free-text provenance (e.g. "measured, §IV: Pi 3b+ sleep").
    """

    name: str
    watts: float
    description: str = ""

    def __post_init__(self) -> None:
        check_non_negative(self.watts, f"PowerState({self.name!r}).watts")

    def energy(self, duration: float) -> float:
        """Joules consumed holding this state for ``duration`` seconds."""
        check_non_negative(duration, "duration")
        return self.watts * duration


@dataclass(frozen=True)
class TaskPower:
    """Power and duration of one named task (a Table I/II row).

    ``energy`` is derived (watts × seconds) unless an explicitly measured
    value is supplied, in which case the implied power is ``energy/duration``.
    """

    name: str
    duration: float
    watts: Optional[float] = None
    measured_energy: Optional[float] = None

    def __post_init__(self) -> None:
        check_positive(self.duration, f"TaskPower({self.name!r}).duration")
        if self.watts is None and self.measured_energy is None:
            raise ValueError(f"TaskPower({self.name!r}): provide watts or measured_energy")
        if self.watts is not None:
            check_non_negative(self.watts, f"TaskPower({self.name!r}).watts")
        if self.measured_energy is not None:
            check_non_negative(self.measured_energy, f"TaskPower({self.name!r}).measured_energy")

    @property
    def energy(self) -> float:
        """Joules for one execution of the task."""
        if self.measured_energy is not None:
            return self.measured_energy
        assert self.watts is not None
        return self.watts * self.duration

    @property
    def power(self) -> float:
        """Average watts over the task."""
        if self.watts is not None:
            return self.watts
        assert self.measured_energy is not None
        return self.measured_energy / self.duration

    def scaled(self, duration_factor: float = 1.0, energy_factor: float = 1.0) -> "TaskPower":
        """Return a copy with duration and energy scaled (loss models use this)."""
        check_positive(duration_factor, "duration_factor")
        check_positive(energy_factor, "energy_factor")
        return TaskPower(
            name=self.name,
            duration=self.duration * duration_factor,
            measured_energy=self.energy * energy_factor,
            watts=None,
        )


class PowerModel:
    """Named collection of power states for one device type."""

    def __init__(self, name: str, states: Iterable[PowerState]) -> None:
        self.name = name
        self._states: Dict[str, PowerState] = {}
        for st in states:
            if st.name in self._states:
                raise ValueError(f"duplicate power state {st.name!r} in model {name!r}")
            self._states[st.name] = st
        if not self._states:
            raise ValueError(f"power model {name!r} has no states")

    def __contains__(self, state_name: str) -> bool:
        return state_name in self._states

    def __getitem__(self, state_name: str) -> PowerState:
        try:
            return self._states[state_name]
        except KeyError:
            known = ", ".join(sorted(self._states))
            raise KeyError(f"unknown power state {state_name!r} for {self.name!r} (known: {known})") from None

    @property
    def states(self) -> Dict[str, PowerState]:
        return dict(self._states)

    def watts(self, state_name: str) -> float:
        """Draw of ``state_name`` in watts."""
        return self[state_name].watts

    def weights(self) -> Dict[str, float]:
        """``state -> watts`` map, suitable for ``StateTimeline.integrate``."""
        return {name: st.watts for name, st in self._states.items()}

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={s.watts:g}W" for n, s in sorted(self._states.items()))
        return f"PowerModel({self.name!r}: {inner})"
