"""Process-wide observability switch (mirror of :mod:`repro.validate.state`).

A dependency leaf: the simulation modules consult :func:`resolve` on their
``obs=`` keyword without importing the collector layer.  Default off — every
hot path then sees ``None`` and skips instrumentation with a single identity
check, so an un-observed run costs nothing.

``repro-exp --metrics/--trace`` installs a session-wide collector via
:func:`observing`; library callers can also pass an
:class:`~repro.obs.Obs` explicitly (explicit wins over ambient).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Obs

_current: Optional["Obs"] = None


def current() -> Optional["Obs"]:
    """The ambient collector, or ``None`` when observation is off."""
    return _current


def set_current(obs: Optional["Obs"]) -> None:
    """Install (or clear, with ``None``) the ambient collector."""
    global _current
    _current = obs


@contextmanager
def observing(obs: Optional["Obs"]) -> Iterator[Optional["Obs"]]:
    """Scoped ambient collector: ``with observing(obs): run_des_fleet(...)``."""
    global _current
    previous = _current
    _current = obs
    try:
        yield obs
    finally:
        _current = previous


def resolve(obs: Optional["Obs"]) -> Optional["Obs"]:
    """Effective collector for an ``obs=`` keyword: explicit wins, else ambient."""
    return _current if obs is None else obs


__all__ = ["current", "set_current", "observing", "resolve"]
