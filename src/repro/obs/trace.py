"""Span-based tracing on the simulation clock.

Spans are closed intervals ``[start, end]`` of *sim* time — the tracer takes
a ``clock`` callable (``lambda: engine.now`` for DES runs; analytic paths
record spans post-hoc with explicit times via :meth:`Tracer.record`).  Open
spans nest: a span entered while another is active becomes its child, so the
snapshot can render the phase tree of a run.

The span store is bounded (``max_spans``).  Overflow never raises — extra
spans are counted in :attr:`Tracer.dropped` and surfaced by the snapshot, so
a truncated trace is visibly truncated rather than silently complete.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

#: Default span-store bound: ~10 M-client cohort runs stay well under this;
#: per-client tracing of huge fleets truncates (and says so) instead of OOMing.
DEFAULT_MAX_SPANS = 100_000


@dataclass
class Span:
    """One traced interval of sim time."""

    name: str
    start: float
    end: Optional[float] = None
    parent: Optional[int] = None  # index into the tracer's span list
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "start": self.start, "end": self.end}
        if self.parent is not None:
            out["parent"] = self.parent
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class Tracer:
    """Bounded span recorder with a pluggable sim clock."""

    __slots__ = ("_clock", "_spans", "_stack", "_max_spans", "dropped")

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self._clock = clock or (lambda: 0.0)
        self._spans: List[Span] = []
        self._stack: List[int] = []
        self._max_spans = max_spans
        self.dropped = 0

    # -- clock ------------------------------------------------------------
    def set_clock(self, clock: Callable[[], float]) -> None:
        """Swap the sim clock (e.g. onto a freshly built DES engine)."""
        self._clock = clock

    def now(self) -> float:
        return self._clock()

    # -- recording --------------------------------------------------------
    def _push(self, span: Span) -> Optional[int]:
        if len(self._spans) >= self._max_spans:
            self.dropped += 1
            return None
        self._spans.append(span)
        return len(self._spans) - 1

    @contextmanager
    def span(self, name: str, *labels: Any, **attrs: Any) -> Iterator[Span]:
        """Open a span on the sim clock: ``with trace.span("slot", i): ...``.

        Positional ``labels`` are joined onto the name (``slot:3``); keyword
        ``attrs`` are stored on the span.  The span closes at the clock's
        value on exit — even when the body raises.
        """
        if labels:
            name = ":".join([name, *map(str, labels)])
        parent = self._stack[-1] if self._stack else None
        span = Span(name, start=self._clock(), parent=parent, attrs=dict(attrs))
        idx = self._push(span)
        if idx is not None:
            self._stack.append(idx)
        try:
            yield span
        finally:
            span.end = self._clock()
            if idx is not None:
                self._stack.pop()

    def record(
        self,
        name: str,
        start: float,
        end: float,
        parent: Optional[int] = None,
        **attrs: Any,
    ) -> Optional[int]:
        """Append a closed span with explicit times (analytic/post-hoc paths).

        Returns the span's index (usable as ``parent`` for children), or
        ``None`` if the store is full.
        """
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts ({end} < {start})")
        if parent is None and self._stack:
            parent = self._stack[-1]
        return self._push(Span(name, start=start, end=end, parent=parent, attrs=dict(attrs)))

    # -- reporting --------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def phase_names(self) -> List[str]:
        """Sorted unique span names (prefix before the first ``:`` label)."""
        return sorted({s.name.split(":", 1)[0] for s in self._spans})

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_spans": len(self._spans),
            "dropped": self.dropped,
            "spans": [s.to_dict() for s in self._spans],
        }


__all__ = ["Span", "Tracer", "DEFAULT_MAX_SPANS"]
