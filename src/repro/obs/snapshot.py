"""Versioned JSON snapshot of one observed run.

The snapshot is the contract between the library and downstream tooling
(CI artifacts, notebooks): ``schema_version`` gates structural changes the
same way ``FINGERPRINT_VERSION`` gates the golden files.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Bump on any structural change to the snapshot layout.
SCHEMA_VERSION = 1


def build_snapshot(obs: Any, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Canonical dict form of an :class:`~repro.obs.Obs` collector."""
    payload: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "metrics": obs.metrics.to_dict(),
        "trace": obs.trace.to_dict(),
        "ledger": obs.ledger.to_dict(),
    }
    if extra:
        payload["run"] = dict(extra)
    return payload


def dump_snapshot(obs: Any, fh: Any, extra: Optional[Dict[str, Any]] = None) -> None:
    """Write the snapshot as stable, indented JSON to an open file object."""
    json.dump(build_snapshot(obs, extra), fh, indent=2, sort_keys=True)
    fh.write("\n")


__all__ = ["SCHEMA_VERSION", "build_snapshot", "dump_snapshot"]
