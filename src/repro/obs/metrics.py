"""Dependency-free counters, gauges and histograms.

The registry is deliberately tiny: named instruments created on first use,
plain-float arithmetic on the hot path, and a canonical ``to_dict`` form for
the versioned snapshot.  Histograms keep summary statistics plus fixed
power-of-two buckets instead of raw samples, so recording a million values
costs O(1) memory.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional


class Counter:
    """Monotonically increasing count (events, cycles, retries …)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        self.value += n

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (fleet size, queue depth, battery level …)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming distribution summary with power-of-two buckets.

    Bucket ``i`` counts values in ``(2**(i-1), 2**i]`` (bucket 0 holds
    everything ``<= 1``), which spans sub-second slot durations up to
    multi-day horizons in ~40 buckets without configuration.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buckets: Dict[int, int] = {}

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        idx = 0 if value <= 1.0 else math.ceil(math.log2(value))
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(k): v for k, v in sorted(self._buckets.items())},
        }


class MetricsRegistry:
    """Named instruments, created on first use and snapshotted together."""

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, cls: type) -> Any:
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(inst).__name__}, "
                f"requested {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def to_dict(self) -> Dict[str, Any]:
        return {name: self._instruments[name].to_dict() for name in self.names()}


__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]
