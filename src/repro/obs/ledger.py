"""Per-phase energy/time attribution.

The paper argues entirely in terms of *where* a cycle's joules go (Tables
I/II); this module folds the simulator's fine-grained ledger categories
(``wake_collect``, ``send_audio``, ``receive_retry`` …) into the six
canonical cycle phases plus server idle:

========  ===========================================================
phase     meaning
========  ===========================================================
boot      power-state transitions (wake surge, shutdown sequences)
sense     audio/sensor collection windows
infer     model execution (SVM/CNN, edge fallback, server service)
transfer  radio/network on-time for successful uploads & receives
retry     radio on-time burned on timeouts, aborted and re-sent uploads
sleep     client deep-sleep draw
idle      server idle floor (incl. downed-server up-fraction)
other     anything unmapped (kept explicit so the sum stays total)
========  ===========================================================

:func:`phase_of` is the single mapping point; :class:`PhaseLedger`
accumulates joules/seconds per phase and *reconciles*: fed from the same
:class:`~repro.energy.account.EnergyAccount` totals the run reports, the
phase sum equals the run total by construction, and
:meth:`PhaseLedger.reconciles` re-checks it against the independently
computed total the same way ``repro.validate`` checks energy conservation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

#: Canonical attribution phases, in cycle order.
PHASES: Tuple[str, ...] = (
    "boot",
    "sense",
    "infer",
    "transfer",
    "retry",
    "sleep",
    "idle",
    "other",
)

#: Exact category → phase matches (consulted before the prefix rules, so a
#: bundled category like ``collect_and_transfer`` — one §IV routine covering
#: collection *and* upload — can pin its dominant phase explicitly).
_EXACT: Dict[str, str] = {
    "collect_and_transfer": "sense",
    "wake_collect": "sense",
    "idle_collectwin": "idle",
    "sleep": "sleep",
    "idle": "idle",
    "down": "idle",
    "service": "infer",
    "saturation_penalty": "infer",
}

#: Ordered prefix rules — first match wins, so ``send_retry_timeout`` and
#: ``receive_retry`` land in ``retry`` before the plain send/receive rules
#: claim them for ``transfer``.
_PREFIX: Tuple[Tuple[str, str], ...] = (
    ("send_retry", "retry"),
    ("send_aborted", "retry"),
    ("receive_retry", "retry"),
    ("send", "transfer"),
    ("receive", "transfer"),
    ("fallback_infer", "infer"),
    ("buffered_infer", "infer"),
    ("queen_detection", "infer"),
    ("svm", "infer"),
    ("cnn", "infer"),
    ("service", "infer"),
    ("saturation", "infer"),
    ("shutdown", "boot"),
    ("wake", "boot"),
    ("boot", "boot"),
    ("collect", "sense"),
    ("sleep", "sleep"),
    ("idle", "idle"),
)


def phase_of(category: str) -> str:
    """Canonical phase for a ledger category (``"other"`` if unmapped)."""
    phase = _EXACT.get(category)
    if phase is not None:
        return phase
    for prefix, phase in _PREFIX:
        if category.startswith(prefix):
            return phase
    return "other"


class PhaseLedger:
    """Additive joules/seconds totals per canonical phase."""

    __slots__ = ("_energy", "_time", "_expected_total")

    def __init__(self) -> None:
        self._energy: Dict[str, float] = {p: 0.0 for p in PHASES}
        self._time: Dict[str, float] = {p: 0.0 for p in PHASES}
        self._expected_total: Optional[float] = None

    # -- recording --------------------------------------------------------
    def add(self, phase: str, energy_j: float, duration_s: float = 0.0) -> None:
        """Attribute ``energy_j`` joules (and ``duration_s`` seconds) to a phase.

        Values are normalized to plain ``float`` so NumPy scalars fed by the
        vectorized paths never leak into the JSON snapshot.
        """
        if phase not in self._energy:
            raise ValueError(f"unknown phase {phase!r} (known: {', '.join(PHASES)})")
        if energy_j < 0 or duration_s < 0:
            raise ValueError("attributed energy/time must be >= 0")
        self._energy[phase] += float(energy_j)
        self._time[phase] += float(duration_s)

    def charge_category(
        self, category: str, energy_j: float, duration_s: float = 0.0, weight: float = 1.0
    ) -> None:
        """Attribute one ledger category's totals (``weight`` = multiplicity)."""
        self.add(phase_of(category), energy_j * weight, duration_s * weight)

    def charge_account(self, account: Any, weight: float = 1.0) -> None:
        """Fold a whole :class:`~repro.energy.account.EnergyAccount` in."""
        for category, energy in account.breakdown().items():
            self.charge_category(
                category, energy, account.category_duration(category), weight
            )

    def charge_accounts(self, accounts: Iterable[Any], weights: Optional[Iterable[float]] = None) -> None:
        """Fold many accounts in, optionally multiplicity-weighted (cohorts)."""
        if weights is None:
            for account in accounts:
                self.charge_account(account)
        else:
            for account, weight in zip(accounts, weights):
                self.charge_account(account, weight)

    def note_total(self, total_j: float) -> None:
        """Accumulate a run's independently computed total for reconciliation.

        Additive so one collector can observe a whole sweep: each point adds
        its own total, and the ledger still reconciles phase-sum vs sum of
        totals at the end.
        """
        self._expected_total = (self._expected_total or 0.0) + float(total_j)

    # -- reporting --------------------------------------------------------
    def energy_j(self, phase: str) -> float:
        return self._energy[phase]

    def time_s(self, phase: str) -> float:
        return self._time[phase]

    @property
    def total_energy_j(self) -> float:
        return sum(self._energy.values())

    @property
    def expected_total_j(self) -> Optional[float]:
        return self._expected_total

    def reconciles(self, rtol: float = 1e-6, atol: float = 1e-9) -> bool:
        """Does the phase sum match the run total the ledger was told about?

        ``True`` when no total was recorded (nothing to reconcile against).
        """
        if self._expected_total is None:
            return True
        err = abs(self.total_energy_j - self._expected_total)
        scale = max(abs(self.total_energy_j), abs(self._expected_total))
        return bool(err <= atol + rtol * scale)

    def merge(self, other: "PhaseLedger") -> "PhaseLedger":
        out = PhaseLedger()
        out.absorb(self)
        out.absorb(other)
        return out

    def absorb(self, other: "PhaseLedger") -> None:
        """Fold ``other`` into this ledger in place (run-local → collector)."""
        for phase in PHASES:
            self._energy[phase] += other._energy[phase]
            self._time[phase] += other._time[phase]
        if other._expected_total is not None:
            self.note_total(other._expected_total)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "phases": {
                p: {"energy_j": self._energy[p], "time_s": self._time[p]}
                for p in PHASES
            },
            "total_energy_j": self.total_energy_j,
            "expected_total_j": self._expected_total,
            "reconciles": self.reconciles(),
        }


__all__ = ["PHASES", "phase_of", "PhaseLedger"]
