"""Observability for the simulators: metrics, tracing, phase attribution.

The paper's argument is an *attribution* argument — which task of the
5-minute cycle the joules go to (Tables I/II) and how that scales to a fleet
(§VI) — so the reproduction needs to see inside a run, not just its
end-of-run aggregates.  :class:`Obs` bundles the three views:

``obs.metrics``
    A :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
    histograms (cycles simulated, retries, DES events fired, span widths).
``obs.trace``
    A :class:`~repro.obs.trace.Tracer` of sim-clock spans
    (``with obs.trace.span("slot", i): ...``) forming the run's phase tree.
``obs.ledger``
    A :class:`~repro.obs.ledger.PhaseLedger` attributing every joule to one
    canonical phase (boot, sense, infer, transfer, retry, sleep, idle) and
    reconciling the phase sum against the run total, mirroring the
    ``repro.validate`` energy-conservation invariant.

Instrumentation is off by default and *nullable at the call site*: every
simulation entry point takes ``obs=None``, resolves it against the ambient
collector (``with observing(obs): ...`` — same tri-state idiom as
``repro.validate``), and skips all recording when the result is ``None``.
An un-observed run therefore pays one ``is None`` check per entry point —
and, because this package lazy-loads everything but the tiny ambient-state
module (PEP 562), it never even imports the metrics/trace/ledger machinery
(``benchmarks/test_obs_overhead.py`` asserts this structurally).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.obs.state import current, observing, resolve, set_current

#: Lazily exported name → defining submodule (resolved in __getattr__ so an
#: obs-off run that merely touches the resolve hook stays import-free).
_LAZY = {
    "PHASES": "ledger",
    "PhaseLedger": "ledger",
    "phase_of": "ledger",
    "Counter": "metrics",
    "Gauge": "metrics",
    "Histogram": "metrics",
    "MetricsRegistry": "metrics",
    "SCHEMA_VERSION": "snapshot",
    "build_snapshot": "snapshot",
    "dump_snapshot": "snapshot",
    "DEFAULT_MAX_SPANS": "trace",
    "Span": "trace",
    "Tracer": "trace",
}


def __getattr__(name: str):
    submodule = _LAZY.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f"{__name__}.{submodule}"), name)


class Obs:
    """One run's observability collector (metrics + trace + phase ledger)."""

    __slots__ = ("metrics", "trace", "ledger")

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        max_spans: Optional[int] = None,
    ) -> None:
        from repro.obs.ledger import PhaseLedger
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import DEFAULT_MAX_SPANS, Tracer

        self.metrics = MetricsRegistry()
        self.trace = Tracer(
            clock=clock,
            max_spans=DEFAULT_MAX_SPANS if max_spans is None else max_spans,
        )
        self.ledger = PhaseLedger()

    def snapshot(self, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Versioned dict snapshot (see :mod:`repro.obs.snapshot`)."""
        from repro.obs.snapshot import build_snapshot

        return build_snapshot(self, extra)


__all__ = [
    "Obs",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "DEFAULT_MAX_SPANS",
    "PhaseLedger",
    "PHASES",
    "phase_of",
    "SCHEMA_VERSION",
    "build_snapshot",
    "dump_snapshot",
    "observing",
    "resolve",
    "current",
    "set_current",
]
