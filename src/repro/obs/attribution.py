"""Exact phase attribution for the *analytic* simulation paths.

The DES paths attribute from their :class:`~repro.energy.account.EnergyAccount`
ledgers (category totals → :func:`~repro.obs.ledger.phase_of`), so their
phase sum equals the run total by construction.  The analytic paths
(:func:`~repro.core.simulate.simulate_fleet`, :mod:`repro.core.sweep`,
:func:`~repro.faults.fleetsim.run_faulty_fleet`) never build accounts —
these helpers re-derive the same splits the energy formulas use, term by
term, so the attributed phases again sum *exactly* to the reported totals:

* client cycle = per-task energies (+ wake surge → boot) + residual sleep;
* server cycle = idle floor over the period (→ idle) + per-occupied-slot
  receive marginal (→ transfer) + service marginal and saturation penalty
  (→ infer), mirroring :func:`repro.core.simulate.occupied_slot_energy`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.obs.ledger import PhaseLedger, phase_of


def attribute_client_cycle(
    ledger: PhaseLedger, client, weight: float = 1.0, skip_tasks: Sequence[str] = ()
) -> float:
    """Attribute one client cycle (``client.cycle_energy`` joules) per phase.

    ``skip_tasks`` omits named tasks from the attribution — how the
    faulty-fleet path accounts buffered cycles, whose radio send never
    happens (the ledger charge is refunded the same way).  Returns the
    attributed total so callers can sanity-check against the analytic
    ``cycle_energy`` they charged.
    """
    total = 0.0
    for task in client.active_tasks:
        if task.name in skip_tasks:
            continue
        ledger.charge_category(task.name, task.energy, task.duration, weight)
        total += task.energy
    if client.wake_surge_j:
        ledger.add("boot", client.wake_surge_j * weight)
        total += client.wake_surge_j
    ledger.add("sleep", client.sleep_energy * weight, client.sleep_duration * weight)
    total += client.sleep_energy
    return total * weight


def attribute_server_cycle(
    ledger: PhaseLedger,
    server,
    occupancies: Sequence[int],
    period: float,
    sizing_extra_s: float = 0.0,
    losses=None,
    weight: float = 1.0,
) -> float:
    """Attribute one server cycle, splitting the terms of
    :func:`~repro.core.simulate.server_cycle_energy` exactly.

    idle floor → ``idle``; receive marginal → ``transfer``; service marginal
    → ``infer``; saturation penalty → ``infer`` (it prices compute
    contention).  Returns the attributed total, equal to
    ``server_cycle_energy(...)`` to the last bit because the identical terms
    are summed in the identical order per slot.
    """
    idle = server.idle_watts * period
    ledger.add("idle", idle * weight, period * weight)
    total = idle
    slot_dur = server.slot_duration(sizing_extra_s)
    for k in occupancies:
        k = int(k)
        if k == 0:
            continue
        actual_extra = (
            losses.transfer.actual_extra_s(k) if losses is not None and losses.transfer else 0.0
        )
        t_rx = server.transfer_s + actual_extra
        receive = (server.receive_watts - server.idle_watts) * t_rx
        service = k * (server.service.energy - server.idle_watts * server.service.duration)
        ledger.add("transfer", receive * weight, t_rx * weight)
        ledger.add("infer", service * weight, k * server.service.duration * weight)
        total += receive + service
        if losses is not None and losses.saturation is not None:
            mult = losses.saturation.multiplier(k, server.max_parallel)
            active = receive + service
            base = (
                server.idle_watts * slot_dur + active
                if losses.saturation.base == "slot"
                else active
            )
            penalty = (mult - 1.0) * base
            if penalty:
                ledger.add("infer", penalty * weight)
                total += penalty
    return total * weight


def attribute_accounts(
    ledger: PhaseLedger,
    accounts: Sequence,
    multiplicities: Optional[Sequence[float]] = None,
) -> None:
    """Attribute DES :class:`~repro.energy.account.EnergyAccount` ledgers.

    ``multiplicities`` carries cohort weights (one representative account
    standing for N identical clients/servers); omitted means weight 1 each.
    """
    ledger.charge_accounts(accounts, multiplicities)


def record_run(obs, name: str, start: float, end: float, ledger: PhaseLedger, **attrs):
    """Fold a run-local phase ledger into the collector and emit its spans.

    Every instrumented entry point builds its contribution in a *local*
    :class:`PhaseLedger`, then hands it here: the collector's ledger absorbs
    the phase totals (so a sweep-wide collector still reconciles), one
    parent span covers the run window, and each phase with any energy or
    time gets a child span carrying its share — the snapshot's span tree
    therefore covers every phase the run exercised.

    Returns the parent span index (or ``None`` if the span store is full).
    """
    from repro.obs.ledger import PHASES

    obs.ledger.absorb(ledger)
    parent = obs.trace.record(name, start, end, **attrs)
    for phase in PHASES:
        energy, time_s = ledger.energy_j(phase), ledger.time_s(phase)
        if energy or time_s:
            obs.trace.record(
                f"phase:{phase}", start, end, parent=parent,
                energy_j=energy, time_s=time_s,
            )
    return parent


__all__ = [
    "attribute_client_cycle",
    "attribute_server_cycle",
    "attribute_accounts",
    "record_run",
    "phase_of",
]
