"""repro — energy-aware edge/cloud orchestration for precision beekeeping.

A from-scratch reproduction of Hadjur, Lefèvre & Ammar, *Services
Orchestration at the Edge and in the Cloud on Energy-Aware Precision
Beekeeping Systems* (PAISE @ IPDPS 2023).

Package map
-----------
``repro.core``
    The paper's contribution: calibrated scenarios (Tables I/II), the
    client/server/allocator large-scale model, loss models, sweeps and
    crossover analysis.
``repro.energy`` / ``repro.devices`` / ``repro.sensing`` / ``repro.network``
    The physical substrates: solar/battery energy node, device power-state
    machines, synthetic weather, Wi-Fi links.
``repro.audio`` / ``repro.dsp`` / ``repro.ml``
    The queen-detection service: synthetic hive audio, mel-spectrogram
    pipeline, SMO SVM and a NumPy CNN stack (ResNet-18) with a FLOP/energy
    model.
``repro.des``
    A discrete-event kernel used to cross-validate the analytic simulator.
``repro.experiments``
    One module per paper table/figure plus the registry behind the
    ``repro-exp`` CLI.
"""

from repro.core import (
    PAPER,
    CYCLE_SECONDS,
    EDGE_SVM,
    EDGE_CNN,
    EDGE_CLOUD_SVM,
    EDGE_CLOUD_CNN,
    Scenario,
    LossConfig,
    simulate_fleet,
    sweep_clients,
    find_crossover,
)
from repro.experiments import run_experiment, experiment_ids

__version__ = "1.0.0"

__all__ = [
    "PAPER",
    "CYCLE_SECONDS",
    "EDGE_SVM",
    "EDGE_CNN",
    "EDGE_CLOUD_SVM",
    "EDGE_CLOUD_CNN",
    "Scenario",
    "LossConfig",
    "simulate_fleet",
    "sweep_clients",
    "find_crossover",
    "run_experiment",
    "experiment_ids",
    "__version__",
]
