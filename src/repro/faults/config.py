"""Composition of fault injectors + resilience policy for one run.

:class:`FaultConfig` is to the fault subsystem what
:class:`repro.core.losses.LossConfig` is to the loss models: any subset of
the four injectors may be active, plus the retry/fallback policy that
governs how clients respond.  ``FaultConfig.none()`` is the ideal world —
with it, every fault-aware code path reduces exactly to the §VI-B model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultSchedule, compile_schedule
from repro.faults.spec import ClientCrash, LinkBlackout, LinkDegradation, ServerOutage
from repro.network.buffer import BufferSpec
from repro.network.outage import OutagePattern
from repro.util.rng import SeedLike


@dataclass(frozen=True)
class FaultConfig:
    """Which failure processes run, and how clients cope.

    Attributes
    ----------
    server_outage, link_blackout, link_degradation, client_crash:
        The injectors (``None`` = that failure class never happens).
    link_outage:
        Long-horizon up/down connectivity renewal process per client
        (:class:`~repro.network.outage.OutagePattern`).  Unlike the
        transient blackout, a client *knows* its modem is dark: it skips
        the upload, stores the payload in its edge buffer and degrades to
        local inference instead of walking the retry ladder.
    buffer:
        Store-and-forward buffer sizing/policy used while ``link_outage``
        has the uplink down (defaults to :class:`BufferSpec` defaults when
        outages are active and no spec is given).
    retry:
        Timeout/backoff policy for failed uploads.
    fallback:
        When True, a client that exhausts retries and finds no surviving
        server runs the queen-detection inference locally (edge energy cost,
        Table I) instead of dropping the cycle.
    """

    server_outage: Optional[ServerOutage] = None
    link_blackout: Optional[LinkBlackout] = None
    link_degradation: Optional[LinkDegradation] = None
    client_crash: Optional[ClientCrash] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    fallback: bool = True
    link_outage: Optional[OutagePattern] = None
    buffer: Optional[BufferSpec] = None

    @staticmethod
    def none() -> "FaultConfig":
        """The ideal, fault-free configuration."""
        return FaultConfig()

    @property
    def any_active(self) -> bool:
        return any(
            spec is not None
            for spec in (
                self.server_outage,
                self.link_blackout,
                self.link_degradation,
                self.client_crash,
                self.link_outage,
            )
        )

    def buffer_spec(self) -> BufferSpec:
        """The effective buffer sizing (defaults apply when unset)."""
        return self.buffer if self.buffer is not None else BufferSpec()

    def specs(self) -> tuple:
        """The active injector specs."""
        return tuple(
            spec
            for spec in (
                self.server_outage,
                self.link_blackout,
                self.link_degradation,
                self.client_crash,
                self.link_outage,
            )
            if spec is not None
        )

    def compile(
        self,
        horizon_s: float,
        n_servers: int = 0,
        n_clients: int = 0,
        seed: SeedLike = None,
    ) -> FaultSchedule:
        """Realize all active injectors into one deterministic timetable."""
        if not self.any_active:
            return FaultSchedule.empty(horizon_s)
        return compile_schedule(
            self.specs(), horizon_s, n_servers=n_servers, n_clients=n_clients, seed=seed
        )

    def describe(self) -> str:
        parts = [spec.describe() for spec in self.specs()]
        if not parts:
            return "no faults"
        if self.link_outage is not None:
            parts.append(self.buffer_spec().describe())
        parts.append(self.retry.describe())
        parts.append("fallback=edge" if self.fallback else "fallback=off")
        return " + ".join(parts)


__all__ = ["FaultConfig"]
