"""Retry policy: timeouts, exponential backoff with jitter, energy cost.

A failed upload is retried up to ``max_retries`` times.  Attempt ``i``
(0-based) waits ``timeout_s`` with the radio on before declaring failure,
then sleeps ``backoff_base_s · backoff_factor^i`` (± uniform jitter) before
the next attempt.  Every radio-on second is charged against the client's
cycle budget at the sender's transfer power — resilience is never free in
this model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_in_range, check_non_negative


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/backoff parameters for failed uploads.

    Attributes
    ----------
    max_retries:
        Retries after the first failed attempt (0 disables retrying).
    timeout_s:
        Radio-on seconds a failing attempt burns before giving up.
    backoff_base_s:
        Backoff before the first retry.
    backoff_factor:
        Multiplier applied to the backoff per further retry.
    jitter:
        Uniform jitter fraction: the realized delay is
        ``nominal · (1 + U(−jitter, +jitter))``.
    max_delay_s:
        Ceiling on any single (jittered) backoff wait.  Exponential growth
        reaches it after ``log(max/base)/log(factor)`` retries and then
        stays flat, so large retry budgets neither overflow ``float`` nor
        sleep for geological time.  The default (300 s, one AP reboot) is
        far above the default 3-retry ladder (2/4/8 s), so existing runs
        are bit-identical.
    """

    max_retries: int = 3
    timeout_s: float = 5.0
    backoff_base_s: float = 2.0
    backoff_factor: float = 2.0
    jitter: float = 0.25
    max_delay_s: float = 300.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        check_non_negative(self.timeout_s, "timeout_s")
        check_non_negative(self.backoff_base_s, "backoff_base_s")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        check_in_range(self.jitter, "jitter", 0.0, 1.0)
        # inf is the documented "no cap" sentinel, mirroring FaultSpec.mtbf_s.
        if not (math.isinf(self.max_delay_s) and self.max_delay_s > 0):
            if not math.isfinite(self.max_delay_s) or self.max_delay_s <= 0:
                raise ValueError(
                    f"max_delay_s must be > 0 (or +inf to disable), got {self.max_delay_s}"
                )

    @staticmethod
    def none() -> "RetryPolicy":
        """Fail immediately: no retries, no waiting."""
        return RetryPolicy(max_retries=0, timeout_s=0.0, backoff_base_s=0.0)

    def nominal_delay_s(self, retry_index: int) -> float:
        """Jitter-free backoff before retry ``retry_index`` (0-based),
        capped at :attr:`max_delay_s`.

        Computed in log space so huge attempt indices (``2.0**10000`` would
        raise ``OverflowError``) saturate at the cap instead of exploding.
        """
        if retry_index < 0:
            raise ValueError("retry_index must be >= 0")
        if self.backoff_base_s == 0.0:
            return 0.0
        if self.backoff_factor > 1.0 and math.isfinite(self.max_delay_s):
            # Index beyond which base * factor**i >= max_delay_s.
            saturation = math.log(self.max_delay_s / self.backoff_base_s) / math.log(
                self.backoff_factor
            )
            if retry_index >= saturation:
                return self.max_delay_s
        try:
            raw = self.backoff_base_s * self.backoff_factor**retry_index
        except OverflowError:
            return self.max_delay_s
        return min(raw, self.max_delay_s)

    def delay_s(self, retry_index: int, rng: np.random.Generator) -> float:
        """Realized (jittered) backoff before retry ``retry_index``; the
        jittered value is also clamped to :attr:`max_delay_s`."""
        nominal = self.nominal_delay_s(retry_index)
        if self.jitter == 0.0 or nominal == 0.0:
            return nominal
        jittered = nominal * (1.0 + float(rng.uniform(-self.jitter, self.jitter)))
        return min(jittered, self.max_delay_s)

    def delays_s(self, rng_or_seed: SeedLike = None) -> List[float]:
        """Realized backoff sequence for a full retry budget."""
        rng = make_rng(rng_or_seed)
        return [self.delay_s(i, rng) for i in range(self.max_retries)]

    # -- energy accounting ------------------------------------------------
    def attempt_energy_j(self, radio_watts: float) -> float:
        """Joules one failed attempt burns (radio on for the timeout)."""
        check_non_negative(radio_watts, "radio_watts")
        return radio_watts * self.timeout_s

    def exhausted_energy_j(self, radio_watts: float) -> float:
        """Joules burned when every attempt fails (first try + all retries)."""
        return (1 + self.max_retries) * self.attempt_energy_j(radio_watts)

    def worst_case_duration_s(self) -> float:
        """Wall-clock upper bound of a fully exhausted retry sequence."""
        total = (1 + self.max_retries) * self.timeout_s
        for i in range(self.max_retries):
            total += min(self.nominal_delay_s(i) * (1.0 + self.jitter), self.max_delay_s)
        return total

    def describe(self) -> str:
        return (
            f"retry(x{self.max_retries}, timeout={self.timeout_s:g}s, "
            f"backoff={self.backoff_base_s:g}s×{self.backoff_factor:g}, "
            f"jitter=±{self.jitter:.0%})"
        )


__all__ = ["RetryPolicy"]
