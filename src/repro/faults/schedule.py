"""Deterministic fault timetables.

:func:`compile_schedule` realizes a set of fault specs into a
:class:`FaultSchedule` — an immutable, queryable timetable of
:class:`~repro.faults.spec.FaultWindow` objects over a simulation horizon.
Every (spec kind, target) pair draws from its own derived RNG stream
(:func:`repro.util.rng.derive_seed`), so adding a fault class or widening
the fleet never perturbs the windows of the others — the same discipline
the loss models follow.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.faults.spec import (
    CLIENT_CRASH,
    LINK_BLACKOUT,
    LINK_DEGRADATION,
    SERVER_OUTAGE,
    FaultSpec,
    FaultWindow,
)
from repro.util.rng import SeedLike, make_rng, rng_for
from repro.util.validation import check_positive


@dataclass(frozen=True)
class FaultSchedule:
    """Compiled fault timetable over ``[0, horizon_s)``.

    Windows are grouped by ``(kind, target)`` and sorted by start time, so
    point queries are ``O(log w)`` in the per-target window count.
    """

    horizon_s: float
    windows: Tuple[FaultWindow, ...]

    def __post_init__(self) -> None:
        check_positive(self.horizon_s, "horizon_s")
        index: Dict[Tuple[str, int], List[FaultWindow]] = {}
        for w in self.windows:
            index.setdefault((w.kind, w.target), []).append(w)
        for ws in index.values():
            ws.sort()
        object.__setattr__(self, "_index", index)
        object.__setattr__(
            self, "_starts", {k: [w.start for w in ws] for k, ws in index.items()}
        )

    # -- queries ----------------------------------------------------------
    def windows_for(self, kind: str, target: int) -> Tuple[FaultWindow, ...]:
        """All windows of ``kind`` affecting ``target``, start-sorted."""
        return tuple(self._index.get((kind, target), ()))

    def active_window(self, kind: str, target: int, t: float) -> Optional[FaultWindow]:
        """The window of ``kind`` covering instant ``t`` on ``target``, if any."""
        ws = self._index.get((kind, target))
        if not ws:
            return None
        i = bisect.bisect_right(self._starts[(kind, target)], t)
        if i and ws[i - 1].covers(t):
            return ws[i - 1]
        return None

    def is_down(self, kind: str, target: int, t: float) -> bool:
        """True if ``target`` has an active ``kind`` fault at instant ``t``."""
        return self.active_window(kind, target, t) is not None

    def down_during(self, kind: str, target: int, t0: float, t1: float) -> bool:
        """True if any ``kind`` window on ``target`` intersects ``[t0, t1)``."""
        return any(w.overlaps(t0, t1) for w in self._index.get((kind, target), ()))

    def downtime_s(self, kind: str, target: int) -> float:
        """Total seconds ``target`` spends under ``kind`` faults."""
        return sum(w.duration for w in self._index.get((kind, target), ()))

    # -- summary ----------------------------------------------------------
    @property
    def n_windows(self) -> int:
        return len(self.windows)

    @property
    def any_active(self) -> bool:
        return bool(self.windows)

    def count(self, kind: str) -> int:
        """Number of windows of one kind across all targets."""
        return sum(1 for w in self.windows if w.kind == kind)

    def targets(self, kind: str) -> Tuple[int, ...]:
        """Targets with at least one window of ``kind``."""
        return tuple(sorted({w.target for w in self.windows if w.kind == kind}))

    @staticmethod
    def empty(horizon_s: float) -> "FaultSchedule":
        return FaultSchedule(horizon_s, ())


def compile_schedule(
    specs: Iterable[FaultSpec],
    horizon_s: float,
    n_servers: int = 0,
    n_clients: int = 0,
    seed: SeedLike = None,
) -> FaultSchedule:
    """Realize ``specs`` into a :class:`FaultSchedule`.

    Server-kind specs target server indices ``0..n_servers-1``; all other
    kinds target client ids ``0..n_clients-1``.  Each (kind, target) stream
    is seeded independently via :func:`~repro.util.rng.derive_seed`, keyed
    on the base seed, the spec kind, and the target id.
    """
    check_positive(horizon_s, "horizon_s")
    if n_servers < 0 or n_clients < 0:
        raise ValueError("n_servers and n_clients must be >= 0")
    base = int(make_rng(seed).integers(0, 2**62)) if not isinstance(seed, int) else seed
    windows: List[FaultWindow] = []
    for spec in specs:
        if spec is None:
            continue
        if getattr(spec, "never_fires", False):
            # A spec that compiles no windows for any target (e.g. an
            # always-up outage pattern) skips its per-target RNG streams
            # entirely — the streams would never be drawn from, and other
            # specs' streams are keyed independently, so nothing shifts.
            continue
        n_targets = n_servers if spec.kind == SERVER_OUTAGE else n_clients
        for target in range(n_targets):
            rng = rng_for(base, spec.kind, target)
            windows.extend(spec.compile_target(target, horizon_s, rng))
    windows.sort()
    return FaultSchedule(horizon_s, tuple(windows))


__all__ = [
    "FaultSchedule",
    "compile_schedule",
    "SERVER_OUTAGE",
    "LINK_BLACKOUT",
    "LINK_DEGRADATION",
    "CLIENT_CRASH",
]
