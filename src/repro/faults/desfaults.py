"""Event-driven fault injection on the DES kernel.

:func:`run_des_faulty_fleet` replays the edge+cloud scenario event by event
— like :func:`repro.core.dessim.run_des_fleet` — but with the fault
timetable realized as live simulation behaviour:

* an **outage injector process** per server walks that server's compiled
  outage windows, flips the server down, and *interrupts* every client
  process with an upload in flight (:class:`repro.des.engine.Interrupt`
  thrown via :meth:`repro.des.process.Process.interrupt`);
* **client processes** attempt their upload at the slot boundary and, on a
  dead server / dark link / mid-flight interrupt, walk the
  :class:`~repro.faults.retry.RetryPolicy` ladder with *jittered* backoff
  (each client owns a derived RNG stream), keeping the radio on for the
  timeout of every failed attempt; exhausted clients fail over to a
  surviving server with spare capacity or degrade to local inference;
* **scheduled connectivity outages** (:class:`~repro.network.outage.
  OutagePattern`) are *known* to the client: at a dark send moment it never
  keys the radio — the payload goes to its store-and-forward
  :class:`~repro.network.buffer.EdgeBuffer`, the detection degrades to a
  local ``buffered_infer_*`` task, and reconnected cycles burst-drain the
  backlog as interruptible ``send_drain`` windows whose airtime stretches
  with the number of concurrent drainers (shared AP);
* the :class:`~repro.faults.monitor.FaultMonitor` logs every fault event at
  its simulation time and itemizes retry/failover/fallback/degradation/
  buffered/drain energy next to the per-entity ledgers.

Server devices are charged from records after the event loop drains (the
ledgers are analytic in the residency windows, so replaying them post-hoc
in time order is exact and sidesteps same-timestamp ordering between client
and server processes).  Known granularity compromises, mirrored from the
analytic :mod:`~repro.faults.fleetsim` where possible: client crashes void
whole cycles (the paper's loss-C convention) but the DES still charges the
sleeping device's standby power during crashed cycles; late (retried or
failed-over) uploads charge the server their marginal receive+service
energy without re-deriving slot geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.allocator import Allocator, FillingPolicy
from repro.core.calibration import CYCLE_SECONDS, PAPER, PaperConstants
from repro.core.client import fallback_extra_energy, fallback_inference_task
from repro.core.cohort import Cohort, expand_accounts, group_cohorts, weighted_total
from repro.core.losses import LossConfig
from repro.core.routines import Scenario
from repro.des.engine import Engine, Interrupt
from repro.devices.device import AlwaysOnDevice, DutyCycledDevice
from repro.devices.specs import CLOUD_SERVER_I7_RTX2070, RASPBERRY_PI_3B_PLUS
from repro.energy.power import TaskPower
from repro.faults.config import FaultConfig
from repro.faults.monitor import (
    OUTCOME_BUFFERED,
    OUTCOME_FAILOVER,
    OUTCOME_FALLBACK,
    OUTCOME_MISSED,
    OUTCOME_OK,
    OUTCOME_RETRIED,
    FaultMonitor,
    ResilienceReport,
)
from repro.faults.schedule import (
    CLIENT_CRASH,
    LINK_BLACKOUT,
    LINK_DEGRADATION,
    SERVER_OUTAGE,
    FaultSchedule,
)
from repro.network.buffer import BLOCKED, BufferReport, EdgeBuffer
from repro.network.outage import LINK_OUTAGE
from repro.util.rng import SeedLike, make_rng, rng_for


class _ServerState:
    """Mutable run-time view of one server: up/down flag, in-flight uploads,
    per-slot arrival counts and late-upload records for post-run charging."""

    def __init__(self, index: int, nominal_clients: int, capacity: int) -> None:
        self.index = index
        self.up = True
        # Process handles mid-transfer; a dict (not a set) so interrupt
        # order at an outage onset is insertion order, deterministically.
        self.inflight: Dict[object, None] = {}
        self.nominal_clients = nominal_clients
        self.capacity = capacity
        self.extra_admitted: Dict[int, int] = {}  # cycle -> failover admits
        self.slot_starts: Dict[Tuple[int, int], int] = {}  # (cycle, slot) -> began
        self.slot_done: Dict[Tuple[int, int], int] = {}    # (cycle, slot) -> completed
        self.slot_time: Dict[Tuple[int, int], float] = {}  # (cycle, slot) -> actual start
        self.late: List[Tuple[float, float]] = []          # (time, t_rx)
        self.drained: List[Tuple[float, float]] = []       # (time, t_rx) backlog drains

    def spare(self, cycle: int) -> int:
        return self.capacity - self.nominal_clients - self.extra_admitted.get(cycle, 0)

    def admit_extra(self, cycle: int) -> None:
        self.extra_admitted[cycle] = self.extra_admitted.get(cycle, 0) + 1


@dataclass(frozen=True)
class DesFaultyResult:
    """Ledgers + resilience report from an event-driven faulty run.

    ``cohort=True`` runs store one representative (unscaled) ledger per
    cohort in ``client_accounts``, with ``client_multiplicities`` and
    ``client_cohorts`` parallel to it; per-client properties divide by the
    true fleet size ``n_clients``, never ``len(client_accounts)``.
    """

    n_cycles: int
    period: float
    client_accounts: tuple
    server_accounts: tuple
    report: ResilienceReport
    monitor: FaultMonitor
    schedule: FaultSchedule
    n_clients: int = -1
    client_multiplicities: tuple = ()
    client_cohorts: tuple = ()  # tuple[tuple[int, ...]] parallel to client_accounts
    buffer_report: Optional[BufferReport] = None

    def __post_init__(self) -> None:
        if self.n_clients < 0:
            object.__setattr__(self, "n_clients", len(self.client_accounts))

    @property
    def edge_energy_j(self) -> float:
        if self.client_multiplicities:
            return weighted_total(self.client_accounts, self.client_multiplicities)
        return sum(acc.total for acc in self.client_accounts)

    @property
    def server_energy_j(self) -> float:
        return sum(acc.total for acc in self.server_accounts)

    @property
    def total_energy_j(self) -> float:
        return self.edge_energy_j + self.server_energy_j

    @property
    def edge_energy_per_client_cycle(self) -> float:
        n = self.n_clients
        return self.edge_energy_j / (n * self.n_cycles) if n else 0.0

    @property
    def availability(self) -> float:
        return self.report.availability

    def expand_client_accounts(self) -> tuple:
        """Per-client ledger view (shared representative objects, id order)."""
        if not self.client_cohorts:
            return self.client_accounts
        cohorts = [Cohort(key=("client", ids[0]), member_ids=ids) for ids in self.client_cohorts]
        return expand_accounts(self.client_accounts, cohorts, self.n_clients)


def run_des_faulty_fleet(
    n_clients: int,
    scenario: Scenario,
    faults: Optional[FaultConfig] = None,
    n_cycles: int = 1,
    period: float = CYCLE_SECONDS,
    losses: Optional[LossConfig] = None,
    policy: Optional[FillingPolicy] = None,
    seed: SeedLike = None,
    constants: PaperConstants = PAPER,
    cohort: bool = False,
    validate: Optional[bool] = None,
    obs=None,
) -> DesFaultyResult:
    """Replay ``n_cycles`` of the edge+cloud scenario with live faults.

    ``cohort=True`` enables exact cohort aggregation for *statically quiet*
    clients: a client whose home server has no outage window and who has no
    blackout/degradation/crash window of its own can never retry, fail over
    or draw from its jitter stream, so its trajectory is the deterministic
    ideal one — clients sharing a (server, slot) then collapse into one
    multiplicity-weighted representative.  Every client touched by a fault
    window (even an unexercised one) stays a singleton, so the collapse is
    bit-for-bit exact, faults on or off.
    """
    if scenario.is_edge_only:
        raise ValueError(
            "run_des_faulty_fleet needs a server to fail; "
            "use repro.faults.fleetsim.run_faulty_fleet for edge-only fleets"
        )
    if n_clients < 0:
        raise ValueError("n_clients must be >= 0")
    if n_cycles < 1:
        raise ValueError("n_cycles must be >= 1")
    faults = faults or FaultConfig.none()
    losses = losses or LossConfig.none()
    if losses.client_loss is not None:
        raise ValueError("express dropout as FaultConfig(client_crash=...), not loss C")

    engine = Engine(pool_timeouts=True)
    horizon = n_cycles * period
    profile = scenario.server
    retry = faults.retry
    outage_on = faults.link_outage is not None
    buf_spec = faults.buffer_spec()
    buffers: Dict[int, EdgeBuffer] = {}
    # Shared AP contention counter for reconnect bursts: each active drainer
    # sees its per-payload airtime stretched by the number of concurrent
    # drainers at the moment it starts that payload (processor sharing,
    # sampled per payload — the DES analogue of the analytic ×k stretch).
    drain_state = {"active": 0}
    mon = FaultMonitor()

    allocator = Allocator(profile, period=period, losses=losses, policy=policy)
    allocation = allocator.allocate(n_clients)
    sizing_extra = allocator.sizing_extra_s
    slot_dur = profile.slot_duration(sizing_extra)
    schedule = faults.compile(
        horizon, n_servers=allocation.n_servers, n_clients=n_clients, seed=seed
    )
    # Clients with at least one compiled outage window (always_up compiles
    # none): only they probe the schedule each cycle, so an armed-but-idle
    # outage layer costs (almost) nothing on the event-driven path too.
    outage_clients = (
        frozenset(
            cid for cid in range(n_clients) if schedule.windows_for(LINK_OUTAGE, cid)
        )
        if outage_on
        else frozenset()
    )
    base = int(make_rng(seed).integers(0, 2**62)) if not isinstance(seed, int) else seed

    # -- task split around the upload ------------------------------------------
    tasks = list(scenario.client.active_tasks)
    send_idx = next(i for i, t in enumerate(tasks) if t.name == "send_audio")
    pre_tasks, send_task, post_tasks = tasks[:send_idx], tasks[send_idx], tasks[send_idx + 1 :]
    pre_send = sum(t.duration for t in pre_tasks)
    send_w = send_task.power

    # -- wake offsets (identical to the ideal DES path) -------------------------
    wake_offsets: Dict[int, float] = {}
    home_of: Dict[int, int] = {}
    for srv in allocation.servers:
        for slot_idx, slot in enumerate(srv.slots):
            for cid in slot:
                wake_offsets[cid] = max(slot_idx * slot_dur - pre_send, 0.0)
                home_of[cid] = srv.server_index

    states = {
        srv.server_index: _ServerState(
            srv.server_index, srv.n_clients, allocation.plan.capacity
        )
        for srv in allocation.servers
    }
    slot_of = {
        cid: slot_idx
        for srv in allocation.servers
        for slot_idx, slot in enumerate(srv.slots)
        for cid in slot
    }

    # -- outage injectors: flip servers down, interrupt in-flight uploads ------
    def outage_injector(state: _ServerState):
        for w in schedule.windows_for(SERVER_OUTAGE, state.index):
            if w.start > engine.now:
                yield engine.timeout(w.start - engine.now)
            state.up = False
            mon.record_fault(engine.now, "outage_begin", server=state.index)
            for proc in list(state.inflight):
                if proc.is_alive:
                    proc.interrupt((SERVER_OUTAGE, state.index))
            if w.end > engine.now:
                yield engine.timeout(w.end - engine.now)
            state.up = True
            mon.record_fault(engine.now, "outage_end", server=state.index)

    for state in states.values():
        if schedule.windows_for(SERVER_OUTAGE, state.index):
            engine.process(outage_injector(state))

    # -- client processes -------------------------------------------------------
    clients: List[DutyCycledDevice] = []
    client_ends: List[float] = []

    def attempt_transfer(device, state, holder, duration, label="send_audio"):
        """Interruptible radio-on window; returns True when it completed.

        The energy is charged *after* the window resolves (run_routine
        charges on the device-local clock, which trails engine time), so an
        interrupted upload only pays for its elapsed airtime.  ``label``
        names the charged task — ``"send_drain"`` for backlog drains.
        """
        start = engine.now
        state.inflight[holder["proc"]] = None
        try:
            yield engine.timeout(duration)
            completed = True
        except Interrupt:
            completed = False
        finally:
            state.inflight.pop(holder["proc"], None)
        elapsed = engine.now - start
        if completed:
            device.run_routine(start, [TaskPower(label, duration, watts=send_w)])
        elif elapsed > 0:
            device.run_routine(start, [TaskPower("send_aborted", elapsed, watts=send_w)])
            mon.charge_retry(send_w * elapsed)
        return completed

    def client_proc(cid: int, device: DutyCycledDevice, holder: dict):
        offset = wake_offsets[cid]
        home = states[home_of[cid]]
        jitter_rng = rng_for(base, "retry-jitter", cid)
        for cycle in range(n_cycles):
            wake = cycle * period + offset
            if wake > engine.now:
                yield engine.timeout(wake - engine.now)
            mon.expect_cycle()
            if schedule.down_during(CLIENT_CRASH, cid, cycle * period, (cycle + 1) * period):
                mon.record_fault(engine.now, CLIENT_CRASH, client=cid)
                mon.record_outcome(OUTCOME_MISSED)
                continue  # dead for this cycle; device stays asleep
            device.sleep_until(engine.now)
            if pre_tasks:
                end = device.run_routine(engine.now, pre_tasks)
                yield engine.timeout(end - engine.now)

            # -- scheduled connectivity outage: never key the radio ------
            # Unlike a transient blackout, the client *knows* the modem is
            # dark (planned duty cycle / provider schedule), so it skips
            # the send entirely: payload to the store-and-forward buffer,
            # detection degraded to local inference (outcome "buffered"),
            # or — under the BLOCK policy with a full buffer — the whole
            # cycle is skipped (outcome "missed").
            if cid in outage_clients and schedule.is_down(LINK_OUTAGE, cid, engine.now):
                buf = buffers.setdefault(cid, EdgeBuffer(buf_spec))
                verdict = buf.offer(engine.now)
                if verdict == BLOCKED:
                    mon.record_fault(engine.now, "buffer_blocked", client=cid)
                    mon.record_outcome(OUTCOME_MISSED)
                    continue
                model = "cnn" if "cnn" in profile.service.name else "svm"
                fb = fallback_inference_task(model, constants)
                infer_task = TaskPower(
                    f"buffered_infer_{model}", fb.duration,
                    measured_energy=fb.energy,
                )
                end = device.run_routine(engine.now, [infer_task])
                mon.charge_buffered(
                    fallback_extra_energy(scenario.client, model, constants)
                )
                mon.record_fault(
                    engine.now, "buffered", client=cid,
                    resident=buf.resident_payloads,
                )
                yield engine.timeout(end - engine.now)
                mon.record_outcome(OUTCOME_BUFFERED)
                if post_tasks:
                    end = device.run_routine(engine.now, post_tasks)
                    yield engine.timeout(end - engine.now)
                continue

            # -- upload with retry ladder --------------------------------
            slot_key = (cycle, slot_of[cid])
            outcome = None
            attempts = 0
            while attempts <= retry.max_retries:
                mon.record_attempts()
                dark = schedule.is_down(LINK_BLACKOUT, cid, engine.now)
                if home.up and not dark:
                    deg = schedule.active_window(LINK_DEGRADATION, cid, engine.now)
                    stretch = (1.0 / deg.severity) if deg is not None else 1.0
                    dur = send_task.duration * stretch
                    if attempts == 0:
                        home.slot_starts[slot_key] = home.slot_starts.get(slot_key, 0) + 1
                        home.slot_time.setdefault(slot_key, engine.now)
                    done = yield from attempt_transfer(device, home, holder, dur)
                    if done:
                        if stretch > 1.0:
                            mon.charge_degradation(send_w * (dur - send_task.duration))
                        if attempts == 0:
                            home.slot_done[slot_key] = home.slot_done.get(slot_key, 0) + 1
                            outcome = OUTCOME_OK
                        else:
                            home.late.append((engine.now - dur, dur))
                            outcome = OUTCOME_RETRIED
                        break
                else:
                    # Dead server or dark link: radio on until timeout.
                    # With timeout_s == 0 (RetryPolicy.none()) the attempt
                    # fails instantly and charges nothing — it is still
                    # counted above.
                    if retry.timeout_s > 0:
                        device.run_routine(
                            engine.now,
                            [TaskPower("send_retry_timeout", retry.timeout_s, watts=send_w)],
                        )
                        mon.charge_retry(retry.attempt_energy_j(send_w))
                        mon.record_timeout_attempts()
                        yield engine.timeout(retry.timeout_s)
                if attempts < retry.max_retries:
                    delay = retry.delay_s(attempts, jitter_rng)
                    if delay > 0:
                        yield engine.timeout(delay)  # radio off, device asleep
                attempts += 1

            if outcome is None:
                # Retries exhausted: fail over, else degrade locally.
                target = None
                if not schedule.is_down(LINK_BLACKOUT, cid, engine.now):
                    for st in states.values():
                        if st.up and st.spare(cycle) > 0:
                            target = st
                            break
                if target is not None:
                    mon.record_attempts()
                    done = yield from attempt_transfer(
                        device, target, holder, send_task.duration
                    )
                    if done:
                        target.admit_extra(cycle)
                        target.late.append((engine.now - send_task.duration, send_task.duration))
                        mon.charge_failover(send_task.energy)
                        mon.record_fault(
                            engine.now, "failover", client=cid, server=target.index
                        )
                        outcome = OUTCOME_FAILOVER
                if outcome is None:
                    if faults.fallback:
                        task = fallback_inference_task(
                            "cnn" if "cnn" in profile.service.name else "svm", constants
                        )
                        end = device.run_routine(engine.now, [task])
                        mon.charge_fallback(
                            fallback_extra_energy(
                                scenario.client,
                                "cnn" if "cnn" in profile.service.name else "svm",
                                constants,
                            )
                        )
                        mon.record_fault(engine.now, "fallback", client=cid)
                        outcome = OUTCOME_FALLBACK
                        yield engine.timeout(end - engine.now)
                    else:
                        outcome = OUTCOME_MISSED
            mon.record_outcome(outcome)

            # -- burst drain of the store-and-forward backlog ------------
            # Reconnected after a successful upload: push buffered payloads
            # to the home server inside the drain window.  Each payload's
            # airtime is stretched by the number of concurrent drainers
            # (shared AP); the server's per-payload receive marginal stays
            # at the base transfer time (it receives the streams in
            # parallel).  An interrupt or a newly-dark link leaves the
            # remaining backlog resident for a later cycle.
            if (
                outage_on
                and outcome in (OUTCOME_OK, OUTCOME_RETRIED, OUTCOME_FAILOVER)
                and cid in buffers
                and buffers[cid].resident_payloads > 0
            ):
                buf = buffers[cid]
                deadline = engine.now + buf_spec.drain_window_s
                drain_state["active"] += 1
                try:
                    while (
                        buf.resident_payloads > 0
                        and home.up
                        and not schedule.is_down(LINK_OUTAGE, cid, engine.now)
                        and not schedule.is_down(LINK_BLACKOUT, cid, engine.now)
                    ):
                        k = max(drain_state["active"], 1)
                        dur = send_task.duration * k
                        if engine.now + dur > deadline:
                            break
                        mon.record_attempts()
                        done = yield from attempt_transfer(
                            device, home, holder, dur, label="send_drain"
                        )
                        if not done:
                            break  # interrupted: payload stays resident
                        buf.take(engine.now)
                        home.drained.append((engine.now - dur, profile.transfer_s))
                        mon.charge_drain(send_w * dur)
                finally:
                    drain_state["active"] -= 1

            if post_tasks and outcome not in (OUTCOME_MISSED,):
                end = device.run_routine(engine.now, post_tasks)
                yield engine.timeout(end - engine.now)

    def quiet_cohort_proc(device: DutyCycledDevice, home: _ServerState, slot_idx: int,
                          offset: float, m: int):
        """The retry ladder collapsed to its only reachable branch.

        Valid only for statically quiet clients (see ``cohort=True`` above):
        the home server is always up, the link never darkens or degrades,
        and the client never crashes, so every cycle is a first-try OK
        upload — identical, event for event, to what ``client_proc`` does
        for each member.  Shared slot counters advance by ``m``.
        """
        for cycle in range(n_cycles):
            wake = cycle * period + offset
            if wake > engine.now:
                yield engine.timeout(wake - engine.now)
            mon.expect_cycle(m)
            device.sleep_until(engine.now)
            if pre_tasks:
                end = device.run_routine(engine.now, pre_tasks)
                yield engine.timeout(end - engine.now)
            slot_key = (cycle, slot_idx)
            home.slot_starts[slot_key] = home.slot_starts.get(slot_key, 0) + m
            home.slot_time.setdefault(slot_key, engine.now)
            mon.record_attempts(m)
            start = engine.now
            yield engine.timeout(send_task.duration)
            device.run_routine(start, [TaskPower("send_audio", send_task.duration, watts=send_w)])
            home.slot_done[slot_key] = home.slot_done.get(slot_key, 0) + m
            mon.record_outcome(OUTCOME_OK, m)
            if post_tasks:
                end = device.run_routine(engine.now, post_tasks)
                yield engine.timeout(end - engine.now)

    client_cohorts: List[Cohort] = []
    if cohort:
        quiet_server = {idx: not schedule.windows_for(SERVER_OUTAGE, idx) for idx in states}

        def statically_quiet(cid: int) -> bool:
            return (
                quiet_server[home_of[cid]]
                and not schedule.windows_for(CLIENT_CRASH, cid)
                and not schedule.windows_for(LINK_BLACKOUT, cid)
                and not schedule.windows_for(LINK_DEGRADATION, cid)
                and not schedule.windows_for(LINK_OUTAGE, cid)
            )

        key_of = {
            cid: ("quiet", home_of[cid], slot_of[cid])
            if statically_quiet(cid)
            else ("solo", cid)
            for cid in range(n_clients)
        }
        client_cohorts = group_cohorts(key_of)
        for co in client_cohorts:
            cid = co.representative
            offset = wake_offsets[cid]
            dev = DutyCycledDevice(RASPBERRY_PI_3B_PLUS, start_time=offset, name=f"client-{cid}")
            clients.append(dev)
            client_ends.append(offset + horizon)
            if co.key[0] == "quiet":
                engine.process(
                    quiet_cohort_proc(
                        dev, states[home_of[cid]], slot_of[cid], offset, co.multiplicity
                    )
                )
            else:
                holder: dict = {}
                holder["proc"] = engine.process(client_proc(cid, dev, holder))
    else:
        for cid in range(n_clients):
            offset = wake_offsets[cid]
            dev = DutyCycledDevice(RASPBERRY_PI_3B_PLUS, start_time=offset, name=f"client-{cid}")
            clients.append(dev)
            client_ends.append(offset + horizon)
            holder = {}
            holder["proc"] = engine.process(client_proc(cid, dev, holder))

    engine.run()

    for dev, end in zip(clients, client_ends):
        if dev.time < end:
            dev.finish(end)
        else:
            dev.finish(dev.time)

    # -- post-run server charging (records replayed in time order) -------------
    servers: List[AlwaysOnDevice] = []
    svc_marginal_1 = profile.service.energy - profile.idle_watts * profile.service.duration
    for srv in allocation.servers:
        state = states[srv.server_index]
        dev = AlwaysOnDevice(CLOUD_SERVER_I7_RTX2070, name=f"server-{srv.server_index}")
        events: List[Tuple[float, int, tuple]] = []
        down_windows = [
            w for w in schedule.windows_for(SERVER_OUTAGE, srv.server_index) if w.duration > 0
        ]
        for w in down_windows:
            events.append((w.start, 1, ("down", min(w.end, horizon))))
        for key, k_started in sorted(state.slot_starts.items()):
            start = state.slot_time[key]
            k_done = state.slot_done.get(key, 0)
            actual_extra = losses.transfer.actual_extra_s(k_done) if losses.transfer else 0.0
            t_rx = profile.transfer_s + actual_extra
            for w in down_windows:  # truncate receive at an outage onset
                if start <= w.start < start + t_rx:
                    t_rx = w.start - start
                    break
            events.append((start, 0, ("slot", t_rx, k_started, k_done)))
        for t, t_rx in state.late:
            events.append((t, 2, ("late", t_rx)))
        for t, t_rx in state.drained:
            events.append((t, 3, ("drained", t_rx)))
        events.sort(key=lambda e: (e[0], e[1]))

        def charge_window(t: float, dur: float, state_name: str, watts: float, tag: str) -> None:
            """Excursion that tolerates overlap with an earlier residency.

            An overlapped prefix (delayed-slot cascades) is charged at the
            state's marginal-over-idle rate without touching the timeline.
            """
            if dur <= 0:
                return
            if t < dev.time:
                lost = min(dev.time - t, dur)
                marginal = max(watts - profile.idle_watts, 0.0)
                if marginal > 0:
                    dev.account.charge(f"{tag}_overlap", marginal * lost, time=t)
                t += lost
                dur -= lost
                if dur <= 0:
                    return
            dev.excursion(t, state_name, dur, override=(tag, watts))

        for t, _prio, rec in events:
            if rec[0] == "down":
                charge_window(t, rec[1] - t, "idle", 0.0, "down")
            elif rec[0] == "slot":
                _, t_rx, k_started, k_done = rec
                charge_window(t, t_rx, "receive", profile.receive_watts, "receive")
                if k_done:
                    dev.account.charge("service", k_done * svc_marginal_1, time=t)
                    if losses.saturation is not None:
                        mult = losses.saturation.multiplier(k_done, profile.max_parallel)
                        if mult > 1.0:
                            active = (profile.receive_watts - profile.idle_watts) * t_rx + (
                                k_done * svc_marginal_1
                            )
                            pen = (
                                profile.idle_watts * slot_dur + active
                                if losses.saturation.base == "slot"
                                else active
                            )
                            dev.account.charge("saturation_penalty", (mult - 1.0) * pen, time=t)
            elif rec[0] == "late":  # marginal receive + service on top of idle
                _, t_rx = rec
                dev.account.charge(
                    "receive_retry", (profile.receive_watts - profile.idle_watts) * t_rx, time=t
                )
                dev.account.charge("service", svc_marginal_1, time=t)
            else:  # drained backlog payload: same marginals, base t_rx
                _, t_rx = rec
                dev.account.charge(
                    "receive_drain", (profile.receive_watts - profile.idle_watts) * t_rx, time=t
                )
                dev.account.charge("service", svc_marginal_1, time=t)
        dev.finish(max(horizon, dev.time))
        servers.append(dev)

    result = DesFaultyResult(
        n_cycles=n_cycles,
        period=period,
        client_accounts=tuple(d.account for d in clients),
        server_accounts=tuple(d.account for d in servers),
        report=mon.report(),
        monitor=mon,
        schedule=schedule,
        n_clients=n_clients,
        client_multiplicities=tuple(c.multiplicity for c in client_cohorts),
        client_cohorts=tuple(c.member_ids for c in client_cohorts),
        buffer_report=(
            BufferReport.from_buffers(list(buffers.values())) if outage_on else None
        ),
    )

    from repro.obs.state import resolve as _resolve_obs

    obs_c = _resolve_obs(obs)
    if obs_c is not None:
        from repro.obs.attribution import attribute_accounts, record_run
        from repro.obs.ledger import PhaseLedger

        report = result.report
        obs_c.metrics.counter("des.runs").inc()
        obs_c.metrics.counter("des.clients").inc(n_clients)
        obs_c.metrics.counter("des.cycles").inc(n_cycles)
        obs_c.metrics.counter("des.events_fired").inc(engine.events_fired)
        obs_c.metrics.histogram("des.events_per_run").record(engine.events_fired)
        for label, count in (
            ("faults.cycles_expected", report.cycles_expected),
            ("faults.cycles_ok", report.cycles_ok),
            ("faults.cycles_retried", report.cycles_retried),
            ("faults.cycles_failover", report.cycles_failover),
            ("faults.cycles_fallback", report.cycles_fallback),
            ("faults.cycles_buffered", report.cycles_buffered),
            ("faults.cycles_missed", report.cycles_missed),
            ("faults.events", report.n_fault_events),
            ("faults.send_attempts", mon.send_attempts),
            ("faults.timeout_attempts", mon.timeout_attempts),
        ):
            obs_c.metrics.counter(label).inc(count)
        obs_c.metrics.gauge("faults.availability").set(report.availability)
        local = PhaseLedger()
        attribute_accounts(
            local, result.client_accounts, result.client_multiplicities or None
        )
        attribute_accounts(local, result.server_accounts)
        local.note_total(result.total_energy_j)
        record_run(
            obs_c, "des_faulty_fleet", 0.0, horizon, local,
            scenario=scenario.name, n_clients=n_clients,
            n_cycles=n_cycles, cohort=cohort,
            availability=report.availability,
            events_fired=engine.events_fired,
        )

    from repro.validate.state import resolve

    if resolve(validate):
        from repro.validate.invariants import validate_des_faulty_run

        validate_des_faulty_run(
            result,
            engine=engine,
            allocation=allocation,
            devices=tuple(clients) + tuple(servers),
            context={
                "scenario_name": scenario.name,
                "faults": faults.describe(),
                "seed": seed,
                "cohort": cohort,
            },
        )
    return result


__all__ = ["DesFaultyResult", "run_des_faulty_fleet"]
