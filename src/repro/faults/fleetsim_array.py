"""Array-native analytic faulty-fleet kernel (bit-identical fast path).

:func:`repro.faults.fleetsim.run_faulty_fleet` scans every client every
cycle — ``O(n_clients · n_cycles)`` schedule probes plus a fresh
``Allocation`` object (Python lists of slots) per cycle.  This kernel
produces the identical :class:`~repro.faults.fleetsim.FaultyFleetResult`
from three exact replacements:

* **Window rasterization.**  Each compiled fault window is mapped once to
  the cycles it can touch (conservative ``floor(t/period)`` bounds, then
  the *same* ``FaultWindow.overlaps(t0, t1)`` predicate on the same
  ``cycle·period`` floats the scalar kernel uses).  Per cycle, only the
  rasterized candidates are visited — the all-client crash/blackout scans
  disappear.
* **Closed-form first-fit geometry.**  The paper's filling policy packs
  survivors in ascending id order, so a client's slot is pure arithmetic:
  ``rank = cid − |removed below cid|`` (two bisects on the sparse removed
  sets), ``server = rank // capacity``, ``slot = (rank % capacity) //
  max_parallel``.  Failover repack is structural too: at most one survivor
  (the boundary server) has spare capacity, so orphan placement, the
  repacked occupancies, and every upload time follow from counts alone —
  no ``Allocation``/``repack_failed_servers`` objects are built.
* **Memoized server pricing.**  ``server_cycle_energy`` is keyed by the
  occupancy profile; a fleet has at most two distinct profiles per cycle
  (full and boundary), so the per-server pricing loop degenerates to table
  look-ups added in the scalar kernel's exact ascending-index order.

Bit-identity contract: every float the scalar kernel accumulates is
reproduced *in the same order with the same operands* — per-client retry /
degradation charges run ascending allocation rank (== ascending id), the
store-and-forward buffers see offers and drains at identical timestamps,
and the per-cycle ``edge/server/...`` ledgers are combined with the same
expression shapes.  Hypothesis property tests and the ``faulty-array``
golden pin enforce equality against the scalar kernel, monitor report
included.

The sparse work (outage probing, blackout ladders, buffer drains) stays
per-affected-client Python — those sets are bounded by the fault process,
not the fleet, which is what makes the kernel O(faults + servers) per
cycle instead of O(clients).
"""

from __future__ import annotations

import math
import time as _time
from bisect import bisect_left
from typing import Dict, List, Optional

import numpy as np

from repro.core.allocator import Allocator, FillingPolicy
from repro.core.calibration import CYCLE_SECONDS, PAPER, PaperConstants
from repro.core.client import fallback_extra_energy
from repro.core.losses import LossConfig
from repro.core.routines import Scenario
from repro.core.simulate import server_cycle_energy
from repro.faults.config import FaultConfig
from repro.faults.fleetsim import FaultyFleetResult, _retries_until
from repro.faults.monitor import (
    OUTCOME_BUFFERED,
    OUTCOME_FAILOVER,
    OUTCOME_FALLBACK,
    OUTCOME_MISSED,
    OUTCOME_OK,
    OUTCOME_RETRIED,
    FaultMonitor,
)
from repro.faults.schedule import (
    CLIENT_CRASH,
    LINK_BLACKOUT,
    LINK_DEGRADATION,
    SERVER_OUTAGE,
)
from repro.network.buffer import BLOCKED, BufferReport, EdgeBuffer
from repro.network.outage import LINK_OUTAGE
from repro.util.rng import SeedLike


def _rasterize(schedule, kind, period, n_cycles):
    """Per-cycle sorted target lists for every window of ``kind``.

    Exactness: a window is attached to cycle ``c`` iff it overlaps
    ``[c·period, (c+1)·period)`` under the scalar kernel's own predicate
    and floats, so membership here *is* ``down_during`` — and any point
    query ``covers(t)`` with ``t`` inside the cycle implies overlap, so
    the lists are complete for ``is_down`` probes too.
    """
    per_cycle = [set() for _ in range(n_cycles)]
    for target in schedule.targets(kind):
        for w in schedule.windows_for(kind, target):
            lo = 0 if not math.isfinite(w.start) else max(int(w.start // period) - 1, 0)
            hi = (
                n_cycles
                if not math.isfinite(w.end)
                else min(int(w.end // period) + 2, n_cycles)
            )
            for c in range(lo, hi):
                if w.overlaps(c * period, (c + 1) * period):
                    per_cycle[c].add(target)
    return [sorted(s) for s in per_cycle]


def _unrank(ranks, removed_sorted):
    """Ids of the ``rank``-th non-removed clients (order-statistic inverse)."""
    ids = np.asarray(ranks, dtype=np.int64)
    if not len(removed_sorted):
        return ids.copy()
    removed = np.asarray(removed_sorted, dtype=np.int64)
    k = np.zeros(len(ids), dtype=np.int64)
    while True:
        k2 = np.searchsorted(removed, ids + k, side="right")
        if np.array_equal(k2, k):
            return ids + k
        k = k2


def run_faulty_fleet_array(
    n_clients: int,
    scenario: Scenario,
    faults: Optional[FaultConfig] = None,
    n_cycles: int = 1,
    period: float = CYCLE_SECONDS,
    losses: Optional[LossConfig] = None,
    policy: Optional[FillingPolicy] = None,
    seed: SeedLike = None,
    constants: PaperConstants = PAPER,
    validate: Optional[bool] = None,
    obs=None,
) -> FaultyFleetResult:
    """Vectorized replay of :func:`repro.faults.fleetsim.run_faulty_fleet`.

    Requires the first-fit filling policy (``policy=None`` or a
    :class:`~repro.core.allocator.FirstFitPolicy`) — the closed-form slot
    geometry encodes exactly that packing.  Use
    ``run_faulty_fleet(..., kernel=...)`` for automatic dispatch.
    """
    from repro.core.allocator import FirstFitPolicy

    if n_clients < 0:
        raise ValueError("n_clients must be >= 0")
    if n_cycles < 1:
        raise ValueError("n_cycles must be >= 1")
    if policy is not None and not isinstance(policy, FirstFitPolicy):
        raise ValueError(
            "run_faulty_fleet_array requires the first-fit filling policy"
        )
    faults = faults or FaultConfig.none()
    losses = losses or LossConfig.none()
    if losses.client_loss is not None:
        raise ValueError(
            "run_faulty_fleet models dropout via ClientCrash; "
            "pass FaultConfig(client_crash=ClientCrash.from_client_loss(...)) "
            "instead of LossConfig(client_loss=...)"
        )

    t0_wall = _time.perf_counter()
    horizon = n_cycles * period
    client = scenario.client
    fallback_model = "svm"
    if scenario.server is not None and "cnn" in scenario.server.service.name:
        fallback_model = "cnn"

    allocator: Optional[Allocator] = None
    n_server_targets = 0
    if not scenario.is_edge_only:
        allocator = Allocator(scenario.server, period=period, losses=losses, policy=policy)
        n_server_targets = allocator.servers_required(n_clients)
    schedule = faults.compile(
        horizon, n_servers=n_server_targets, n_clients=n_clients, seed=seed
    )

    retry = faults.retry
    send_task = None
    svc_marginal_1 = 0.0
    if not scenario.is_edge_only:
        send_task = client.active_tasks.get("send_audio")
        svc_marginal_1 = (
            scenario.server.service.energy
            - scenario.server.idle_watts * scenario.server.service.duration
        )
    outage_on = faults.link_outage is not None and not scenario.is_edge_only
    buf_spec = faults.buffer_spec()
    buffers: Dict[int, EdgeBuffer] = {}
    buffered_infer_j = (
        fallback_extra_energy(client, fallback_model, constants) if outage_on else 0.0
    )
    mon = FaultMonitor()
    for w in schedule.windows:
        mon.record_fault(w.start, w.kind, target=w.target, duration=w.duration)

    # Precompiled per-cycle fault candidates (the tentpole's window masks).
    crash_by_cycle = _rasterize(schedule, CLIENT_CRASH, period, n_cycles)
    srvdown_by_cycle = _rasterize(schedule, SERVER_OUTAGE, period, n_cycles)
    black_by_cycle = _rasterize(schedule, LINK_BLACKOUT, period, n_cycles)
    degr_by_cycle = _rasterize(schedule, LINK_DEGRADATION, period, n_cycles)
    outage_by_cycle = (
        _rasterize(schedule, LINK_OUTAGE, period, n_cycles)
        if outage_on
        else [[] for _ in range(n_cycles)]
    )

    from repro.obs.state import resolve as _resolve_obs

    obs_c = _resolve_obs(obs)
    local = None
    if obs_c is not None:
        from repro.obs.attribution import (
            attribute_client_cycle,
            attribute_server_cycle,
            record_run,
        )
        from repro.obs.ledger import PhaseLedger

        local = PhaseLedger()

    edge_e = np.zeros(n_cycles)
    server_e = np.zeros(n_cycles)
    retry_e = np.zeros(n_cycles)
    failover_e = np.zeros(n_cycles)
    fallback_e = np.zeros(n_cycles)
    degradation_e = np.zeros(n_cycles)
    buffered_e = np.zeros(n_cycles)
    drain_e = np.zeros(n_cycles)
    active_arr = np.zeros(n_cycles, dtype=np.int64)
    down_arr = np.zeros(n_cycles, dtype=np.int64)

    if allocator is not None:
        plan = allocator.plan
        cap = plan.capacity
        p = plan.max_parallel
        slot_dur = plan.slot_duration
        t_rx_base = scenario.server.transfer_s
        full_occ = (p,) * plan.slots_per_cycle
        energy_memo: Dict[tuple, float] = {}

        def occ_of(count: int) -> tuple:
            full, r = divmod(count, p)
            return (p,) * full + ((r,) if r else ())

        def priced(occ: tuple) -> float:
            e = energy_memo.get(occ)
            if e is None:
                e = energy_memo[occ] = server_cycle_energy(
                    scenario.server,
                    list(occ),
                    period=period,
                    sizing_extra_s=allocator.sizing_extra_s,
                    losses=losses,
                )
            return e

    for cycle in range(n_cycles):
        t0, t1 = cycle * period, (cycle + 1) * period
        mon.expect_cycle(n_clients)

        crashed = crash_by_cycle[cycle]
        n_active = n_clients - len(crashed)
        active_arr[cycle] = n_active
        mon.record_outcome(OUTCOME_MISSED, len(crashed))

        if scenario.is_edge_only:
            edge_e[cycle] = n_active * client.cycle_energy
            if local is not None:
                attribute_client_cycle(local, client, weight=n_active)
            mon.record_outcome(OUTCOME_OK, n_active)
            continue

        assert allocator is not None and send_task is not None
        crashed_set = set(crashed)

        def active_rank(cid: int) -> int:
            return cid - bisect_left(crashed, cid)

        # Scheduled connectivity outages against the pre-outage packing:
        # ascending id == ascending rank == the scalar kernel's slot order.
        out_list: List[int] = []
        out_times: List[float] = []
        for cid in outage_by_cycle[cycle]:
            if cid in crashed_set:
                continue
            slot_idx = (active_rank(cid) % cap) // p
            upload_t = t0 + slot_idx * slot_dur
            if schedule.is_down(LINK_OUTAGE, cid, upload_t):
                out_list.append(cid)
                out_times.append(upload_t)
        n_out = len(out_list)
        out_set = set(out_list)
        for cid, up_t in zip(out_list, out_times):
            outcome = buffers.setdefault(cid, EdgeBuffer(buf_spec)).offer(up_t)
            if outcome == BLOCKED:
                mon.record_outcome(OUTCOME_MISSED)
            else:
                buffered_e[cycle] += buffered_infer_j
                mon.charge_buffered(buffered_infer_j)
                mon.record_outcome(OUTCOME_BUFFERED)

        edge_e[cycle] = n_active * client.cycle_energy - n_out * send_task.energy
        if local is not None:
            attribute_client_cycle(local, client, weight=n_active - n_out)
            if n_out:
                attribute_client_cycle(
                    local, client, weight=n_out, skip_tasks=("send_audio",)
                )

        # Connected (= packed) cohort geometry, all from counts.
        removed = sorted(crashed_set | set(out_list)) if out_list else crashed
        n_conn = n_active - n_out
        n_srv = -(-n_conn // cap) if n_conn else 0
        c_bound = n_conn - (n_srv - 1) * cap if n_srv else 0

        def conn_rank(cid: int) -> int:
            return cid - bisect_left(removed, cid)

        down = [s for s in srvdown_by_cycle[cycle] if s < n_srv]
        down_set = set(down)
        down_arr[cycle] = len(down)

        def srv_count(s: int) -> int:
            return c_bound if s == n_srv - 1 else cap

        n_orphans = sum(srv_count(s) for s in down)
        boundary_up = n_srv > 0 and (n_srv - 1) not in down_set
        spare = (cap - c_bound) if boundary_up else 0
        n_placed = min(n_orphans, spare)
        n_unplaced = n_orphans - n_placed

        if n_orphans:
            burn = retry.exhausted_energy_j(send_task.power)
            retry_e[cycle] += burn * n_orphans
            mon.charge_retry(burn * n_orphans)
            mon.record_attempts((1 + retry.max_retries) * n_orphans)
            if retry.timeout_s > 0:
                mon.record_timeout_attempts((1 + retry.max_retries) * n_orphans)
        if n_placed:
            extra = send_task.energy * n_placed
            failover_e[cycle] += extra
            mon.charge_failover(extra)
            mon.record_attempts(n_placed)
            mon.record_outcome(OUTCOME_FAILOVER, n_placed)
        if n_unplaced:
            if faults.fallback:
                per = fallback_extra_energy(client, fallback_model, constants)
                fallback_e[cycle] += per * n_unplaced
                mon.charge_fallback(per * n_unplaced)
                mon.record_outcome(OUTCOME_FALLBACK, n_unplaced)
            else:
                mon.record_outcome(OUTCOME_MISSED, n_unplaced)

        # Link faults for non-orphan survivors, ascending rank (== ascending
        # id), replaying the scalar retry ladder per affected client.
        n_retried = 0
        n_link_fallback = 0
        n_link_missed = 0
        link_failed: set = set()
        link_cand = black_by_cycle[cycle]
        if degr_by_cycle[cycle]:
            link_cand = sorted(set(link_cand) | set(degr_by_cycle[cycle]))
        for cid in link_cand:
            if cid in crashed_set or cid in out_set:
                continue
            r = conn_rank(cid)
            if r // cap in down_set:
                continue  # orphan: already settled by failover accounting
            upload_t = t0 + ((r % cap) // p) * slot_dur
            if schedule.is_down(LINK_BLACKOUT, cid, upload_t):
                window = schedule.active_window(LINK_BLACKOUT, cid, upload_t)
                attempt_times = [upload_t]
                t = upload_t
                for i in range(retry.max_retries):
                    t += retry.timeout_s + retry.nominal_delay_s(i)
                    attempt_times.append(t)
                rec = _retries_until(window.end, attempt_times)
                if rec is not None:
                    burn = rec * retry.attempt_energy_j(send_task.power)
                    retry_e[cycle] += burn
                    mon.charge_retry(burn)
                    mon.record_attempts(rec + 1)  # rec timeouts + the success
                    if retry.timeout_s > 0:
                        mon.record_timeout_attempts(rec)
                    n_retried += 1
                else:
                    burn = retry.exhausted_energy_j(send_task.power)
                    retry_e[cycle] += burn
                    mon.charge_retry(burn)
                    mon.record_attempts(1 + retry.max_retries)
                    if retry.timeout_s > 0:
                        mon.record_timeout_attempts(1 + retry.max_retries)
                    link_failed.add(cid)
                    if faults.fallback:
                        per = fallback_extra_energy(client, fallback_model, constants)
                        fallback_e[cycle] += per
                        mon.charge_fallback(per)
                        n_link_fallback += 1
                        mon.record_outcome(OUTCOME_FALLBACK)
                    else:
                        n_link_missed += 1
                        mon.record_outcome(OUTCOME_MISSED)
            elif schedule.is_down(LINK_DEGRADATION, cid, upload_t):
                window = schedule.active_window(LINK_DEGRADATION, cid, upload_t)
                stretch = 1.0 / window.severity
                extra = send_task.power * t_rx_base * (stretch - 1.0)
                degradation_e[cycle] += extra
                mon.charge_degradation(extra)

        n_served = (
            n_active - n_out - n_orphans
            - n_retried - n_link_fallback - n_link_missed
        )
        mon.record_attempts(max(n_served, 0))  # first-try uploads
        mon.record_outcome(OUTCOME_RETRIED, n_retried)
        mon.record_outcome(OUTCOME_OK, max(n_served, 0))

        # Burst drain, ascending id over the backlogged clients only.
        drain_server_j = 0.0
        n_drained = 0
        if outage_on and buffers:
            unplaced_set: set = set()
            if n_unplaced:
                ranges: List[int] = []
                for s in down:
                    lo = s * cap
                    ranges.extend(range(lo, lo + srv_count(s)))
                unplaced_set = set(
                    _unrank(ranges[n_placed:], removed).tolist()
                )
            drainers = [
                cid
                for cid in sorted(buffers)
                if cid not in crashed_set
                and cid not in out_set
                and cid not in link_failed
                and cid not in unplaced_set
                and buffers[cid].resident_payloads > 0
            ]
            if n_srv > len(down) and drainers:
                # Post-repack upload time: survivors keep their slots; a
                # placed orphan lands at boundary position c_bound + o.
                orphan_base: Dict[int, int] = {}
                o = 0
                for s in down:
                    orphan_base[s] = o
                    o += srv_count(s)
                k = len(drainers)
                quota = buf_spec.drain_quota_for(send_task.duration, contenders=k)
                for cid in drainers:
                    r = conn_rank(cid)
                    s = r // cap
                    if s in down_set:
                        pos = c_bound + orphan_base[s] + (r - s * cap)
                        slot_idx = pos // p
                    else:
                        slot_idx = (r % cap) // p
                    done_t = t0 + slot_idx * slot_dur + send_task.duration
                    payloads = buffers[cid].drain(done_t, quota)
                    if not payloads:
                        continue
                    n = len(payloads)
                    n_drained += n
                    client_j = send_task.energy * k * n
                    drain_e[cycle] += client_j
                    mon.charge_drain(client_j)
                    mon.record_attempts(n)
                    drain_server_j += n * (
                        (scenario.server.receive_watts - scenario.server.idle_watts)
                        * t_rx_base
                        + svc_marginal_1
                    )

        # Server-side energy, ascending surviving index: table look-ups for
        # the (at most two) distinct occupancy profiles, plus the repacked
        # boundary profile when orphans were placed.
        bound_occ = None
        if boundary_up:
            bound_occ = occ_of(c_bound + n_placed)
        energy = 0.0
        for s in range(n_srv):
            if s in down_set:
                continue
            occ = bound_occ if s == n_srv - 1 else full_occ
            energy += priced(occ)
            if local is not None:
                attribute_server_cycle(
                    local,
                    scenario.server,
                    list(occ),
                    period=period,
                    sizing_extra_s=allocator.sizing_extra_s,
                    losses=losses,
                )
        for sidx in down:
            overlap = sum(
                max(0.0, min(w.end, t1) - max(w.start, t0))
                for w in schedule.windows_for(SERVER_OUTAGE, sidx)
            )
            up_s = max(period - overlap, 0.0)
            energy += scenario.server.idle_watts * up_s
            if local is not None:
                local.add("idle", scenario.server.idle_watts * up_s, up_s)
        server_e[cycle] = energy + drain_server_j
        edge_e[cycle] += (
            retry_e[cycle] + failover_e[cycle] + fallback_e[cycle]
            + degradation_e[cycle] + buffered_e[cycle] + drain_e[cycle]
        )
        if local is not None:
            send_w = send_task.power
            if retry_e[cycle]:
                local.add("retry", retry_e[cycle], retry_e[cycle] / send_w)
            if failover_e[cycle]:
                local.add("transfer", failover_e[cycle], failover_e[cycle] / send_w)
            if degradation_e[cycle]:
                local.add("transfer", degradation_e[cycle], degradation_e[cycle] / send_w)
            if fallback_e[cycle]:
                local.add("infer", fallback_e[cycle])
            if buffered_e[cycle]:
                local.add("infer", buffered_e[cycle])
            if drain_e[cycle]:
                local.add("transfer", drain_e[cycle], drain_e[cycle] / send_w)
            if n_drained:
                rx_j = n_drained * (
                    (scenario.server.receive_watts - scenario.server.idle_watts)
                    * t_rx_base
                )
                local.add("transfer", rx_j, n_drained * t_rx_base)
                local.add(
                    "infer",
                    n_drained * svc_marginal_1,
                    n_drained * scenario.server.service.duration,
                )

    result = FaultyFleetResult(
        scenario_name=scenario.name,
        n_clients=n_clients,
        n_cycles=n_cycles,
        period=period,
        edge_energy_j=edge_e,
        server_energy_j=server_e,
        retry_energy_j=retry_e,
        failover_energy_j=failover_e,
        fallback_energy_j=fallback_e,
        degradation_energy_j=degradation_e,
        n_active=active_arr,
        n_servers_down=down_arr,
        report=mon.report(),
        monitor=mon,
        faults_description=faults.describe(),
        schedule=schedule,
        buffered_energy_j=buffered_e,
        drain_energy_j=drain_e,
        buffer_report=(
            BufferReport.from_buffers(list(buffers.values())) if outage_on else None
        ),
    )
    elapsed = _time.perf_counter() - t0_wall

    if obs_c is not None:
        report = result.report
        obs_c.metrics.counter("fleet.runs").inc()
        obs_c.metrics.counter("fleet.clients_active").inc(int(active_arr.sum()))
        for label, count in (
            ("faults.cycles_expected", report.cycles_expected),
            ("faults.cycles_ok", report.cycles_ok),
            ("faults.cycles_retried", report.cycles_retried),
            ("faults.cycles_failover", report.cycles_failover),
            ("faults.cycles_fallback", report.cycles_fallback),
            ("faults.cycles_buffered", report.cycles_buffered),
            ("faults.cycles_missed", report.cycles_missed),
            ("faults.events", report.n_fault_events),
            ("faults.send_attempts", mon.send_attempts),
            ("faults.timeout_attempts", mon.timeout_attempts),
        ):
            obs_c.metrics.counter(label).inc(count)
        obs_c.metrics.gauge("faults.availability").set(report.availability)
        obs_c.metrics.histogram("kernel.faulty_array_s").record(elapsed)
        local.note_total(result.total_energy_j)
        record_run(
            obs_c, "faulty_fleet", 0.0, horizon, local,
            scenario=scenario.name, n_clients=n_clients,
            n_cycles=n_cycles, availability=report.availability,
        )

    from repro.validate.state import resolve

    if resolve(validate):
        from repro.validate.invariants import validate_faulty_fleet_result

        validate_faulty_fleet_result(
            result,
            context={
                "scenario_name": scenario.name,
                "faults": faults.describe(),
                "seed": seed,
                "kernel": "array",
            },
        )
    return result


__all__ = ["run_faulty_fleet_array"]
