"""Fault injection, retry/backoff resilience, failover and graceful degradation.

The subsystem layers onto the §VI models without touching the ideal paths:

* :mod:`~repro.faults.spec` — stochastic failure processes (server outage,
  link blackout/degradation, client crash) with seeded, reproducible draws;
* :mod:`~repro.faults.schedule` — specs compiled into deterministic
  time-stamped fault windows;
* :mod:`~repro.faults.retry` — timeout + exponential-backoff-with-jitter
  policy, energy-accounted;
* :mod:`~repro.faults.config` — per-run composition (which faults, how
  clients cope);
* :mod:`~repro.faults.monitor` — availability and resilience-energy metrics;
* :mod:`~repro.faults.fleetsim` — analytic cycle-level faulty fleet runs;
* :mod:`~repro.faults.desfaults` — the same faults as live, interruptible
  DES processes.
"""

from repro.faults.config import FaultConfig
from repro.faults.desfaults import DesFaultyResult, run_des_faulty_fleet
from repro.faults.fleetsim import FaultyFleetResult, run_faulty_fleet
from repro.faults.monitor import (
    OUTCOME_BUFFERED,
    OUTCOME_FAILOVER,
    OUTCOME_FALLBACK,
    OUTCOME_MISSED,
    OUTCOME_OK,
    OUTCOME_RETRIED,
    FaultMonitor,
    ResilienceReport,
)
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultSchedule, compile_schedule
from repro.faults.spec import (
    ALL_FAULT_KINDS,
    CLIENT_CRASH,
    LINK_BLACKOUT,
    LINK_DEGRADATION,
    SERVER_OUTAGE,
    ClientCrash,
    FaultSpec,
    FaultWindow,
    LinkBlackout,
    LinkDegradation,
    ServerOutage,
    never,
)

__all__ = [
    "FaultConfig",
    "FaultMonitor",
    "ResilienceReport",
    "RetryPolicy",
    "FaultSchedule",
    "compile_schedule",
    "FaultWindow",
    "FaultSpec",
    "ServerOutage",
    "LinkBlackout",
    "LinkDegradation",
    "ClientCrash",
    "never",
    "FaultyFleetResult",
    "run_faulty_fleet",
    "DesFaultyResult",
    "run_des_faulty_fleet",
    "OUTCOME_OK",
    "OUTCOME_RETRIED",
    "OUTCOME_FAILOVER",
    "OUTCOME_FALLBACK",
    "OUTCOME_BUFFERED",
    "OUTCOME_MISSED",
    "SERVER_OUTAGE",
    "LINK_BLACKOUT",
    "LINK_DEGRADATION",
    "CLIENT_CRASH",
    "ALL_FAULT_KINDS",
]
