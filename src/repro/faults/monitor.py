"""Resilience metrics: availability, degradation and retry-energy overhead.

:class:`FaultMonitor` aggregates what happened to every expected detection
cycle — served normally, recovered by retry, failed over to another server,
degraded to local edge inference, or missed entirely — plus the itemized
energy overheads resilience cost.  It wraps a
:class:`repro.des.monitor.EventLog` so DES runs keep a full per-fault event
history next to the counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.des.monitor import EventLog

#: Cycle outcomes, ordered best → worst.
OUTCOME_OK = "ok"                # upload landed in its slot, first try
OUTCOME_RETRIED = "retried"      # upload succeeded after ≥1 retry
OUTCOME_FAILOVER = "failover"    # served by a surviving server
OUTCOME_FALLBACK = "fallback"    # degraded to local edge inference
OUTCOME_BUFFERED = "buffered"    # link dark: payload buffered, edge inference
OUTCOME_MISSED = "missed"        # no detection this cycle

_OUTCOMES = (
    OUTCOME_OK,
    OUTCOME_RETRIED,
    OUTCOME_FAILOVER,
    OUTCOME_FALLBACK,
    OUTCOME_BUFFERED,
    OUTCOME_MISSED,
)


@dataclass(frozen=True)
class ResilienceReport:
    """Frozen snapshot of a :class:`FaultMonitor` at end of run."""

    cycles_expected: int
    cycles_ok: int
    cycles_retried: int
    cycles_failover: int
    cycles_fallback: int
    cycles_missed: int
    retry_energy_j: float
    failover_energy_j: float
    fallback_energy_j: float
    degradation_energy_j: float
    n_fault_events: int
    cycles_buffered: int = 0
    buffered_energy_j: float = 0.0
    drain_energy_j: float = 0.0

    @property
    def cycles_detected(self) -> int:
        """Cycles that produced a queen-detection result by any path.

        Buffered cycles count: the payload waits for connectivity, but the
        local edge inference still delivered this cycle's detection.
        """
        return (
            self.cycles_ok
            + self.cycles_retried
            + self.cycles_failover
            + self.cycles_fallback
            + self.cycles_buffered
        )

    @property
    def availability(self) -> float:
        """Detections delivered / detections expected (1.0 = ideal)."""
        if self.cycles_expected == 0:
            return 1.0
        return self.cycles_detected / self.cycles_expected

    @property
    def cloud_availability(self) -> float:
        """Fraction of expected cycles served by *a cloud server* (no fallback)."""
        if self.cycles_expected == 0:
            return 1.0
        return (self.cycles_ok + self.cycles_retried + self.cycles_failover) / self.cycles_expected

    @property
    def resilience_energy_j(self) -> float:
        """Total extra joules spent surviving (or limping through) faults."""
        return (
            self.retry_energy_j
            + self.failover_energy_j
            + self.fallback_energy_j
            + self.degradation_energy_j
            + self.buffered_energy_j
            + self.drain_energy_j
        )


class FaultMonitor:
    """Mutable accumulator for fault events and per-cycle outcomes."""

    def __init__(self, name: str = "faults") -> None:
        self.log = EventLog(name)
        self._outcomes = {k: 0 for k in _OUTCOMES}
        self._expected = 0
        self._retry_energy_j = 0.0
        self._failover_energy_j = 0.0
        self._fallback_energy_j = 0.0
        self._degradation_energy_j = 0.0
        self._buffered_energy_j = 0.0
        self._drain_energy_j = 0.0
        self._fault_events = 0
        self._send_attempts = 0
        self._timeout_attempts = 0

    # -- recording --------------------------------------------------------
    def expect_cycle(self, n: int = 1) -> None:
        """Register ``n`` expected detection cycles."""
        if n < 0:
            raise ValueError("n must be >= 0")
        self._expected += n

    def record_outcome(self, outcome: str, n: int = 1) -> None:
        if outcome not in self._outcomes:
            raise ValueError(f"unknown outcome {outcome!r} (known: {_OUTCOMES})")
        if n < 0:
            raise ValueError("n must be >= 0")
        self._outcomes[outcome] += n

    def charge_retry(self, energy_j: float) -> None:
        self._retry_energy_j += self._check(energy_j)

    def charge_failover(self, energy_j: float) -> None:
        self._failover_energy_j += self._check(energy_j)

    def charge_fallback(self, energy_j: float) -> None:
        self._fallback_energy_j += self._check(energy_j)

    def charge_degradation(self, energy_j: float) -> None:
        self._degradation_energy_j += self._check(energy_j)

    def charge_buffered(self, energy_j: float) -> None:
        """Local-inference marginal while the payload sits in the buffer."""
        self._buffered_energy_j += self._check(energy_j)

    def charge_drain(self, energy_j: float) -> None:
        """Extra radio airtime spent burst-draining buffered payloads."""
        self._drain_energy_j += self._check(energy_j)

    def record_fault(self, time: float, kind: str, **detail: object) -> None:
        """Log one fault lifecycle event (onset, repair, interrupt …)."""
        self.log.record(time, kind, **detail)
        self._fault_events += 1

    def record_attempts(self, n: int = 1) -> None:
        """Count ``n`` upload attempts (successful, aborted, or timed out).

        A zero-timeout first-attempt failure is still exactly one attempt —
        the retry-accounting regression tests pin this.
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        self._send_attempts += n

    def record_timeout_attempts(self, n: int = 1) -> None:
        """Count ``n`` attempts that burned a full radio-on timeout window."""
        if n < 0:
            raise ValueError("n must be >= 0")
        self._timeout_attempts += n

    @property
    def send_attempts(self) -> int:
        """Total upload attempts made (not part of the frozen report)."""
        return self._send_attempts

    @property
    def timeout_attempts(self) -> int:
        """Attempts that burned ``timeout_s`` of radio-on time each, so the
        charged retry airtime is exactly ``timeout_attempts × timeout_s``."""
        return self._timeout_attempts

    @staticmethod
    def _check(energy_j: float) -> float:
        if energy_j < 0:
            raise ValueError("energy must be >= 0")
        return energy_j

    # -- reporting --------------------------------------------------------
    def report(self) -> ResilienceReport:
        return ResilienceReport(
            cycles_expected=self._expected,
            cycles_ok=self._outcomes[OUTCOME_OK],
            cycles_retried=self._outcomes[OUTCOME_RETRIED],
            cycles_failover=self._outcomes[OUTCOME_FAILOVER],
            cycles_fallback=self._outcomes[OUTCOME_FALLBACK],
            cycles_missed=self._outcomes[OUTCOME_MISSED],
            retry_energy_j=self._retry_energy_j,
            failover_energy_j=self._failover_energy_j,
            fallback_energy_j=self._fallback_energy_j,
            degradation_energy_j=self._degradation_energy_j,
            n_fault_events=self._fault_events,
            cycles_buffered=self._outcomes[OUTCOME_BUFFERED],
            buffered_energy_j=self._buffered_energy_j,
            drain_energy_j=self._drain_energy_j,
        )


__all__ = [
    "FaultMonitor",
    "ResilienceReport",
    "OUTCOME_OK",
    "OUTCOME_RETRIED",
    "OUTCOME_FAILOVER",
    "OUTCOME_FALLBACK",
    "OUTCOME_BUFFERED",
    "OUTCOME_MISSED",
]
