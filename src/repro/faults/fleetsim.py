"""Cycle-level fleet simulation under explicit faults.

:func:`run_faulty_fleet` is the failure-aware counterpart of
:func:`repro.core.simulate.simulate_fleet`: it compiles the fault config
into a deterministic timetable, then replays ``n_cycles`` of the scenario
cycle by cycle.  Each cycle:

1. clients whose crash window intersects the cycle miss it entirely;
2. survivors are packed by the allocator's filling policy (identical maths
   to the loss-C path, so zero-repair crashes reproduce loss C);
3. servers whose outage window intersects the cycle serve nothing and draw
   only the idle power of their surviving fraction of the cycle;
4. clients of a downed server burn their full retry budget, then fail over
   into surviving servers' free slots (:func:`repack_failed_servers`) —
   paying one extra upload — or degrade to local edge inference;
5. clients with a link blackout at their slot retry on the backoff ladder
   (nominal delays; jitter is exercised by the DES path) and recover if the
   blackout ends inside the retry span, else degrade;
6. link degradation stretches the radio-on window of otherwise-successful
   uploads, charging the extra airtime;
7. clients inside a *scheduled* connectivity outage
   (:class:`~repro.network.outage.OutagePattern`) never key the radio:
   the payload is stored in the per-client
   :class:`~repro.network.buffer.EdgeBuffer`, the detection degrades to
   local edge inference (outcome ``buffered``), the allocator releases the
   client's slot by re-packing the *connected* cohort, and reconnected
   clients burst-drain their backlog — contention-stretched airtime on the
   client, base receive + service marginals on the server.

With ``FaultConfig.none()`` every step above is the identity, so the result
is bit-for-bit the ideal §VI-B simulation.  All granularity compromises are
per-cycle: a server is "down for the cycle" if its outage intersects it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.allocator import Allocation, Allocator, FillingPolicy, repack_failed_servers
from repro.core.calibration import CYCLE_SECONDS, PAPER, PaperConstants
from repro.core.client import fallback_extra_energy
from repro.core.losses import LossConfig
from repro.core.routines import Scenario
from repro.core.simulate import server_cycle_energy
from repro.faults.config import FaultConfig
from repro.faults.monitor import (
    OUTCOME_BUFFERED,
    OUTCOME_FAILOVER,
    OUTCOME_FALLBACK,
    OUTCOME_MISSED,
    OUTCOME_OK,
    OUTCOME_RETRIED,
    FaultMonitor,
    ResilienceReport,
)
from repro.faults.schedule import (
    CLIENT_CRASH,
    LINK_BLACKOUT,
    LINK_DEGRADATION,
    SERVER_OUTAGE,
    FaultSchedule,
)
from repro.network.buffer import BLOCKED, BufferReport, EdgeBuffer
from repro.network.outage import LINK_OUTAGE
from repro.util.rng import SeedLike


@dataclass(frozen=True)
class FaultyFleetResult:
    """Per-cycle ledgers and resilience metrics of a faulty-fleet run."""

    scenario_name: str
    n_clients: int
    n_cycles: int
    period: float
    edge_energy_j: np.ndarray       # per cycle, incl. resilience overheads
    server_energy_j: np.ndarray     # per cycle
    retry_energy_j: np.ndarray      # per cycle (itemized, already in edge)
    failover_energy_j: np.ndarray
    fallback_energy_j: np.ndarray
    degradation_energy_j: np.ndarray
    n_active: np.ndarray            # surviving clients per cycle
    n_servers_down: np.ndarray
    report: ResilienceReport
    monitor: FaultMonitor
    faults_description: str
    schedule: FaultSchedule
    buffered_energy_j: Optional[np.ndarray] = None   # per cycle, in edge
    drain_energy_j: Optional[np.ndarray] = None      # per cycle, in edge
    buffer_report: Optional[BufferReport] = None

    @property
    def total_energy_j(self) -> float:
        return float(self.edge_energy_j.sum() + self.server_energy_j.sum())

    @property
    def delivered_data_fraction(self) -> float:
        """Fraction of expected cycle payloads that reached the cloud —
        directly (ok/retried/failover) or via a later buffer drain."""
        r = self.report
        if r.cycles_expected == 0:
            return 1.0
        direct = r.cycles_ok + r.cycles_retried + r.cycles_failover
        drained = self.buffer_report.delivered_payloads if self.buffer_report else 0
        return (direct + drained) / r.cycles_expected

    @property
    def mean_edge_energy_per_cycle(self) -> float:
        return float(self.edge_energy_j.mean())

    @property
    def mean_server_energy_per_cycle(self) -> float:
        return float(self.server_energy_j.mean())

    @property
    def mean_total_per_client_cycle(self) -> float:
        """Joules per (initial) client per cycle, the Figure 6/7 y-axis."""
        if self.n_clients == 0:
            return 0.0
        return self.total_energy_j / (self.n_clients * self.n_cycles)

    @property
    def availability(self) -> float:
        return self.report.availability

    @property
    def resilience_energy_j(self) -> float:
        return self.report.resilience_energy_j


def _retries_until(up_at: float, attempt_times: List[float]) -> Optional[int]:
    """First attempt index (0-based) at or after ``up_at``, if any."""
    for i, t in enumerate(attempt_times):
        if t >= up_at:
            return i
    return None


def run_faulty_fleet(
    n_clients: int,
    scenario: Scenario,
    faults: Optional[FaultConfig] = None,
    n_cycles: int = 1,
    period: float = CYCLE_SECONDS,
    losses: Optional[LossConfig] = None,
    policy: Optional[FillingPolicy] = None,
    seed: SeedLike = None,
    constants: PaperConstants = PAPER,
    validate: Optional[bool] = None,
    obs=None,
    kernel: str = "auto",
) -> FaultyFleetResult:
    """Replay ``n_cycles`` of the scenario under explicit fault processes.

    ``kernel`` selects the implementation: ``"scalar"`` is the reference
    per-client loop below; ``"array"`` is the closed-form kernel in
    :mod:`repro.faults.fleetsim_array` (bit-identical, but requires the
    first-fit filling policy); ``"auto"`` (default) picks the array kernel
    whenever the policy allows it.

    ``losses`` may carry loss A/B (they price saturation and transfer
    stretch exactly as in the ideal model — including on failover-repacked
    slots); loss C must be expressed as a
    :class:`~repro.faults.spec.ClientCrash` instead, so dropout has an
    explicit failure process behind it.

    ``obs=`` (or the ambient collector; see :mod:`repro.obs`) attributes
    each cycle's energy per phase as it is computed — retry burn → ``retry``,
    failover re-uploads and degradation airtime → ``transfer``, fallback
    inference → ``infer``, downed-server up-fraction → ``idle`` — so the
    phase sum reconciles exactly with ``total_energy_j``.

    ``n_clients=0`` is well-defined: every cycle is empty and all ledgers
    are zero.
    """
    if n_clients < 0:
        raise ValueError("n_clients must be >= 0")
    if n_cycles < 1:
        raise ValueError("n_cycles must be >= 1")
    faults = faults or FaultConfig.none()
    losses = losses or LossConfig.none()
    if losses.client_loss is not None:
        raise ValueError(
            "run_faulty_fleet models dropout via ClientCrash; "
            "pass FaultConfig(client_crash=ClientCrash.from_client_loss(...)) "
            "instead of LossConfig(client_loss=...)"
        )
    if kernel not in ("auto", "scalar", "array"):
        raise ValueError(f"unknown kernel {kernel!r}: expected auto, scalar, or array")
    if kernel != "scalar":
        from repro.core.allocator import FirstFitPolicy

        first_fit = policy is None or isinstance(policy, FirstFitPolicy)
        if kernel == "array" and not first_fit:
            raise ValueError("kernel='array' requires the first-fit filling policy")
        if first_fit:
            from repro.faults.fleetsim_array import run_faulty_fleet_array

            return run_faulty_fleet_array(
                n_clients, scenario, faults, n_cycles=n_cycles, period=period,
                losses=losses, policy=policy, seed=seed, constants=constants,
                validate=validate, obs=obs,
            )

    horizon = n_cycles * period
    client = scenario.client
    fallback_model = "svm"
    if scenario.server is not None and "cnn" in scenario.server.service.name:
        fallback_model = "cnn"

    # -- allocator & schedule -------------------------------------------------
    allocator: Optional[Allocator] = None
    n_server_targets = 0
    if not scenario.is_edge_only:
        allocator = Allocator(scenario.server, period=period, losses=losses, policy=policy)
        n_server_targets = allocator.servers_required(n_clients)
    schedule = faults.compile(
        horizon, n_servers=n_server_targets, n_clients=n_clients, seed=seed
    )

    retry = faults.retry
    send_task = None
    svc_marginal_1 = 0.0
    if not scenario.is_edge_only:
        send_task = client.active_tasks.get("send_audio")
        svc_marginal_1 = (
            scenario.server.service.energy
            - scenario.server.idle_watts * scenario.server.service.duration
        )
    outage_on = faults.link_outage is not None and not scenario.is_edge_only
    buf_spec = faults.buffer_spec()
    buffers: Dict[int, EdgeBuffer] = {}
    # Clients with at least one compiled outage window: an always_up pattern
    # compiles none, and the per-slot probing below is skipped outright —
    # an armed-but-idle schedule must cost (almost) nothing.
    outage_clients = (
        frozenset(
            cid for cid in range(n_clients) if schedule.windows_for(LINK_OUTAGE, cid)
        )
        if outage_on
        else frozenset()
    )
    buffered_infer_j = (
        fallback_extra_energy(client, fallback_model, constants) if outage_on else 0.0
    )
    mon = FaultMonitor()
    for w in schedule.windows:
        mon.record_fault(w.start, w.kind, target=w.target, duration=w.duration)

    from repro.obs.state import resolve as _resolve_obs

    obs_c = _resolve_obs(obs)
    local = None
    if obs_c is not None:
        from repro.obs.attribution import (
            attribute_client_cycle,
            attribute_server_cycle,
            record_run,
        )
        from repro.obs.ledger import PhaseLedger

        local = PhaseLedger()

    edge_e = np.zeros(n_cycles)
    server_e = np.zeros(n_cycles)
    retry_e = np.zeros(n_cycles)
    failover_e = np.zeros(n_cycles)
    fallback_e = np.zeros(n_cycles)
    degradation_e = np.zeros(n_cycles)
    buffered_e = np.zeros(n_cycles)
    drain_e = np.zeros(n_cycles)
    active_arr = np.zeros(n_cycles, dtype=np.int64)
    down_arr = np.zeros(n_cycles, dtype=np.int64)

    for cycle in range(n_cycles):
        t0, t1 = cycle * period, (cycle + 1) * period
        mon.expect_cycle(n_clients)

        crashed = [
            cid
            for cid in range(n_clients)
            if schedule.down_during(CLIENT_CRASH, cid, t0, t1)
        ]
        active_ids = [cid for cid in range(n_clients) if cid not in set(crashed)]
        n_active = len(active_ids)
        active_arr[cycle] = n_active
        mon.record_outcome(OUTCOME_MISSED, len(crashed))

        if scenario.is_edge_only:
            edge_e[cycle] = n_active * client.cycle_energy
            if local is not None:
                attribute_client_cycle(local, client, weight=n_active)
            mon.record_outcome(OUTCOME_OK, n_active)
            continue

        assert allocator is not None and send_task is not None
        allocation: Allocation = allocator.policy.allocate(active_ids, allocator.plan)
        slot_dur = allocator.plan.slot_duration
        t_rx_base = scenario.server.transfer_s

        # Scheduled connectivity outages: the client *knows* the modem is
        # dark at its nominal upload time (unlike a transient blackout), so
        # it never keys the radio — the send energy is refunded, the payload
        # goes to the store-and-forward buffer, and the detection degrades
        # to local edge inference.  The allocator then releases those slots
        # by re-packing only the connected cohort (automatic re-admission
        # next cycle, since allocation is per-cycle).
        out_pairs: List[Tuple[int, float]] = []
        if outage_clients:
            for srv in allocation.servers:
                for slot_idx, slot in enumerate(srv.slots):
                    upload_t = t0 + slot_idx * slot_dur
                    for cid in slot:
                        if cid in outage_clients and schedule.is_down(
                            LINK_OUTAGE, cid, upload_t
                        ):
                            out_pairs.append((cid, upload_t))
        n_out = len(out_pairs)
        if n_out:
            out_set = {cid for cid, _ in out_pairs}
            connected = [cid for cid in active_ids if cid not in out_set]
            allocation = allocator.policy.allocate(connected, allocator.plan)
            for cid, up_t in out_pairs:
                outcome = buffers.setdefault(cid, EdgeBuffer(buf_spec)).offer(up_t)
                if outcome == BLOCKED:
                    # BLOCK policy: the cycle is skipped outright — no
                    # local inference, no detection.
                    mon.record_outcome(OUTCOME_MISSED)
                else:
                    buffered_e[cycle] += buffered_infer_j
                    mon.charge_buffered(buffered_infer_j)
                    mon.record_outcome(OUTCOME_BUFFERED)

        edge_e[cycle] = n_active * client.cycle_energy - n_out * send_task.energy
        if local is not None:
            attribute_client_cycle(local, client, weight=n_active - n_out)
            if n_out:
                attribute_client_cycle(
                    local, client, weight=n_out, skip_tasks=("send_audio",)
                )

        down = [
            srv.server_index
            for srv in allocation.servers
            if schedule.down_during(SERVER_OUTAGE, srv.server_index, t0, t1)
        ]
        down_arr[cycle] = len(down)

        # Failover: strip *all* downed servers first, then repack their
        # clients into the true survivors.  (Repacking one failure at a
        # time could land an orphan on another server that is itself down,
        # double-counting that client's cycle and pushing availability
        # above 1.0.)
        orphans_total: List[int] = []
        unplaced: List[int] = []
        placed: List[int] = []
        down_present = [
            sidx for sidx in down if sidx in {s.server_index for s in allocation.servers}
        ]
        if down_present:
            orphans_total = [
                cid
                for srv in allocation.servers
                if srv.server_index in set(down_present)
                for slot in srv.slots
                for cid in slot
            ]
            allocation, left = repack_failed_servers(allocation, down_present)
            unplaced = list(left)
            placed = [cid for cid in orphans_total if cid not in set(left)]

        # Every orphan burned its full retry budget against its dead server.
        if orphans_total:
            burn = retry.exhausted_energy_j(send_task.power)
            retry_e[cycle] += burn * len(orphans_total)
            mon.charge_retry(burn * len(orphans_total))
            mon.record_attempts((1 + retry.max_retries) * len(orphans_total))
            if retry.timeout_s > 0:
                mon.record_timeout_attempts((1 + retry.max_retries) * len(orphans_total))
        if placed:
            extra = send_task.energy * len(placed)
            failover_e[cycle] += extra
            mon.charge_failover(extra)
            mon.record_attempts(len(placed))
            mon.record_outcome(OUTCOME_FAILOVER, len(placed))
        if unplaced:
            if faults.fallback:
                per = fallback_extra_energy(client, fallback_model, constants)
                fallback_e[cycle] += per * len(unplaced)
                mon.charge_fallback(per * len(unplaced))
                mon.record_outcome(OUTCOME_FALLBACK, len(unplaced))
            else:
                mon.record_outcome(OUTCOME_MISSED, len(unplaced))

        # Link faults for clients whose home server survived.
        orphan_set = set(orphans_total)
        n_retried = 0
        n_link_fallback = 0
        n_link_missed = 0
        upload_at: Dict[int, float] = {}
        link_failed: set = set()
        for srv in allocation.servers:
            for slot_idx, slot in enumerate(srv.slots):
                upload_t = t0 + slot_idx * slot_dur
                for cid in slot:
                    upload_at[cid] = upload_t
                    if cid in orphan_set:
                        continue
                    if schedule.is_down(LINK_BLACKOUT, cid, upload_t):
                        window = schedule.active_window(LINK_BLACKOUT, cid, upload_t)
                        attempt_times = [upload_t]
                        t = upload_t
                        for i in range(retry.max_retries):
                            t += retry.timeout_s + retry.nominal_delay_s(i)
                            attempt_times.append(t)
                        rec = _retries_until(window.end, attempt_times)
                        if rec is not None:
                            burn = rec * retry.attempt_energy_j(send_task.power)
                            retry_e[cycle] += burn
                            mon.charge_retry(burn)
                            mon.record_attempts(rec + 1)  # rec timeouts + the success
                            if retry.timeout_s > 0:
                                mon.record_timeout_attempts(rec)
                            n_retried += 1
                        else:
                            burn = retry.exhausted_energy_j(send_task.power)
                            retry_e[cycle] += burn
                            mon.charge_retry(burn)
                            mon.record_attempts(1 + retry.max_retries)
                            if retry.timeout_s > 0:
                                mon.record_timeout_attempts(1 + retry.max_retries)
                            link_failed.add(cid)
                            if faults.fallback:
                                per = fallback_extra_energy(client, fallback_model, constants)
                                fallback_e[cycle] += per
                                mon.charge_fallback(per)
                                n_link_fallback += 1
                                mon.record_outcome(OUTCOME_FALLBACK)
                            else:
                                n_link_missed += 1
                                mon.record_outcome(OUTCOME_MISSED)
                    elif schedule.is_down(LINK_DEGRADATION, cid, upload_t):
                        window = schedule.active_window(LINK_DEGRADATION, cid, upload_t)
                        stretch = 1.0 / window.severity
                        extra = send_task.power * t_rx_base * (stretch - 1.0)
                        degradation_e[cycle] += extra
                        mon.charge_degradation(extra)

        # Remaining survivors uploaded first-try.
        n_served = (
            n_active - n_out - len(orphans_total)
            - n_retried - n_link_fallback - n_link_missed
        )
        mon.record_attempts(max(n_served, 0))  # first-try uploads
        mon.record_outcome(OUTCOME_RETRIED, n_retried)
        mon.record_outcome(OUTCOME_OK, max(n_served, 0))

        # Burst drain: reconnected clients with backlog push it to their
        # allocated server inside ``drain_window_s``.  With ``k`` clients
        # draining through the shared AP, processor sharing stretches each
        # payload's airtime ×k on the client side while the server receives
        # the k streams in parallel — its per-payload receive marginal stays
        # at the base transfer time.
        drain_server_j = 0.0
        n_drained = 0
        if outage_on and buffers:
            alive_servers = {s.server_index for s in allocation.servers} - set(down)
            drainers = [
                cid
                for cid in sorted(upload_at)
                if cid not in link_failed
                and cid not in set(unplaced)
                and cid in buffers
                and buffers[cid].resident_payloads > 0
            ]
            if alive_servers and drainers:
                k = len(drainers)
                quota = buf_spec.drain_quota_for(send_task.duration, contenders=k)
                for cid in drainers:
                    done_t = upload_at[cid] + send_task.duration
                    payloads = buffers[cid].drain(done_t, quota)
                    if not payloads:
                        continue
                    n = len(payloads)
                    n_drained += n
                    client_j = send_task.energy * k * n
                    drain_e[cycle] += client_j
                    mon.charge_drain(client_j)
                    mon.record_attempts(n)
                    drain_server_j += n * (
                        (scenario.server.receive_watts - scenario.server.idle_watts)
                        * t_rx_base
                        + svc_marginal_1
                    )

        # Server-side energy: survivors serve their (possibly repacked)
        # occupancies; downed servers draw idle only outside their windows.
        surviving = {s.server_index for s in allocation.servers} - set(down)
        energy = 0.0
        for srv in allocation.servers:
            if srv.server_index in surviving:
                energy += server_cycle_energy(
                    scenario.server,
                    srv.occupancies,
                    period=period,
                    sizing_extra_s=allocator.sizing_extra_s,
                    losses=losses,
                )
                if local is not None:
                    attribute_server_cycle(
                        local,
                        scenario.server,
                        srv.occupancies,
                        period=period,
                        sizing_extra_s=allocator.sizing_extra_s,
                        losses=losses,
                    )
        for sidx in down:
            overlap = sum(
                max(0.0, min(w.end, t1) - max(w.start, t0))
                for w in schedule.windows_for(SERVER_OUTAGE, sidx)
            )
            up_s = max(period - overlap, 0.0)
            energy += scenario.server.idle_watts * up_s
            if local is not None:
                local.add("idle", scenario.server.idle_watts * up_s, up_s)
        server_e[cycle] = energy + drain_server_j
        edge_e[cycle] += (
            retry_e[cycle] + failover_e[cycle] + fallback_e[cycle]
            + degradation_e[cycle] + buffered_e[cycle] + drain_e[cycle]
        )
        if local is not None:
            # Resilience overheads, same per-cycle floats the ledgers carry:
            # retry burn is radio-on at the send power, failover re-uploads,
            # degradation stretch and backlog drains are extra airtime,
            # fallback and buffered-cycle inference are local compute.
            send_w = send_task.power
            if retry_e[cycle]:
                local.add("retry", retry_e[cycle], retry_e[cycle] / send_w)
            if failover_e[cycle]:
                local.add("transfer", failover_e[cycle], failover_e[cycle] / send_w)
            if degradation_e[cycle]:
                local.add("transfer", degradation_e[cycle], degradation_e[cycle] / send_w)
            if fallback_e[cycle]:
                local.add("infer", fallback_e[cycle])
            if buffered_e[cycle]:
                local.add("infer", buffered_e[cycle])
            if drain_e[cycle]:
                local.add("transfer", drain_e[cycle], drain_e[cycle] / send_w)
            if n_drained:
                # Server-side drain marginals, split like attribute_server_cycle.
                rx_j = n_drained * (
                    (scenario.server.receive_watts - scenario.server.idle_watts)
                    * t_rx_base
                )
                local.add("transfer", rx_j, n_drained * t_rx_base)
                local.add(
                    "infer",
                    n_drained * svc_marginal_1,
                    n_drained * scenario.server.service.duration,
                )

    result = FaultyFleetResult(
        scenario_name=scenario.name,
        n_clients=n_clients,
        n_cycles=n_cycles,
        period=period,
        edge_energy_j=edge_e,
        server_energy_j=server_e,
        retry_energy_j=retry_e,
        failover_energy_j=failover_e,
        fallback_energy_j=fallback_e,
        degradation_energy_j=degradation_e,
        n_active=active_arr,
        n_servers_down=down_arr,
        report=mon.report(),
        monitor=mon,
        faults_description=faults.describe(),
        schedule=schedule,
        buffered_energy_j=buffered_e,
        drain_energy_j=drain_e,
        buffer_report=(
            BufferReport.from_buffers(list(buffers.values())) if outage_on else None
        ),
    )

    if obs_c is not None:
        report = result.report
        obs_c.metrics.counter("fleet.runs").inc()
        obs_c.metrics.counter("fleet.clients_active").inc(int(active_arr.sum()))
        for label, count in (
            ("faults.cycles_expected", report.cycles_expected),
            ("faults.cycles_ok", report.cycles_ok),
            ("faults.cycles_retried", report.cycles_retried),
            ("faults.cycles_failover", report.cycles_failover),
            ("faults.cycles_fallback", report.cycles_fallback),
            ("faults.cycles_buffered", report.cycles_buffered),
            ("faults.cycles_missed", report.cycles_missed),
            ("faults.events", report.n_fault_events),
            ("faults.send_attempts", mon.send_attempts),
            ("faults.timeout_attempts", mon.timeout_attempts),
        ):
            obs_c.metrics.counter(label).inc(count)
        obs_c.metrics.gauge("faults.availability").set(report.availability)
        local.note_total(result.total_energy_j)
        record_run(
            obs_c, "faulty_fleet", 0.0, horizon, local,
            scenario=scenario.name, n_clients=n_clients,
            n_cycles=n_cycles, availability=report.availability,
        )

    from repro.validate.state import resolve

    if resolve(validate):
        from repro.validate.invariants import validate_faulty_fleet_result

        validate_faulty_fleet_result(
            result,
            context={
                "scenario_name": scenario.name,
                "faults": faults.describe(),
                "seed": seed,
            },
        )
    return result


__all__ = ["FaultyFleetResult", "run_faulty_fleet"]
