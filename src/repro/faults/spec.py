"""Fault specifications: stochastic failure processes with seeded draws.

Each spec describes one class of failure as a renewal process per target
(server index or client id): exponentially distributed time-to-failure with
mean ``mtbf_s``, followed by an exponentially distributed repair window with
mean ``repair_s``.  Compiling a spec against a horizon yields deterministic,
time-stamped :class:`FaultWindow` objects — the same seed always produces
the same fault timeline, so experiments are exactly reproducible.

The four concrete specs mirror the failure surface of the paper's §VI
deployment:

* :class:`ServerOutage` — a cloud server crashes and is unreachable.
* :class:`LinkBlackout` — a client's Wi-Fi uplink goes dark.
* :class:`LinkDegradation` — the uplink stays up but throughput collapses
  by ``throughput_factor``.
* :class:`ClientCrash` — the beehive client itself dies.  With zero repair
  time this degenerates to the paper's loss model C (per-wake-up dropout):
  a crash costs exactly the cycle it lands in and nothing else — see
  :meth:`ClientCrash.from_client_loss`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.core.calibration import CYCLE_SECONDS
from repro.core.losses import ClientLoss
from repro.util.validation import check_non_negative, check_positive

#: Window kinds (``FaultWindow.kind`` values).
SERVER_OUTAGE = "server_outage"
LINK_BLACKOUT = "link_blackout"
LINK_DEGRADATION = "link_degradation"
CLIENT_CRASH = "client_crash"


@dataclass(frozen=True, order=True)
class FaultWindow:
    """One realized fault: ``target`` is affected during ``[start, end)``.

    Zero-width windows (``end == start``) model instantaneous faults that
    still abort whatever was in progress — the zero-repair client crash.
    """

    start: float
    end: float
    kind: str = field(compare=False)
    target: int = field(compare=False)
    severity: float = field(default=1.0, compare=False)

    def __post_init__(self) -> None:
        check_non_negative(self.start, "FaultWindow.start")
        if self.end < self.start:
            raise ValueError(f"window end {self.end} precedes start {self.start}")
        check_non_negative(self.severity, "FaultWindow.severity")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def covers(self, t: float) -> bool:
        """True if the fault is active at instant ``t`` (half-open window)."""
        return self.start <= t < self.end

    def overlaps(self, t0: float, t1: float) -> bool:
        """True if the fault intersects ``[t0, t1)``.

        A zero-width window overlaps the interval containing its instant, so
        zero-repair crashes still void the cycle they land in.
        """
        if self.end == self.start:
            return t0 <= self.start < t1
        return self.start < t1 and self.end > t0


class FaultSpec:
    """Shared renewal-process compilation for all fault specs."""

    kind: str = "fault"
    mtbf_s: float
    repair_s: float

    def _validate_process(self) -> None:
        # An infinite MTBF is the documented "never fires" sentinel, so it
        # bypasses the finite-number validation.
        if not (math.isinf(self.mtbf_s) and self.mtbf_s > 0):
            check_positive(self.mtbf_s, "mtbf_s")
        check_non_negative(self.repair_s, "repair_s")

    def _draw_repair(self, rng: np.random.Generator) -> float:
        if self.repair_s == 0.0:
            return 0.0
        return float(rng.exponential(self.repair_s))

    def compile_target(
        self, target: int, horizon_s: float, rng: np.random.Generator
    ) -> Tuple[FaultWindow, ...]:
        """Realize this spec's windows for one target over ``[0, horizon_s)``."""
        check_positive(horizon_s, "horizon_s")
        if not math.isfinite(self.mtbf_s):
            return ()
        windows: List[FaultWindow] = []
        t = float(rng.exponential(self.mtbf_s))
        while t < horizon_s:
            repair = self._draw_repair(rng)
            windows.append(
                FaultWindow(
                    start=t,
                    end=min(t + repair, horizon_s),
                    kind=self.kind,
                    target=target,
                    severity=self._severity(),
                )
            )
            t += repair + float(rng.exponential(self.mtbf_s))
        return tuple(windows)

    def _severity(self) -> float:
        return 1.0

    def describe(self) -> str:
        if not math.isfinite(self.mtbf_s):
            return f"{self.kind}(off)"
        return f"{self.kind}(mtbf={self.mtbf_s:g}s, repair={self.repair_s:g}s)"


@dataclass(frozen=True)
class ServerOutage(FaultSpec):
    """A cloud server crashes and serves nothing until repaired.

    While down the server draws no power (its idle baseline disappears from
    the ledger) but every client scheduled on it misses its slot and enters
    the retry/failover path.
    """

    mtbf_s: float = 24 * 3600.0
    repair_s: float = 600.0
    kind: str = field(default=SERVER_OUTAGE, init=False)

    def __post_init__(self) -> None:
        self._validate_process()


@dataclass(frozen=True)
class LinkBlackout(FaultSpec):
    """A client's uplink goes completely dark (AP reboot, interference)."""

    mtbf_s: float = 48 * 3600.0
    repair_s: float = 120.0
    kind: str = field(default=LINK_BLACKOUT, init=False)

    def __post_init__(self) -> None:
        self._validate_process()


@dataclass(frozen=True)
class LinkDegradation(FaultSpec):
    """The uplink survives but throughput drops to ``throughput_factor``.

    Transfers succeed, stretched by ``1/throughput_factor`` — the client's
    radio stays on longer, so the cycle costs more energy but no detection
    is lost.
    """

    mtbf_s: float = 12 * 3600.0
    repair_s: float = 1800.0
    throughput_factor: float = 0.25
    kind: str = field(default=LINK_DEGRADATION, init=False)

    def __post_init__(self) -> None:
        self._validate_process()
        if not 0.0 < self.throughput_factor <= 1.0:
            raise ValueError(
                f"throughput_factor must be in (0, 1], got {self.throughput_factor}"
            )

    def _severity(self) -> float:
        return self.throughput_factor

    def stretch_factor(self) -> float:
        """Wall-clock multiplier on transfer time while degraded."""
        return 1.0 / self.throughput_factor


@dataclass(frozen=True)
class ClientCrash(FaultSpec):
    """The beehive client dies; it misses every wake-up until repaired.

    A crash also voids the cycle it lands in (work in progress is lost), so
    ``repair_s=0`` — instantaneous reboot — reproduces the paper's loss
    model C exactly: each cycle is independently missed with probability
    ``1 − exp(−period/mtbf_s)`` and no other cycle is affected.
    """

    mtbf_s: float = 7 * 24 * 3600.0
    repair_s: float = 0.0
    kind: str = field(default=CLIENT_CRASH, init=False)

    def __post_init__(self) -> None:
        self._validate_process()

    @staticmethod
    def from_client_loss(
        loss: ClientLoss, period: float = CYCLE_SECONDS
    ) -> "ClientCrash":
        """The zero-repair crash process matching loss C's mean dropout.

        Loss C drops a Gaussian ``N(f·n, σ)`` number of clients per wake-up;
        the memoryless equivalent is each client independently missing a
        cycle with probability ``f``, i.e. an exponential crash process with
        ``P(crash in period) = f`` → ``mtbf = −period / ln(1 − f)``.  The
        per-cycle dropout *count* distribution differs (binomial vs clipped
        Gaussian) but its mean — and therefore the mean energy — agrees.
        """
        check_positive(period, "period")
        f = loss.mean_fraction
        if f <= 0.0:
            return ClientCrash(mtbf_s=math.inf, repair_s=0.0)
        if f >= 1.0:
            raise ValueError("cannot match a mean dropout fraction of 1.0")
        return ClientCrash(mtbf_s=-period / math.log1p(-f), repair_s=0.0)

    def miss_probability(self, period: float = CYCLE_SECONDS) -> float:
        """Probability a given cycle is missed (zero-repair reading)."""
        check_positive(period, "period")
        if not math.isfinite(self.mtbf_s):
            return 0.0
        return 1.0 - math.exp(-period / self.mtbf_s)


#: Public spec types, for isinstance checks and registry-style lookups.
ALL_FAULT_KINDS: Tuple[str, ...] = (
    SERVER_OUTAGE,
    LINK_BLACKOUT,
    LINK_DEGRADATION,
    CLIENT_CRASH,
)


def never() -> "ServerOutage":
    """A spec that never fires (infinite MTBF) — useful as a placeholder."""
    return ServerOutage(mtbf_s=math.inf, repair_s=0.0)


__all__ = [
    "FaultWindow",
    "FaultSpec",
    "ServerOutage",
    "LinkBlackout",
    "LinkDegradation",
    "ClientCrash",
    "SERVER_OUTAGE",
    "LINK_BLACKOUT",
    "LINK_DEGRADATION",
    "CLIENT_CRASH",
    "ALL_FAULT_KINDS",
    "never",
]
