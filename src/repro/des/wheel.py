"""Calendar-queue event list (the ``Engine(queue="wheel")`` backend).

A calendar queue (R. Brown, CACM 1988) buckets pending events by time —
``bucket = floor(time / width) mod n_buckets`` — the way a desk calendar
buckets appointments by day.  Enqueue appends to one bucket; dequeue scans
forward from the current "day", so with a well-chosen width both are O(1)
amortized, versus O(log n) for a binary heap.  The width and bucket count
adapt to the queue size by periodic resize.

Three deviations from the textbook structure keep it exact for this kernel:

* **Full-key order.**  Entries are the engine's ``(time, priority, seq,
  event)`` tuples and every comparison uses the tuple order.  ``seq`` is
  unique, so ties never reach the (incomparable) event object, and the pop
  sequence is the *identical total order* a heap produces — event traces
  hash equal between the two backends (golden-pinned and property-tested).
* **Integer year bookkeeping.**  The dequeue scan tracks the *virtual
  bucket* (an exact Python int, ``floor(time / width)``) instead of a
  floating "bucket top" threshold.  An entry is due at scan position ``v``
  iff its own virtual bucket equals ``v`` — the same floor-division both
  sides, so a time sitting within one ulp of a year boundary can never be
  popped out of order the way an accumulated float threshold allows.
* **Lazy-sorted buckets.**  Each bucket is a Python list kept sorted
  *descending* once it has been popped from (so the minimum pops from the
  end in O(1)); a push just appends and marks the bucket dirty.  Timsort
  on an almost-sorted bucket is nearly linear, which beats per-push
  bisection for the DES workload's bursty same-bucket inserts.

The structure requires the engine's monotonicity invariant — nothing is
ever scheduled before the last popped time (``delay >= 0``) — which the
kernel enforces.  :meth:`CalendarQueue.sorted_entries` returns the fully
sorted pending set; an ascending-sorted list is also a valid binary heap,
so snapshots taken from a wheel engine restore into either backend
(:mod:`repro.resilience.snapshot`).
"""

from __future__ import annotations

from typing import Optional, Tuple

#: Smallest bucket count; resizes never shrink below this.
_MIN_BUCKETS = 8

#: Grow when size exceeds twice the bucket count, shrink when it falls
#: below half — the factor-of-four hysteresis band means push/pop cycling
#: around a threshold cannot thrash resizes.
_GROW_FACTOR = 2


class CalendarQueue:
    """Array-backed event list with O(1) amortized push/pop.

    Operands are heap entries ``(time, priority, seq, event)``; ``pop``
    returns them in exactly the order ``heapq`` would.
    """

    __slots__ = ("_buckets", "_dirty", "_n_buckets", "_width", "_size", "_vcur")

    def __init__(self, start_time: float = 0.0, width: float = 1.0,
                 n_buckets: int = _MIN_BUCKETS) -> None:
        if width <= 0.0:
            raise ValueError(f"bucket width must be > 0, got {width}")
        if n_buckets < 1:
            raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
        self._size = 0
        self._n_buckets = int(n_buckets)
        self._width = float(width)
        self._buckets = [[] for _ in range(self._n_buckets)]
        self._dirty = [False] * self._n_buckets
        self._vcur = int(start_time // self._width)

    # -- internal layout ---------------------------------------------------
    def _resize(self, n_buckets: int) -> None:
        n_buckets = max(int(n_buckets), _MIN_BUCKETS)
        entries = [e for b in self._buckets for e in b]
        if entries:
            lo = min(e[0] for e in entries)
            hi = max(e[0] for e in entries)
            # Mean inter-event gap ×3 is Brown's sweet spot: most buckets
            # hold O(1) events of the current year.  Degenerate spreads
            # (all events at one instant) keep the current width.
            span = hi - lo
            width = 3.0 * span / len(entries) if span > 0.0 else self._width
            anchor = lo
        else:
            width = self._width
            anchor = self._vcur * self._width
        self._n_buckets = n_buckets
        self._width = width
        self._buckets = [[] for _ in range(n_buckets)]
        self._dirty = [False] * n_buckets
        for e in entries:
            i = int(e[0] // width) % n_buckets
            self._buckets[i].append(e)
            self._dirty[i] = True
        self._vcur = int(anchor // width)

    # -- queue interface ---------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def push(self, entry: Tuple[float, int, int, object]) -> None:
        """Insert one heap entry.  O(1); may trigger an O(n) resize."""
        i = int(entry[0] // self._width) % self._n_buckets
        self._buckets[i].append(entry)
        self._dirty[i] = True
        self._size += 1
        if self._size > _GROW_FACTOR * self._n_buckets:
            self._resize(_GROW_FACTOR * self._n_buckets)

    def pop(self) -> Tuple[float, int, int, object]:
        """Remove and return the minimum entry (full-tuple order)."""
        if not self._size:
            raise IndexError("pop from an empty CalendarQueue")
        n = self._n_buckets
        width = self._width
        buckets = self._buckets
        dirty = self._dirty
        v = self._vcur
        # One calendar year, starting at the current day: with a sane
        # width, the next event is almost always in the first bucket.
        for _ in range(n):
            b = buckets[v % n]
            if b:
                if dirty[v % n]:
                    b.sort(reverse=True)
                    dirty[v % n] = False
                if int(b[-1][0] // width) <= v:
                    entry = b.pop()
                    self._vcur = v
                    self._size -= 1
                    if (self._n_buckets > _MIN_BUCKETS
                            and self._size < self._n_buckets // _GROW_FACTOR):
                        self._resize(self._n_buckets // _GROW_FACTOR)
                    return entry
            v += 1
        # Nothing within a year: direct-search the global minimum and
        # re-anchor the scan there (the classic long-jump fallback).
        best: Optional[tuple] = None
        best_i = -1
        for i in range(n):
            b = buckets[i]
            if not b:
                continue
            if dirty[i]:
                b.sort(reverse=True)
                dirty[i] = False
            if best is None or b[-1] < best:
                best = b[-1]
                best_i = i
        entry = buckets[best_i].pop()
        self._size -= 1
        self._vcur = int(entry[0] // width)
        if (self._n_buckets > _MIN_BUCKETS
                and self._size < self._n_buckets // _GROW_FACTOR):
            self._resize(self._n_buckets // _GROW_FACTOR)
        return entry

    def min_time(self) -> float:
        """Time of the minimum entry without removing it; ``inf`` if empty.

        Like ``heap[0][0]`` this may name a lazily-cancelled event —
        cancellations resolve on pop.
        """
        if not self._size:
            return float("inf")
        n = self._n_buckets
        width = self._width
        buckets = self._buckets
        dirty = self._dirty
        v = self._vcur
        for _ in range(n):
            b = buckets[v % n]
            if b:
                if dirty[v % n]:
                    b.sort(reverse=True)
                    dirty[v % n] = False
                if int(b[-1][0] // width) <= v:
                    return b[-1][0]
            v += 1
        best = None
        for i in range(n):
            b = buckets[i]
            if not b:
                continue
            if dirty[i]:
                b.sort(reverse=True)
                dirty[i] = False
            if best is None or b[-1] < best:
                best = b[-1]
        assert best is not None
        return best[0]

    def sorted_entries(self) -> tuple:
        """All pending entries in ascending (pop) order.

        An ascending list satisfies the binary-heap invariant, so this is
        directly usable as the snapshot heap (see
        :func:`repro.resilience.snapshot.snapshot_engine`).
        """
        return tuple(sorted(e for b in self._buckets for e in b))


__all__ = ["CalendarQueue"]
