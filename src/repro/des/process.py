"""Generator-based processes and composite wait conditions.

A process is a Python generator that yields :class:`~repro.des.engine.Event`
objects; the kernel resumes the generator with the event's value when it
fires.  ``AllOf``/``AnyOf`` compose events; :class:`Wait` is an alias kept for
readability at call sites.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from repro.des.engine import Engine, Event, Interrupt, SimulationError
from repro.des.engine import Timeout as _PooledTimeout


class Process(Event):
    """Wrap a generator as a process.

    The process itself is an event that fires when the generator returns
    (successfully, with its return value) or raises (as a failure), so
    processes can wait on other processes.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, engine: Engine, generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process requires a generator, got {type(generator).__name__}")
        super().__init__(engine)
        self._generator = generator
        self._waiting_on: Event | None = None
        # Bootstrap: resume the generator at the current time.
        boot = Event(engine)
        boot.callbacks.append(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on keeps running; the process may
        re-wait on it or abandon it.
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self._waiting_on is not None:
            # Detach from the event we were waiting for.
            target = self._waiting_on
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            # Fast path: on a pooling engine, an orphaned timeout (no other
            # listener) is lazily cancelled so the run loop can discard and
            # recycle it instead of firing into the void.  Only done when
            # pooling is on — default engines keep the documented "the event
            # keeps running; the process may re-wait on it" contract.
            if (
                self.engine._pool_timeouts
                and not target.callbacks
                and type(target) is _PooledTimeout
                and not target._fired
            ):
                target._cancelled = True
            self._waiting_on = None
        kick = Event(self.engine)
        kick.callbacks.append(lambda ev: self._step(throw=Interrupt(cause)))
        kick.succeed(priority=0)

    # -- kernel plumbing -------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._ok:
            self._step(send=event._value)
        else:
            event.defuse()
            self._step(throw=event._value)

    def _step(self, send: Any = None, throw: BaseException | None = None) -> None:
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(SimulationError(f"process yielded {type(target).__name__}, expected Event"))
            return
        if target.processed or target._cancelled:
            self._generator.close()
            kind = "cancelled" if target._cancelled else "already-processed"
            self.fail(SimulationError(f"process yielded a {kind} event"))
            return
        self._waiting_on = target
        target.callbacks.append(self._resume)


#: Alias so ``yield Wait(engine, 3.0)`` reads naturally.
def Wait(engine: Engine, delay: float, value: Any = None) -> Event:
    """Alias for :meth:`Engine.timeout`."""
    return engine.timeout(delay, value)


def Timeout(engine: Engine, delay: float, value: Any = None) -> Event:
    """Alias for :meth:`Engine.timeout` (SimPy-style name)."""
    return engine.timeout(delay, value)


class _Condition(Event):
    """Base for AllOf/AnyOf composites."""

    __slots__ = ("_events", "_pending")

    def __init__(self, engine: Engine, events: Iterable[Event]) -> None:
        super().__init__(engine)
        self._events = list(events)
        if not self._events:
            self.succeed({})
            return
        self._pending = len(self._events)
        for ev in self._events:
            if ev.processed:
                self._on_fire(ev)
            else:
                ev.callbacks.append(self._on_fire)

    def _values(self) -> dict:
        return {i: ev._value for i, ev in enumerate(self._events) if ev.triggered and ev._ok}

    def _on_fire(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired; value is an index→value dict."""

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._values())


class AnyOf(_Condition):
    """Fires when the first constituent event fires."""

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self.succeed(self._values())
