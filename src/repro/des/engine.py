"""Event loop for the discrete-event kernel.

The :class:`Engine` owns simulated time and a heap of pending
:class:`Event` objects.  Events carry callback lists; processes
(:mod:`repro.des.process`) are built on top of events.  The loop is
deterministic: events scheduled at the same time fire in ``(priority,
insertion order)``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

#: Priority constants — lower fires first at equal timestamps.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LATE = 2


class SimulationError(RuntimeError):
    """Raised on kernel misuse (e.g. scheduling into the past)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.des.process.Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, may be *scheduled* (given a fire time), and
    finally *fires*, invoking its callbacks with itself as argument.  Events
    can succeed with a value or fail with an exception; a failed event whose
    failure is never consumed raises at fire time so errors do not pass
    silently.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_scheduled", "_fired", "_defused")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._fired = False
        self._defused = False

    # -- state -----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (scheduled to fire)."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._fired

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event has not been triggered")
        return self._value

    def defuse(self) -> None:
        """Mark a failure as handled so the kernel will not re-raise it."""
        self._defused = True

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0, priority: int = PRIORITY_NORMAL) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        self._trigger(True, value, delay, priority)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0, priority: int = PRIORITY_NORMAL) -> "Event":
        """Schedule this event to fire as a failure carrying ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(False, exception, delay, priority)
        return self

    def _trigger(self, ok: bool, value: Any, delay: float, priority: int) -> None:
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._ok = ok
        self._value = value
        self.engine._schedule(self, delay, priority)
        self._scheduled = True

    def _fire(self) -> None:
        self._fired = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)
        if not self._ok and not self._defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self._fired else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Engine:
    """Discrete-event simulation engine.

    Examples
    --------
    >>> eng = Engine()
    >>> seen = []
    >>> def hello():
    ...     yield eng.timeout(5.0)
    ...     seen.append(eng.now)
    >>> _ = eng.process(hello())
    >>> eng.run()
    >>> seen
    [5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list = []
        self._counter = itertools.count()
        self._active = 0  # scheduled-but-unfired events

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        ev = Event(self)
        ev.succeed(value, delay=delay)
        return ev

    def process(self, generator) -> "Process":
        """Start a generator as a simulation process (see :class:`Process`)."""
        from repro.des.process import Process

        return Process(self, generator)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int = PRIORITY_NORMAL) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._counter), event))
        self._active += 1

    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Fire the single next event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        time, _prio, _seq, event = heapq.heappop(self._queue)
        self._active -= 1
        if time < self._now:  # pragma: no cover - heap invariant guards this
            raise SimulationError("event queue corrupted: time moved backwards")
        self._now = time
        event._fire()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``.

        When ``until`` is given, the clock is advanced exactly to ``until``
        even if the last event fires earlier, so monitors see a full window.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        while self._queue:
            if until is not None and self.peek() > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, float(until))
