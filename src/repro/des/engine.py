"""Event loop for the discrete-event kernel.

The :class:`Engine` owns simulated time and a heap of pending
:class:`Event` objects.  Events carry callback lists; processes
(:mod:`repro.des.process`) are built on top of events.  The loop is
deterministic: events scheduled at the same time fire in ``(priority,
insertion order)``.

Fast path (million-client fleets)
---------------------------------
Four mechanisms keep the per-event constant factor down without changing
any observable semantics:

* **Batched run loop** — :meth:`Engine.run` pops and fires events in one
  tight loop with the heap and bound methods held in locals, instead of
  paying a ``peek()``/``step()`` method-dispatch round trip per event.
  The loop is *specialized once per call*: the pool and clock-check
  branches are hoisted out of the event loop by selecting one of three
  loop variants up front, so the common configuration pays zero dead
  conditionals per event (guarded by ``benchmarks/test_engine_fastpath``).
* **Calendar-queue backend** — ``Engine(queue="wheel")`` swaps the binary
  heap for the :class:`repro.des.wheel.CalendarQueue`, an O(1)-amortized
  bucketed event list.  Pop order is the identical ``(time, priority,
  seq)`` total order, so traces hash equal between backends; the heap
  stays the default (lowest constant for small queues).
* **Lazy cancellation** — :meth:`Event.cancel` marks a scheduled event
  dead; the run loop discards it on pop.  This replaces O(n) removal from
  the heap (or from long callback lists) for abandoned timeouts.
* **Timeout slab/pool** — with ``Engine(pool_timeouts=True)``, fired
  :class:`Timeout` objects with no remaining listeners are recycled
  through a free list, so a fleet simulation allocates O(live processes)
  timeout objects rather than O(total events).  Pooling is opt-in because
  code that holds a reference to a fired timeout and inspects it later
  would observe the recycled (re-armed) state; the fleet simulators never
  do (timeouts are always ``yield``-ed and dropped).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

#: Priority constants — lower fires first at equal timestamps.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LATE = 2


class SimulationError(RuntimeError):
    """Raised on kernel misuse (e.g. scheduling into the past)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.des.process.Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, may be *scheduled* (given a fire time), and
    finally *fires*, invoking its callbacks with itself as argument.  Events
    can succeed with a value or fail with an exception; a failed event whose
    failure is never consumed raises at fire time so errors do not pass
    silently.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_scheduled", "_fired", "_defused", "_cancelled")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._fired = False
        self._defused = False
        self._cancelled = False

    # -- state -----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (scheduled to fire)."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._fired

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event has not been triggered")
        return self._value

    def defuse(self) -> None:
        """Mark a failure as handled so the kernel will not re-raise it."""
        self._defused = True

    @property
    def cancelled(self) -> bool:
        """True once the event has been lazily cancelled."""
        return self._cancelled

    def cancel(self) -> None:
        """Lazily cancel a scheduled event: it will never fire.

        The heap entry stays in place and is discarded when popped — O(1)
        instead of an O(n) heap removal.  Cancelling an already-fired event
        is a kernel misuse error; cancelling twice is a no-op.
        """
        if self._fired:
            raise SimulationError("cannot cancel an event that already fired")
        self._cancelled = True

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0, priority: int = PRIORITY_NORMAL) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        self._trigger(True, value, delay, priority)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0, priority: int = PRIORITY_NORMAL) -> "Event":
        """Schedule this event to fire as a failure carrying ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(False, exception, delay, priority)
        return self

    def _trigger(self, ok: bool, value: Any, delay: float, priority: int) -> None:
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._ok = ok
        self._value = value
        self.engine._schedule(self, delay, priority)
        self._scheduled = True

    def _fire(self) -> None:
        self._fired = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)
        if not self._ok and not self._defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self._fired else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """A pre-triggered delay event (the kernel's hottest allocation).

    Construction bypasses the generic :meth:`Event._trigger` guard chain —
    a fresh timeout cannot already be triggered — and schedules directly.
    Instances may be recycled through the engine's slab when pooling is on
    (see :meth:`Engine.timeout`).
    """

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        # Deliberately does not call Event.__init__/succeed: one attribute
        # sweep plus one heap push is the whole construction.
        self.engine = engine
        self.callbacks = []
        self._value = value
        self._ok = True
        self._scheduled = True
        self._fired = False
        self._defused = False
        self._cancelled = False
        engine._schedule(self, delay)

    def _rearm(self, delay: float, value: Any) -> None:
        """Reset a recycled instance and schedule it again (pool path)."""
        self.callbacks = []
        self._value = value
        self._ok = True
        self._scheduled = True
        self._fired = False
        self._defused = False
        self._cancelled = False
        self.engine._schedule(self, delay)


class Engine:
    """Discrete-event simulation engine.

    Examples
    --------
    >>> eng = Engine()
    >>> seen = []
    >>> def hello():
    ...     yield eng.timeout(5.0)
    ...     seen.append(eng.now)
    >>> _ = eng.process(hello())
    >>> eng.run()
    >>> seen
    [5.0]
    """

    __slots__ = (
        "_now",
        "_queue",
        "_wheel",
        "_counter",
        "_active",
        "_pool",
        "_pool_timeouts",
        "_pool_cap",
        "_check_clock",
        "events_fired",
    )

    def __init__(
        self,
        start_time: float = 0.0,
        pool_timeouts: bool = False,
        pool_cap: int = 4096,
        check_clock: bool = False,
        queue: str = "heap",
    ) -> None:
        self._now = float(start_time)
        if queue == "heap":
            self._wheel = False
            self._queue: list = []
        elif queue == "wheel":
            from repro.des.wheel import CalendarQueue

            self._wheel = True
            self._queue = CalendarQueue(start_time=self._now)
        else:
            raise ValueError(f"unknown queue backend {queue!r} (heap|wheel)")
        # Monotonic insertion counter (tie-break at equal time+priority).  A
        # plain int rather than itertools.count so the full scheduling state
        # is a value: repro.resilience.snapshot serializes and restores it
        # exactly, keeping resumed tie-breaks identical to uninterrupted ones.
        self._counter = 0
        self._active = 0  # scheduled-but-unfired events
        self._pool: list = []  # recycled Timeout slab (pool_timeouts=True)
        self._pool_timeouts = bool(pool_timeouts)
        self._pool_cap = int(pool_cap)
        self._check_clock = bool(check_clock)
        #: Cumulative heap pops across run()/step() calls (observability;
        #: updated once per run() call, not per event).
        self.events_fired = 0

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def queue_kind(self) -> str:
        """The event-queue backend: ``"heap"`` or ``"wheel"``."""
        return "wheel" if self._wheel else "heap"

    @property
    def drained(self) -> bool:
        """True when no events remain (cancelled entries count as present).

        The invariant layer uses this after a run: a fleet simulation that
        leaves live events behind terminated early, which would silently
        truncate every ledger.
        """
        return not self._queue

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires after ``delay`` simulated seconds.

        With ``pool_timeouts=True`` the instance may come from the recycle
        slab instead of a fresh allocation.
        """
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        if self._pool:
            ev = self._pool.pop()
            ev._rearm(delay, value)
            return ev
        return Timeout(self, delay, value)

    def process(self, generator) -> "Process":
        """Start a generator as a simulation process (see :class:`Process`)."""
        from repro.des.process import Process

        return Process(self, generator)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int = PRIORITY_NORMAL) -> None:
        seq = self._counter
        self._counter = seq + 1
        if self._wheel:
            self._queue.push((self._now + delay, priority, seq, event))
        else:
            heapq.heappush(self._queue, (self._now + delay, priority, seq, event))
        self._active += 1

    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the queue is empty.

        May name a lazily-cancelled event: cancellations are only resolved
        when the entry is popped.
        """
        if self._wheel:
            return self._queue.min_time()
        return self._queue[0][0] if self._queue else float("inf")

    def pending_entries(self) -> tuple:
        """Heap-ordered snapshot view of the scheduled entries.

        Each entry is ``(time, priority, seq, event)`` in the internal heap
        order (a valid binary heap, *not* fire order); lazily-cancelled
        events are still present.  For the wheel backend the entries come
        fully sorted ascending — which is also a valid binary heap.  This
        is the read side of the checkpoint/restore protocol in
        :mod:`repro.resilience.snapshot` — restoring the tuple list
        verbatim reproduces pop order exactly.
        """
        if self._wheel:
            return self._queue.sorted_entries()
        return tuple(self._queue)

    def _pop_entry(self):
        """Pop the minimum entry from whichever backend is active."""
        if self._wheel:
            return self._queue.pop()
        return heapq.heappop(self._queue)

    def step(self) -> None:
        """Fire the single next (non-cancelled) event."""
        while True:
            if not self._queue:
                raise SimulationError("step() on an empty event queue")
            time, _prio, _seq, event = self._pop_entry()
            self._active -= 1
            self.events_fired += 1
            if event._cancelled:
                continue
            if time < self._now:  # pragma: no cover - heap invariant guards this
                raise SimulationError("event queue corrupted: time moved backwards")
            self._now = time
            event._fire()
            return

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``.

        When ``until`` is given, the clock is advanced exactly to ``until``
        even if the last event fires earlier, so monitors see a full window.

        This is the batched fast path: the queue, the pop, and the recycle
        slab are bound to locals so each event costs one tuple unpack and
        one ``_fire`` call, with no per-event property or method dispatch.
        The per-event pool and clock-check conditionals are hoisted out of
        the loop entirely: ``run`` picks one of three specialized loops up
        front (pooled, plain, checked), so the common configuration runs a
        branch-free event loop.  With ``check_clock=True`` every pop
        additionally asserts the fire time never precedes the clock
        (paranoid mode for the validation subsystem).
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        bound = float("inf") if until is None else until
        if self._wheel:
            self._run_wheel(bound)
        elif self._check_clock:
            self._run_heap_checked(bound)
        elif self._pool_timeouts:
            self._run_heap_pooled(bound)
        else:
            self._run_heap_plain(bound)
        if until is not None:
            self._now = max(self._now, float(until))

    def _run_heap_pooled(self, bound: float) -> None:
        """Heap backend, timeout pooling on, no clock checks (fleet config)."""
        queue = self._queue
        pop = heapq.heappop
        pool = self._pool
        pool_cap = self._pool_cap
        fired = 0
        try:
            while queue:
                if queue[0][0] > bound:
                    break
                time, _prio, _seq, event = pop(queue)
                fired += 1
                if event._cancelled:
                    if type(event) is Timeout and len(pool) < pool_cap:
                        pool.append(event)
                    continue
                self._now = time
                event._fire()
                if (
                    type(event) is Timeout
                    and not event.callbacks
                    and len(pool) < pool_cap
                ):
                    pool.append(event)
        finally:
            self._active -= fired
            self.events_fired += fired

    def _run_heap_plain(self, bound: float) -> None:
        """Heap backend, no pooling, no clock checks."""
        queue = self._queue
        pop = heapq.heappop
        fired = 0
        try:
            while queue:
                if queue[0][0] > bound:
                    break
                time, _prio, _seq, event = pop(queue)
                fired += 1
                if event._cancelled:
                    continue
                self._now = time
                event._fire()
        finally:
            self._active -= fired
            self.events_fired += fired

    def _run_heap_checked(self, bound: float) -> None:
        """Heap backend with the paranoid per-event clock assertion."""
        queue = self._queue
        pop = heapq.heappop
        pool = self._pool if self._pool_timeouts else None
        pool_cap = self._pool_cap
        fired = 0
        try:
            while queue:
                if queue[0][0] > bound:
                    break
                time, _prio, _seq, event = pop(queue)
                fired += 1
                if time < self._now:
                    raise SimulationError(
                        f"event queue corrupted: time moved backwards ({time} < {self._now})"
                    )
                if event._cancelled:
                    if pool is not None and type(event) is Timeout and len(pool) < pool_cap:
                        pool.append(event)
                    continue
                self._now = time
                event._fire()
                if (
                    pool is not None
                    and type(event) is Timeout
                    and not event.callbacks
                    and len(pool) < pool_cap
                ):
                    pool.append(event)
        finally:
            self._active -= fired
            self.events_fired += fired

    def _run_wheel(self, bound: float) -> None:
        """Calendar-queue backend.

        The wheel cannot peek cheaply, so the loop pops first and pushes
        an over-the-bound entry straight back — the entry keeps its
        original ``seq``, so its eventual pop position is unchanged.
        """
        queue = self._queue
        pop = queue.pop
        push = queue.push
        pool = self._pool if self._pool_timeouts else None
        pool_cap = self._pool_cap
        check_clock = self._check_clock
        fired = 0
        try:
            while queue._size:
                entry = pop()
                time = entry[0]
                if time > bound:
                    push(entry)
                    break
                event = entry[3]
                fired += 1
                if check_clock and time < self._now:
                    raise SimulationError(
                        f"event queue corrupted: time moved backwards ({time} < {self._now})"
                    )
                if event._cancelled:
                    if pool is not None and type(event) is Timeout and len(pool) < pool_cap:
                        pool.append(event)
                    continue
                self._now = time
                event._fire()
                if (
                    pool is not None
                    and type(event) is Timeout
                    and not event.callbacks
                    and len(pool) < pool_cap
                ):
                    pool.append(event)
        finally:
            self._active -= fired
            self.events_fired += fired
