"""Time-series probes for DES runs.

:class:`Monitor` records ``(time, value)`` samples; :class:`StateTimeline`
records piecewise-constant state (e.g. a device's power state) and can
integrate a per-state weight over time — which is exactly how per-device
energy is computed from a power-state timeline.  :class:`EventLog` records
discrete tagged events (fault onsets, retries, failovers) for post-run
forensics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np


class Monitor:
    """Append-only ``(time, value)`` recorder with array export."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(f"monitor {self.name!r}: time went backwards ({time} < {self._times[-1]})")
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` as float arrays."""
        return np.asarray(self._times), np.asarray(self._values)

    def mean(self) -> float:
        if not self._values:
            raise ValueError("empty monitor")
        return float(np.mean(self._values))

    def integrate(self) -> float:
        """Trapezoidal integral of value over time."""
        t, v = self.arrays()
        if t.size < 2:
            return 0.0
        return float(np.trapezoid(v, t))


@dataclass(frozen=True)
class LoggedEvent:
    """One discrete occurrence: ``kind`` at ``time`` with free-form detail."""

    time: float
    kind: str
    detail: Dict[str, object] = field(default_factory=dict)


class EventLog:
    """Append-only log of tagged events in non-decreasing time order.

    Used by the fault subsystem to record outage onsets/repairs, retries,
    failovers and fallbacks; generic enough for any discrete annotation a
    DES run wants to keep alongside its numeric monitors.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._events: List[LoggedEvent] = []

    def record(self, time: float, kind: str, **detail: object) -> LoggedEvent:
        if self._events and time < self._events[-1].time:
            raise ValueError(
                f"event log {self.name!r}: time went backwards "
                f"({time} < {self._events[-1].time})"
            )
        ev = LoggedEvent(float(time), kind, dict(detail))
        self._events.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    @property
    def events(self) -> List[LoggedEvent]:
        return list(self._events)

    def of_kind(self, kind: str) -> List[LoggedEvent]:
        """Events of one kind, in order."""
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for e in self._events if e.kind == kind)

    def kinds(self) -> List[str]:
        """Distinct kinds seen, sorted."""
        return sorted({e.kind for e in self._events})


class StateTimeline:
    """Piecewise-constant state recorder with weighted time integration.

    Typical use: record power-state transitions for a device, then call
    :meth:`integrate` with a ``state -> watts`` map to get joules.
    """

    def __init__(self, initial_state: str, start_time: float = 0.0) -> None:
        self._times: List[float] = [float(start_time)]
        self._states: List[str] = [initial_state]
        self._closed_at: Optional[float] = None

    @property
    def state(self) -> str:
        return self._states[-1]

    def transition(self, time: float, state: str) -> None:
        """Enter ``state`` at ``time``."""
        if self._closed_at is not None:
            raise ValueError("timeline is closed")
        if time < self._times[-1]:
            raise ValueError(f"time went backwards ({time} < {self._times[-1]})")
        if state == self._states[-1]:
            return  # no-op transition; keep timeline minimal
        self._times.append(float(time))
        self._states.append(state)

    def close(self, time: float) -> None:
        """Fix the end of the observation window."""
        if time < self._times[-1]:
            raise ValueError(f"close time {time} precedes last transition {self._times[-1]}")
        self._closed_at = float(time)

    def durations(self, end_time: Optional[float] = None) -> Dict[str, float]:
        """Total time spent per state up to ``end_time`` (or close time)."""
        end = self._resolve_end(end_time)
        out: Dict[str, float] = {}
        for i, state in enumerate(self._states):
            t0 = self._times[i]
            t1 = self._times[i + 1] if i + 1 < len(self._times) else end
            t1 = min(t1, end)
            if t1 > t0:
                out[state] = out.get(state, 0.0) + (t1 - t0)
        return out

    def integrate(self, weights: Dict[str, float], end_time: Optional[float] = None) -> float:
        """Integrate per-state ``weights`` (e.g. watts) over the timeline.

        Raises ``KeyError`` if a visited state has no weight — silent zeros
        would hide calibration gaps.
        """
        total = 0.0
        for state, dt in self.durations(end_time).items():
            total += weights[state] * dt
        return total

    def segments(self, end_time: Optional[float] = None) -> List[Tuple[float, float, str]]:
        """Return ``(t_start, t_end, state)`` triples."""
        end = self._resolve_end(end_time)
        segs = []
        for i, state in enumerate(self._states):
            t0 = self._times[i]
            t1 = self._times[i + 1] if i + 1 < len(self._times) else end
            t1 = min(t1, end)
            if t1 > t0:
                segs.append((t0, t1, state))
        return segs

    def _resolve_end(self, end_time: Optional[float]) -> float:
        if end_time is not None:
            return float(end_time)
        if self._closed_at is not None:
            return self._closed_at
        return self._times[-1]
