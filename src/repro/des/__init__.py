"""Minimal discrete-event simulation (DES) kernel.

The paper's large-scale study (§VI) uses a cycle-level analytic model; this
package provides an event-driven counterpart used to *cross-validate* the
analytic simulator in :mod:`repro.core.dessim` and to model phenomena the
analytic model abstracts away (asynchronous wake-ups, battery depletion
mid-cycle, per-event energy ledgers).

Design: a binary-heap event queue ordered by ``(time, priority, sequence)``
(sequence breaks ties FIFO, which makes runs deterministic), generator-based
processes in the style of SimPy, and capacity-limited resources for server
time slots.
"""

from repro.des.engine import Engine, Event, Interrupt, SimulationError
from repro.des.process import Process, Timeout, Wait, AllOf, AnyOf
from repro.des.resources import Resource, Store, PriorityResource
from repro.des.monitor import EventLog, LoggedEvent, Monitor, StateTimeline

__all__ = [
    "EventLog",
    "LoggedEvent",
    "Engine",
    "Event",
    "Interrupt",
    "SimulationError",
    "Process",
    "Timeout",
    "Wait",
    "AllOf",
    "AnyOf",
    "Resource",
    "Store",
    "PriorityResource",
    "Monitor",
    "StateTimeline",
]
