"""Capacity-limited resources for the DES kernel.

:class:`Resource` models a pool of identical capacity units (used for server
time-slot admission), :class:`PriorityResource` serves lower priorities first,
and :class:`Store` is an unbounded FIFO of Python objects (used for message
queues between edge devices and servers).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Deque, List

from repro.des.engine import Engine, Event, SimulationError


class Resource:
    """A pool with ``capacity`` units; requests beyond capacity queue FIFO.

    Usage inside a process::

        req = resource.request()
        yield req
        try:
            yield engine.timeout(service_time)
        finally:
            resource.release(req)
    """

    def __init__(self, engine: Engine, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = int(capacity)
        self._in_use = 0
        self._waiting: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> Event:
        """Return an event that fires when a unit is granted."""
        ev = self.engine.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiting.append(ev)
        return ev

    def release(self, request: Event) -> None:
        """Return a granted unit to the pool."""
        if not request.triggered:
            # Cancel a queued request instead.
            try:
                self._waiting.remove(request)
                return
            except ValueError:
                raise SimulationError("release() of a request that was never granted or queued")
        if self._in_use <= 0:
            raise SimulationError("release() with no units in use")
        if self._waiting:
            nxt = self._waiting.popleft()
            nxt.succeed(self)  # unit transfers directly to the next requester
        else:
            self._in_use -= 1


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is ordered by ``priority`` (low first)."""

    def __init__(self, engine: Engine, capacity: int = 1) -> None:
        super().__init__(engine, capacity)
        self._heap: List[tuple] = []
        self._counter = itertools.count()

    @property
    def queue_length(self) -> int:
        return len(self._heap)

    def request(self, priority: int = 0) -> Event:  # type: ignore[override]
        ev = self.engine.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            heapq.heappush(self._heap, (priority, next(self._counter), ev))
        return ev

    def release(self, request: Event) -> None:  # type: ignore[override]
        if not request.triggered:
            for i, (_, _, ev) in enumerate(self._heap):
                if ev is request:
                    self._heap.pop(i)
                    heapq.heapify(self._heap)
                    return
            raise SimulationError("release() of a request that was never granted or queued")
        if self._in_use <= 0:
            raise SimulationError("release() with no units in use")
        if self._heap:
            _, _, nxt = heapq.heappop(self._heap)
            nxt.succeed(self)
        else:
            self._in_use -= 1


class Store:
    """Unbounded FIFO store of items; ``get`` blocks until an item exists."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = self.engine.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev
