"""Experiment registry: id → runner.

``REGISTRY`` holds the paper's tables and figures; ``EXTENSIONS`` holds the
future-work extensions (adaptive duty cycling, contention-derived loss B,
heterogeneous fleets, training-phase pricing).  The CLI exposes both.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments import (
    ext_adaptive,
    ext_contention,
    ext_faults,
    ext_mixed,
    ext_outage,
    ext_policies,
    ext_serve,
    ext_serve_faults,
    ext_training,
    fig2_trace,
    fig3_frequency,
    fig5_imagesize,
    fig6_ideal,
    fig7_crossover,
    fig8_losses,
    fig9_loss_crossover,
    table1_edge,
    table2_edgecloud,
)
from repro.experiments.report import ExperimentResult

#: The paper's evaluation artifacts.
REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    "fig2": fig2_trace.run,
    "fig3": fig3_frequency.run,
    "fig5": fig5_imagesize.run,
    "fig6": fig6_ideal.run,
    "fig7": fig7_crossover.run,
    "fig8": fig8_losses.run,
    "fig9": fig9_loss_crossover.run,
    "table1": table1_edge.run,
    "table2": table2_edgecloud.run,
}

#: Future-work extensions (not paper artifacts).
EXTENSIONS: Dict[str, Callable[..., ExperimentResult]] = {
    "ext-adaptive": ext_adaptive.run,
    "ext-contention": ext_contention.run,
    "ext-faults": ext_faults.run,
    "ext-mixed": ext_mixed.run,
    "ext-outage": ext_outage.run,
    "ext-policies": ext_policies.run,
    "ext-serve": ext_serve.run,
    "ext-serve-faults": ext_serve_faults.run,
    "ext-training": ext_training.run,
}


def experiment_ids(include_extensions: bool = False) -> List[str]:
    """Registered experiment ids, paper artifacts first."""
    ids = list(REGISTRY)
    if include_extensions:
        ids += list(EXTENSIONS)
    return ids


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment (paper artifact or extension) by id."""
    runner = REGISTRY.get(experiment_id) or EXTENSIONS.get(experiment_id)
    if runner is None:
        known = ", ".join(experiment_ids(include_extensions=True))
        raise KeyError(f"unknown experiment {experiment_id!r} (known: {known})")
    return runner(**kwargs)
