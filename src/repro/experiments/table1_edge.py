"""Table I: per-task time and energy of the edge scenario (SVM and CNN).

Rebuilds the two five-row breakdowns from the calibrated task models and
checks the totals against the published 366.3 J / 367.5 J per 300-second
cycle.
"""

from __future__ import annotations

from repro.core.calibration import CYCLE_SECONDS, PAPER, PaperConstants, table1_rows
from repro.core.routines import make_scenario
from repro.core.tasks import TaskSequence
from repro.experiments.report import ExperimentResult


def run(constants: PaperConstants = PAPER) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table1",
        title="Edge scenario task breakdown (per 5-minute cycle)",
    )
    paper_totals = {"svm": constants.edge_svm_total_j, "cnn": constants.edge_cnn_total_j}
    for model in ("svm", "cnn"):
        seq = TaskSequence(f"Edge ({model.upper()})", table1_rows(model, constants))
        result.tables.append(seq.render())
        result.compare(
            f"edge ({model}) total energy (J)", paper_totals[model], seq.total_energy, tolerance_pct=0.5
        )
        result.compare(
            f"edge ({model}) total time (s)", CYCLE_SECONDS, seq.total_duration, tolerance_pct=0.5
        )
        # Cross-check: the scenario's derived cycle energy (sleep as residual
        # at 0.625 W) reproduces the explicit table total.
        scenario = make_scenario("edge", model, constants=constants)
        result.compare(
            f"edge ({model}) derived cycle energy (J)",
            paper_totals[model],
            scenario.client.cycle_energy,
            tolerance_pct=0.5,
        )
    return result
