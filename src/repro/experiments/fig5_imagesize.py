"""Figure 5: CNN inference energy and model accuracy vs image size.

Energy: FLOPs of ResNet-18 counted at each input size, converted through an
inference-cost model calibrated to the paper's measured anchor (100×100 →
37.6 s / 94.8 J on the Pi 3b+).  Convolutional FLOPs scale with pixel count,
reproducing the quadratic energy growth in side length.

Accuracy: classifiers trained on the synthetic queen corpus with mel
spectrograms resized to each size.  The class cue is narrow in frequency,
so small images blur it away and accuracy climbs with size before
saturating — the paper picks 100×100 as the knee (99 % accuracy).  The
default accuracy backend is the SVM on flattened images (fast); pass
``accuracy_backend='cnn'`` to train the miniature residual CNN instead.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.audio.dataset import DatasetSpec, QueenDataset
from repro.core.calibration import PAPER, PaperConstants
from repro.dsp.image import spectrogram_to_image
from repro.dsp.spectrogram import MelSpectrogram, SpectrogramConfig
from repro.experiments.report import ExperimentResult
from repro.ml.nn.flops import InferenceCostModel, count_flops
from repro.ml.nn.resnet import resnet18, small_cnn
from repro.ml.nn.train import TrainConfig, Trainer
from repro.ml.scaler import StandardScaler
from repro.ml.svm import SVC
from repro.ml.split import train_test_split
from repro.util.tabulate import render_table

#: Image side lengths swept by default (the paper sweeps up to >200 px).
DEFAULT_SIZES = (20, 40, 60, 100, 140, 180, 220)


def energy_curve(
    sizes: Sequence[int],
    constants: PaperConstants = PAPER,
    fixed_overhead_s: float = 5.0,
):
    """(seconds, joules) arrays for ResNet-18 inference at each input size.

    ``fixed_overhead_s`` models interpreter/model-load time that does not
    scale with the input (the paper's curve has a non-zero floor).
    """
    model = resnet18(in_channels=1)
    anchor_flops = count_flops(model, (1, constants.cnn_image_size, constants.cnn_image_size))
    active_watts = constants.cnn_edge_j / constants.cnn_edge_s
    cost = InferenceCostModel.calibrate(
        anchor_flops=anchor_flops,
        anchor_seconds=constants.cnn_edge_s,
        active_watts=active_watts,
        fixed_overhead_s=fixed_overhead_s,
    )
    seconds = []
    joules = []
    for s in sizes:
        f = count_flops(model, (1, int(s), int(s)))
        t, e = cost.cost(f)
        seconds.append(t)
        joules.append(e)
    return np.asarray(seconds), np.asarray(joules)


def accuracy_curve(
    sizes: Sequence[int],
    dataset_spec: Optional[DatasetSpec] = None,
    accuracy_backend: str = "svm",
    seed: int = 5,
):
    """Test accuracy of the queen classifier at each image size."""
    spec = dataset_spec or DatasetSpec.small(n_samples=160, clip_duration=2.0, seed=seed)
    mel = MelSpectrogram(SpectrogramConfig(sample_rate=spec.sample_rate))
    dataset = QueenDataset(spec)
    # Extract the full-resolution dB spectrogram once per clip; resizing per
    # size reuses it (the expensive STFT happens a single time per clip).
    specs, labels = dataset.features(mel.db)

    accuracies = []
    for size in sizes:
        size = int(size)
        images = np.stack([spectrogram_to_image(s, size) for s in specs])
        if accuracy_backend == "svm":
            X = images.reshape(images.shape[0], -1)
            Xtr, Xte, ytr, yte = train_test_split(X, labels, test_fraction=0.3, seed=seed)
            scaler = StandardScaler()
            Xtr = scaler.fit_transform(Xtr)
            Xte = scaler.transform(Xte)
            clf = SVC(C=20.0, kernel="rbf", gamma="scale", seed=seed)
            clf.fit(Xtr, ytr)
            accuracies.append(clf.score(Xte, yte))
        elif accuracy_backend == "cnn":
            X = images[:, None, :, :]
            Xtr, Xte, ytr, yte = train_test_split(X, labels, test_fraction=0.3, seed=seed)
            model = small_cnn(num_classes=2, in_channels=1, seed=seed)
            trainer = Trainer(model, TrainConfig(epochs=4, lr=0.01, batch_size=16, seed=seed))
            trainer.fit(Xtr, ytr)
            accuracies.append(trainer.evaluate(Xte, yte))
        else:
            raise ValueError(f"accuracy_backend must be 'svm' or 'cnn', got {accuracy_backend!r}")
    return np.asarray(accuracies)


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    dataset_spec: Optional[DatasetSpec] = None,
    accuracy_backend: str = "svm",
    seed: int = 5,
    constants: PaperConstants = PAPER,
) -> ExperimentResult:
    sizes = tuple(int(s) for s in sizes)
    seconds, joules = energy_curve(sizes, constants)
    accuracies = accuracy_curve(sizes, dataset_spec, accuracy_backend, seed)

    result = ExperimentResult(
        experiment_id="fig5",
        title="CNN energy and accuracy vs image size",
        description=f"sizes {sizes}, accuracy backend: {accuracy_backend}",
    )
    result.add_series("image_size_px", np.asarray(sizes))
    result.add_series("inference_seconds", seconds)
    result.add_series("inference_joules", joules)
    result.add_series("accuracy", accuracies)
    result.tables.append(
        render_table(
            ["Size (px)", "Inference (s)", "Energy (J)", "Accuracy"],
            list(zip(sizes, seconds, joules, accuracies)),
            formats=["d", ".1f", ".1f", ".3f"],
            title="Figure 5 reproduction",
        )
    )

    if constants.cnn_image_size in sizes:
        i100 = sizes.index(constants.cnn_image_size)
        result.compare("inference time @100 px (s)", constants.cnn_edge_s, seconds[i100], tolerance_pct=1.0)
        result.compare("inference energy @100 px (J)", constants.cnn_edge_j, joules[i100], tolerance_pct=1.0)
        result.compare("accuracy @>=100 px", constants.cnn_accuracy_at_100, float(np.max(accuracies[i100:])),
                       tolerance_pct=6.0)
    # Quadratic scaling in side length: the variable energy (above the fixed
    # overhead) should scale roughly with the pixel count.
    if len(sizes) >= 2:
        overhead_j = joules[0] - (joules[1] - joules[0]) * sizes[0] ** 2 / (sizes[1] ** 2 - sizes[0] ** 2)
        ratio = (joules[-1] - overhead_j) / max(joules[0] - overhead_j, 1e-9)
        pixel_ratio = sizes[-1] ** 2 / sizes[0] ** 2
        result.compare(
            f"variable-energy ratio {sizes[-1]}px/{sizes[0]}px (≈ pixel ratio)",
            pixel_ratio,
            ratio,
            tolerance_pct=35.0,
        )
    result.notes.append(
        "energy vs size: " + ", ".join(f"{s}px:{j:.0f}J" for s, j in zip(sizes, joules))
    )
    # Accuracy rises with size before saturating (the paper's knee shape).
    result.notes.append(
        f"accuracy gain smallest→largest size: {accuracies[-1] - accuracies[0]:+.3f} "
        "(paper: converges at 100 px)"
    )
    return result
