"""Figure 3: average consumed power vs wake-up frequency.

The Pi 3b+ runs one data-collection routine per period and sleeps in
between; the average power is maximal at the 5-minute period (paper:
1.19 W) and converges toward the sleep power (paper: 0.62 W) as the period
grows.
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import PAPER, PaperConstants
from repro.core.client import average_power_for_period
from repro.experiments.report import ExperimentResult
from repro.util.tabulate import render_table
from repro.util.units import MINUTE


def run(constants: PaperConstants = PAPER) -> ExperimentResult:
    """Evaluate the §IV duty-cycle power model across the paper's periods."""
    periods = np.asarray(constants.wakeup_periods_s)
    powers = np.asarray([average_power_for_period(p, constants) for p in periods])

    result = ExperimentResult(
        experiment_id="fig3",
        title="Average consumed power vs wake-up frequency",
        description=(
            "One calibrated routine (89 s, 190.1 J) plus boot surge per period, "
            "sleep at 0.625 W for the remainder."
        ),
    )
    result.add_series("period_s", periods)
    result.add_series("average_power_w", powers)
    result.tables.append(
        render_table(
            ["Wake-up period (min)", "Average power (W)"],
            [(p / MINUTE, w) for p, w in zip(periods, powers)],
            formats=[".0f", ".3f"],
            title="Figure 3 reproduction",
        )
    )
    result.compare("average power @ 5 min (W)", constants.fig3_power_at_5min_w, powers[0], tolerance_pct=2.0)
    result.compare("converged power @ 120 min (W)", 0.62, powers[-1], tolerance_pct=10.0)
    # Monotone decrease toward the sleep floor.
    result.notes.append(
        f"curve decreases monotonically: {bool(np.all(np.diff(powers) < 0))}; "
        f"floor = sleep power {constants.sleep_watts} W"
    )
    return result
