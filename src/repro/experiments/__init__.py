"""Experiment harness: one module per paper table/figure.

Each experiment module exposes ``run(...) -> ExperimentResult``; the
registry maps experiment ids (``"fig3"``, ``"table1"``, …) to runners so
the CLI and the benchmark suite can drive them uniformly.  Results carry
paper-reported values next to measured values for EXPERIMENTS.md.
"""

from repro.experiments.report import ExperimentResult, Comparison
from repro.experiments.registry import REGISTRY, run_experiment, experiment_ids

__all__ = ["ExperimentResult", "Comparison", "REGISTRY", "run_experiment", "experiment_ids"]
