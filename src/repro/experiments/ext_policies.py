"""Extension experiment: placement-policy comparison across the loss models.

Sweeps every registered :mod:`repro.core.placement` policy over fleet size
× loss model and compares the layouts the paper's first-fit baseline never
explores:

* **server energy** — loss A penalizes saturated slots, so consolidating
  policies (first-fit, best-fit past its soft cap) pay the multiplier on
  more slots than spreading ones (round-robin, balanced, worst-fit);
* **solar alignment** — the occupancy-weighted clear-sky irradiance of the
  slot windows each client lands in; the solar-budget policy fills the
  sunniest windows first by construction;
* **server-count parity** — the pin that budget semantics are
  policy-independent: every policy opens exactly ``ceil(n / capacity)``
  servers, whatever its fill order;
* **online == batch bit-identity** — each policy is driven through a small
  admit/release churn on a :class:`~repro.core.livealloc.LiveAllocation`
  and the end state must equal the batch fold over the survivors (the
  max |Δ| = 0 acceptance pin, as in ``ext-serve``).

Loss model C (random client loss) is deliberately out of the grid: the
comparison is exact and seed-free except for the swarm policy's explicit
pheromone seed.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.calibration import CYCLE_SECONDS, PAPER
from repro.core.losses import LossConfig, SaturationPenalty, TransferTimePenalty
from repro.core.placement import POLICY_KINDS, resolve_policy
from repro.core.server import paper_server
from repro.core.simulate import server_cycle_energy
from repro.energy.solar import clear_sky_irradiance
from repro.experiments.report import ExperimentResult
from repro.util.tabulate import render_table

DEFAULT_FLEET_SIZES = (100, 350, 650)

#: Anchor of slot 0 within the day, matching SolarBudgetPolicy's default:
#: the cycle is assumed to repeat from 06:00 (sunrise) onward.
SLOT_ANCHOR_S = 6.0 * 3600.0


def _loss_grid() -> Tuple[Tuple[str, LossConfig], ...]:
    """The deterministic loss configurations (no loss C — it draws an RNG)."""
    a = SaturationPenalty(PAPER.loss_a_margin, PAPER.loss_a_rate)
    b = TransferTimePenalty(PAPER.loss_b_extra_s_per_client)
    return (
        ("none", LossConfig.none()),
        ("A", LossConfig(saturation=a)),
        ("B", LossConfig(transfer=b)),
        ("A+B", LossConfig(saturation=a, transfer=b)),
    )


def _solar_alignment(policy, n: int, plan) -> float:
    """Occupancy-weighted mean irradiance (W/m²) of the occupied windows.

    Uses the *schedule* slot ordinal from ``policy.place`` (not the
    materialized tuple index, which is compacted for sparse layouts).
    """
    if n == 0:
        return 0.0
    total = 0.0
    for rank in range(n):
        p = policy.place(rank, n, plan)
        mid_s = SLOT_ANCHOR_S + (p.slot + 0.5) * plan.slot_duration
        total += clear_sky_irradiance(mid_s)
    return total / n


def _churn_matches_batch(policy, plan) -> bool:
    """Admit/release churn on a LiveAllocation; end state == batch fold?"""
    from repro.core.livealloc import LiveAllocation

    live = LiveAllocation(plan, policy)
    survivors = []
    for cid in range(60):
        live.admit(cid)
        survivors.append(cid)
    for cid in range(0, 60, 3):
        live.release(cid)
        survivors.remove(cid)
    for cid in range(200, 212):
        live.admit(cid)
        survivors.append(cid)
    live.check()
    batch = policy.allocate(survivors, plan)
    return live.to_allocation().servers == batch.servers


def run(
    fleet_sizes: Sequence[int] = DEFAULT_FLEET_SIZES,
    policies: Sequence[str] = POLICY_KINDS,
    period: float = CYCLE_SECONDS,
    model: str = "svm",
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext-policies",
        title="Placement-policy comparison across fleet sizes and loss models",
        description=(
            "Every placement policy x fleet size x deterministic loss model: "
            "server energy, solar alignment, saturated slots, and the "
            "online == batch bit-identity pin."
        ),
    )
    from repro.core.allocator import Allocator

    server = paper_server(model)
    loss_grid = _loss_grid()
    resolved = {kind: resolve_policy(kind, seed=seed) for kind in policies}

    energy_by_policy: Dict[str, Dict[str, list]] = {
        kind: {label: [] for label, _ in loss_grid} for kind in policies
    }
    alignment_by_policy: Dict[str, list] = {kind: [] for kind in policies}
    rows = []
    all_identical = all(
        _churn_matches_batch(policy, Allocator(server, period, None, policy).plan)
        for policy in resolved.values()
    )
    max_server_spread = 0
    for n in fleet_sizes:
        servers_opened = set()
        for kind in policies:
            policy = resolved[kind]
            point: Dict[str, float] = {}
            for label, losses in loss_grid:
                allocator = Allocator(server, period, losses, policy)
                alloc = allocator.allocate(n)
                energy = sum(
                    server_cycle_energy(
                        server, srv.occupancies, period,
                        allocator.sizing_extra_s, losses,
                    )
                    for srv in alloc.servers
                )
                energy_by_policy[kind][label].append(energy)
                point[label] = energy
                if label == "none":
                    servers_opened.add(alloc.n_servers)
                    point["servers"] = alloc.n_servers
                    point["full_slots"] = sum(
                        1 for srv in alloc.servers
                        for occ in srv.occupancies
                        if occ == allocator.plan.max_parallel
                    )
                    point["alignment"] = _solar_alignment(policy, n, allocator.plan)
            alignment_by_policy[kind].append(point["alignment"])
            rows.append((
                n, kind, int(point["servers"]), point["none"] / 1000.0,
                point["A+B"] / 1000.0, int(point["full_slots"]),
                point["alignment"],
            ))
        max_server_spread = max(max_server_spread, max(servers_opened) - min(servers_opened))

    sizes = np.asarray(fleet_sizes, dtype=float)
    result.add_series("fleet_size", sizes)
    for kind in policies:
        result.add_series(
            f"server_energy_j_none_{kind}",
            np.asarray(energy_by_policy[kind]["none"]),
        )
        result.add_series(
            f"server_energy_j_ab_{kind}",
            np.asarray(energy_by_policy[kind]["A+B"]),
        )
        result.add_series(
            f"solar_alignment_wm2_{kind}", np.asarray(alignment_by_policy[kind])
        )

    result.tables.append(render_table(
        ["Fleet", "Policy", "Servers", "kJ (no loss)", "kJ (A+B)", "Full slots",
         "Solar W/m²"],
        rows,
        formats=["d", None, "d", ".1f", ".1f", "d", ".0f"],
        title="Placement policies: server energy per cycle and solar alignment",
    ))

    # Pin 1: online == batch everywhere (the PR 8 guarantee, per policy).
    result.compare(
        "live churn vs batch allocation, max |Δ| slots",
        paper=0.0,
        measured=0.0 if all_identical else 1.0,
        tolerance_pct=0.0,
    )
    # Pin 2: budget semantics are policy-independent — identical server counts.
    result.compare(
        "server-count spread across policies",
        paper=0.0,
        measured=float(max_server_spread),
        tolerance_pct=0.0,
    )
    # Pin 3: the solar-budget policy tops the alignment ranking at every size.
    solar_best = all(
        alignment_by_policy["solar-budget"][i]
        >= max(alignment_by_policy[k][i] for k in policies)
        for i in range(len(fleet_sizes))
    ) if "solar-budget" in policies else True
    result.compare(
        "solar-budget tops the solar-alignment ranking",
        paper=1.0,
        measured=1.0 if solar_best else 0.0,
        tolerance_pct=0.0,
    )

    # Loss A separates consolidators from spreaders: report the spread.
    if "first-fit" in policies and "worst-fit" in policies:
        ff = energy_by_policy["first-fit"]["A"][-1]
        wf = energy_by_policy["worst-fit"]["A"][-1]
        result.compare(
            "loss-A energy, worst-fit / first-fit at the largest fleet",
            paper=1.0,
            measured=wf / ff if ff else 1.0,
        )
        result.notes.append(
            f"Under loss A at {fleet_sizes[-1]} clients, worst-fit's spread "
            f"layout costs {wf / 1000.0:.1f} kJ/cycle vs first-fit's "
            f"consolidated {ff / 1000.0:.1f} kJ/cycle — saturation "
            "multipliers hit policies that pack slots to the brim."
        )
    result.notes.append(
        "Every policy opened exactly ceil(n / capacity) servers at every "
        "grid point, and every live churn ended bit-identical to its batch "
        "fold — fill order is a free knob, budget and identity are not."
    )
    return result
