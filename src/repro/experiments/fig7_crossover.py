"""Figure 7: end-to-end energy per client, edge vs edge+cloud, 100–2000 clients.

Two server settings (10 and 35 clients per slot) plus the §VI-B headline
statistics: the ≥26-clients/slot tipping capacity, the ~406-client first
crossover at 35/slot, the maximal gap (~12.5 J near 630 clients) and the
permanent crossover (~803 clients).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.calibration import PAPER, PaperConstants
from repro.core.crossover import find_crossover, tipping_max_parallel
from repro.core.parallel import parallel_map
from repro.core.routines import make_scenario
from repro.core.sweep import sweep_clients
from repro.experiments.report import ExperimentResult


def _cloud_setting(args) -> tuple:
    """Worker: sweep one server setting over the full client grid.

    Module-level (picklable) so :func:`repro.core.parallel.parallel_map`
    can fan the two settings out to processes; deterministic, so parallel
    and serial runs are bit-identical.
    """
    model, max_parallel, n_min, n_max, constants = args
    n = np.arange(n_min, n_max + 1)
    cloud = make_scenario("edge+cloud", model, max_parallel=max_parallel, constants=constants)
    sweep = sweep_clients(n, cloud)
    return max_parallel, sweep.total_energy_per_client, sweep.n_servers


def run(
    model: str = "svm",
    n_min: int = 100,
    n_max: int = 2000,
    constants: PaperConstants = PAPER,
    workers: Optional[int] = None,
    checkpoint=None,
) -> ExperimentResult:
    """``checkpoint`` is an optional :class:`repro.resilience.checkpoint.
    RunCheckpoint`: the cloud-settings sweep records per-chunk results
    durably and a resumed run serves completed chunks from the file."""
    edge = make_scenario("edge", model, constants=constants)
    n = np.arange(n_min, n_max + 1)
    edge_sweep = sweep_clients(n, edge)

    result = ExperimentResult(
        experiment_id="fig7",
        title="Edge vs Edge+Cloud end-to-end energy per client",
        description=f"{n_min}..{n_max} clients; server settings: 10 and 35 clients/slot.",
    )
    result.add_series("n_clients", n)
    result.add_series("edge_per_client_j", edge_sweep.total_energy_per_client)

    reports = {}
    settings = [(model, mp, n_min, n_max, constants) for mp in (10, 35)]
    stage = checkpoint.stage("cloud-settings") if checkpoint is not None else None
    for max_parallel, totals, n_servers in parallel_map(
        _cloud_setting, settings, workers=workers, checkpoint=stage
    ):
        result.add_series(f"edge_cloud_per_client_j_p{max_parallel}", totals)
        result.add_series(f"n_servers_p{max_parallel}", n_servers)
        reports[max_parallel] = find_crossover(n, edge_sweep.total_energy_per_client, totals)
        result.tables.append(reports[max_parallel].render() + f"   [max_parallel={max_parallel}]")

    # Headline §VI-B statistics at 35 clients/slot.
    rep35 = reports[35]
    try:
        tip = tipping_max_parallel(edge, make_scenario("edge+cloud", model, constants=constants))
        result.compare("tipping clients/slot", constants.tipping_clients_per_slot, tip,
                       tolerance_pct=10.0)
    except ValueError:
        # True for the CNN service: its 108 J cloud execution alone exceeds
        # the ~45 J edge saving, so no admission cap makes edge+cloud win on
        # total energy — the paper's §VI numbers are SVM-based.
        result.notes.append(
            f"no tipping capacity exists for the {model.upper()} service: the per-client cloud "
            "execution energy alone exceeds the edge-side saving"
        )
    if rep35.first_crossover is not None:
        result.compare("first crossover @35 (clients)", constants.crossover_clients_at_35,
                       rep35.first_crossover, tolerance_pct=10.0)
    if rep35.max_gap_at is not None:
        result.compare("max gap location @35 (clients)", constants.max_gap_clients_at_35,
                       rep35.max_gap_at, tolerance_pct=5.0)
        result.compare("max gap @35 (J/client)", constants.max_gap_j_at_35,
                       rep35.max_gap_j, tolerance_pct=25.0)
    if rep35.permanent_crossover is not None:
        # No tolerance band: the permanent crossover sits on a knife edge —
        # at the 2-to-3-server boundary our curve passes within ~0.1 J/client
        # of the threshold, so sub-percent calibration differences move this
        # point by hundreds of clients (see EXPERIMENTS.md).
        result.compare("permanent crossover @35 (clients)", constants.permanent_crossover_at_35,
                       rep35.permanent_crossover)
        result.notes.append(
            "permanent crossover is knife-edge sensitive: near the 2-server/3-server boundary the "
            "edge+cloud curve passes within ~0.1 J/client of the edge cost, so the paper's 803 and "
            "our measurement differ despite matching curve shapes"
        )
    # At 10/slot edge+cloud should never win (full-server cost 112 J > 44 J headroom).
    rep10 = reports[10]
    result.notes.append(
        f"at 10/slot, edge+cloud wins on {rep10.fraction_cloud_better:.1%} of the grid (paper: never)"
    )
    return result
