"""Extension experiment: the live orchestration service under replayed load.

Sweeps arrival rate × fleet size through :mod:`repro.serve` +
:mod:`repro.loadgen` (in-process, fully deterministic) and reports the
online behaviours the batch simulator cannot show:

* the **saturation knee** — per-hive inference latency is flat while the
  offered rate stays below one request per wake-up cycle (a hive owns one
  slot occurrence per period) and grows without bound beyond it, because
  each extra in-flight request queues a full period behind the previous
  one;
* placement mix and per-request client/server energy under the
  energy-aware edge-vs-cloud decision;
* a bit-identity check: after every replay, the live allocation must equal
  the batch ``Allocator.allocate`` fold over the same surviving client set
  (max |Δ| comparison pinned at 0).
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import CYCLE_SECONDS
from repro.experiments.report import ExperimentResult
from repro.loadgen.arrivals import LoadSpec
from repro.loadgen.replay import replay_in_process
from repro.serve.engine import OrchestrationEngine, ServeConfig
from repro.util.rng import derive_seed
from repro.util.tabulate import render_table

#: Arrival rates as multiples of the cycle rate 1/period; the knee is at 1.
DEFAULT_RATE_MULTIPLES = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0)
DEFAULT_FLEET_SIZES = (16, 64)


def _run_point(
    n_hives: int, rate_hz: float, horizon_s: float, period: float, seed: int
) -> dict:
    """One (fleet size, rate) grid point: replay and summarize."""
    spec = LoadSpec(
        n_hives=n_hives,
        rate_hz=rate_hz,
        horizon_s=horizon_s,
        telemetry_fraction=0.0,  # pure inference load probes the knee directly
        seed=derive_seed(seed, "ext-serve", "hives", n_hives, "rate", f"{rate_hz:.9g}"),
    )
    engine = OrchestrationEngine(ServeConfig(period=period))
    _, report = replay_in_process(spec, engine)
    if report.n_errors:
        raise RuntimeError(
            f"replay errored at n_hives={n_hives} rate={rate_hz:.3g}: "
            f"{report.n_errors} failures"
        )
    batch = engine.allocator.policy.allocate(engine.live.client_ids(), engine.plan)
    live = engine.live.to_allocation()
    latency = engine.latency_report()
    inf = latency.get("inference", {})
    return {
        "n_requests": report.n_requests,
        "cloud": report.placements.get("cloud", 0),
        "edge": report.placements.get("edge", 0),
        "p50_s": inf.get("p50_s", 0.0),
        "p99_s": inf.get("p99_s", 0.0),
        "rps": latency["rps"],
        "batch_identical": batch.servers == live.servers,
    }


def run(
    fleet_sizes=DEFAULT_FLEET_SIZES,
    rate_multiples=DEFAULT_RATE_MULTIPLES,
    horizon_cycles: int = 12,
    period: float = CYCLE_SECONDS,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext-serve",
        title="Live orchestration service under replayed load",
        description=(
            "Seeded open-loop replays against the serving engine across "
            "arrival rate x fleet size; latency knee at one request per cycle."
        ),
    )
    horizon_s = horizon_cycles * period
    base_rate = 1.0 / period
    rows = []
    p50_by_fleet = {n: [] for n in fleet_sizes}
    p99_by_fleet = {n: [] for n in fleet_sizes}
    all_identical = True
    for n_hives in fleet_sizes:
        for mult in rate_multiples:
            point = _run_point(n_hives, mult * base_rate, horizon_s, period, seed)
            all_identical = all_identical and point["batch_identical"]
            p50_by_fleet[n_hives].append(point["p50_s"])
            p99_by_fleet[n_hives].append(point["p99_s"])
            rows.append((
                n_hives, mult, point["n_requests"], point["cloud"], point["edge"],
                point["p50_s"], point["p99_s"],
            ))
    result.add_series("rate_multiple", np.asarray(rate_multiples, dtype=float))
    for n_hives in fleet_sizes:
        result.add_series(f"p50_latency_s_{n_hives}", np.asarray(p50_by_fleet[n_hives]))
        result.add_series(f"p99_latency_s_{n_hives}", np.asarray(p99_by_fleet[n_hives]))
    result.tables.append(render_table(
        ["Hives", "Rate (x 1/period)", "Requests", "Cloud", "Edge", "p50 (s)", "p99 (s)"],
        rows,
        formats=["d", ".2f", "d", "d", "d", ".1f", ".1f"],
        title="Inference latency under open-loop load (saturation knee at 1.0)",
    ))

    # The acceptance pin: live allocation == batch fold, everywhere on the grid.
    result.compare(
        "steady-state live vs batch allocation, max |Δ| slots",
        paper=0.0,
        measured=0.0 if all_identical else 1.0,
        tolerance_pct=0.0,
    )

    # Knee comparison: below the knee the p99 must stay within one period +
    # service window of flat; past it the backlog grows by roughly one
    # period per multiple, per remaining cycle.
    biggest = fleet_sizes[-1]
    sub = [p for m, p in zip(rate_multiples, p99_by_fleet[biggest]) if m <= 0.99]
    over = [p for m, p in zip(rate_multiples, p99_by_fleet[biggest]) if m >= 1.5]
    if sub and over:
        result.compare(
            "p99 inflation past the knee (ratio oversaturated/undersaturated)",
            paper=1.0,
            measured=max(over) / max(sub),
        )
        result.notes.append(
            f"p99 latency at {biggest} hives: {max(sub):.0f} s below the knee vs "
            f"{max(over):.0f} s at 2x the cycle rate — open-loop backlog grows "
            "by one full period per excess request, the queueing signature of "
            "slot-synchronized service."
        )
    result.notes.append(
        "Every grid point replays deterministically from its derived seed; "
        "the live allocation was bit-identical to the batch fold at every "
        "steady state."
    )
    return result
