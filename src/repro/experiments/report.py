"""Experiment result containers and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.util.tabulate import render_table


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured check."""

    quantity: str
    paper_value: float
    measured_value: float
    tolerance_pct: Optional[float] = None  # informational band, not an assert

    @property
    def deviation_pct(self) -> float:
        if self.paper_value == 0:
            return float("inf") if self.measured_value else 0.0
        return 100.0 * (self.measured_value - self.paper_value) / self.paper_value

    @property
    def within_tolerance(self) -> Optional[bool]:
        if self.tolerance_pct is None:
            return None
        return abs(self.deviation_pct) <= self.tolerance_pct


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    ``series`` holds named arrays (the figure's curves); ``tables`` holds
    pre-rendered ASCII tables; ``comparisons`` the paper-vs-measured pairs.
    """

    experiment_id: str
    title: str
    description: str = ""
    series: Dict[str, np.ndarray] = field(default_factory=dict)
    tables: List[str] = field(default_factory=list)
    comparisons: List[Comparison] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_series(self, name: str, values) -> None:
        self.series[name] = np.asarray(values)

    def compare(self, quantity: str, paper: float, measured: float, tolerance_pct: Optional[float] = None) -> None:
        self.comparisons.append(Comparison(quantity, float(paper), float(measured), tolerance_pct))

    def comparison_table(self) -> str:
        rows = []
        for c in self.comparisons:
            flag = ""
            if c.within_tolerance is True:
                flag = "ok"
            elif c.within_tolerance is False:
                flag = "DEVIATES"
            rows.append((c.quantity, c.paper_value, c.measured_value, c.deviation_pct, flag))
        return render_table(
            ["Quantity", "Paper", "Measured", "Dev %", ""],
            rows,
            formats=[None, ".4g", ".4g", "+.1f", None],
            title=f"{self.experiment_id}: paper vs measured",
        )

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.description:
            parts.append(self.description)
        parts.extend(self.tables)
        if self.comparisons:
            parts.append(self.comparison_table())
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)

    def to_dict(self, include_series: bool = True) -> dict:
        """JSON-serializable form (series as lists)."""
        out = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "description": self.description,
            "comparisons": [
                {
                    "quantity": c.quantity,
                    "paper": c.paper_value,
                    "measured": c.measured_value,
                    "deviation_pct": c.deviation_pct,
                    "within_tolerance": c.within_tolerance,
                }
                for c in self.comparisons
            ],
            "notes": list(self.notes),
        }
        if include_series:
            out["series"] = {k: np.asarray(v).tolist() for k, v in self.series.items()}
        return out

    def fingerprint(self) -> dict:
        """Canonical golden-trace form (see :mod:`repro.validate.golden`).

        Measured scalars are rounded to 10 significant digits; each series
        collapses to a length/endpoint/extrema summary plus a SHA-256 hash
        of its 6-significant-digit rendering.  Deliberately self-contained
        (no repro.validate import) so the registry can stay a leaf of the
        validation layer.
        """
        import hashlib

        def sig(value: float, digits: int = 10) -> float:
            value = float(value)
            return float(f"{value:.{digits}g}") if np.isfinite(value) else value

        comparisons = {
            c.quantity: {"paper": sig(c.paper_value), "measured": sig(c.measured_value)}
            for c in self.comparisons
        }
        series = {}
        for name, values in sorted(self.series.items()):
            arr = np.asarray(values, dtype=float).ravel()
            rendered = ",".join(f"{v:.6g}" for v in arr)
            series[name] = {
                "n": int(arr.size),
                "first": sig(arr[0]) if arr.size else None,
                "last": sig(arr[-1]) if arr.size else None,
                "min": sig(arr.min()) if arr.size else None,
                "max": sig(arr.max()) if arr.size else None,
                "mean": sig(arr.mean()) if arr.size else None,
                "sha256": hashlib.sha256(rendered.encode()).hexdigest(),
            }
        return {
            "experiment_id": self.experiment_id,
            "comparisons": comparisons,
            "series": series,
            "n_notes": len(self.notes),
        }
