"""Figure 6: ideal large-scale simulation, 10–400 clients, 10 per slot.

Reproduces the three headline numbers: edge energy per client is flat at
~322 J (independent of fleet size), the server cost per client converges
toward the full-server figure (~116 J in the paper), and the best total per
client is their sum (~438 J) — 16 % above the edge-only scenario.
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import PAPER, PaperConstants
from repro.core.routines import make_scenario
from repro.core.sweep import sweep_clients
from repro.experiments.report import ExperimentResult
from repro.util.tabulate import render_table


def run(
    model: str = "svm",
    n_min: int = 10,
    n_max: int = 400,
    max_parallel: int = 10,
    constants: PaperConstants = PAPER,
) -> ExperimentResult:
    scenario = make_scenario("edge+cloud", model, max_parallel=max_parallel, constants=constants)
    edge_scenario = make_scenario("edge", model, constants=constants)
    n = np.arange(n_min, n_max + 1)
    sweep = sweep_clients(n, scenario)
    edge_sweep = sweep_clients(n, edge_scenario)

    result = ExperimentResult(
        experiment_id="fig6",
        title="Ideal client-server simulation (no loss)",
        description=f"{n_min}..{n_max} clients, {max_parallel} clients/slot, first-fit allocation.",
    )
    result.add_series("n_clients", n)
    result.add_series("n_servers", sweep.n_servers)
    result.add_series("edge_per_client_j", sweep.edge_energy_per_client)
    result.add_series("server_per_client_j", sweep.server_energy_per_client)
    result.add_series("total_per_client_j", sweep.total_energy_per_client)
    result.add_series("edge_only_per_client_j", edge_sweep.total_energy_per_client)

    # Full-server per-client cost: evaluate exactly at one full server.
    capacity = sweep.server_capacity
    full = sweep_clients(np.array([capacity]), scenario)
    server_full = float(full.server_energy_per_client[0])
    best_total = float(full.total_energy_per_client[0])
    edge_cost = edge_scenario.client.cycle_energy

    result.compare("edge J/client (flat)", constants.edge_cloud_client_j,
                   float(sweep.edge_energy_per_client[0]), tolerance_pct=1.0)
    result.compare("server J/client at full server", constants.server_full_per_client_j,
                   server_full, tolerance_pct=8.0)
    result.compare("best total J/client", constants.best_total_per_client_j,
                   best_total, tolerance_pct=5.0)
    result.compare("edge-only J/client", constants.edge_svm_total_j if model == "svm" else constants.edge_cnn_total_j,
                   edge_cost, tolerance_pct=1.0)
    overhead_pct = 100.0 * (best_total / edge_cost - 1.0)
    result.compare("edge+cloud overhead vs edge (%)", 16.0, overhead_pct, tolerance_pct=25.0)

    # Summary table at a few fleet sizes.
    picks = [i for i, c in enumerate(n) if c in (n_min, 50, 100, 200, capacity, n_max) and c <= n_max]
    result.tables.append(
        render_table(
            ["Clients", "Servers", "Edge J/client", "Server J/client", "Total J/client"],
            [
                (
                    int(n[i]),
                    int(sweep.n_servers[i]),
                    sweep.edge_energy_per_client[i],
                    sweep.server_energy_per_client[i],
                    sweep.total_energy_per_client[i],
                )
                for i in sorted(set(picks))
            ],
            formats=["d", "d", ".1f", ".1f", ".1f"],
            title=f"Figure 6 reproduction ({model.upper()}, {max_parallel}/slot, capacity {capacity}/server)",
        )
    )
    result.notes.append(f"server capacity: {sweep.slots_per_server} slots × {max_parallel} = {capacity} clients")
    return result
