"""Extension experiment: adaptive duty-cycling (the paper's future work).

Compares the energy-aware adaptive wake-up controller against the paper's
fixed schedules across weather regimes.  The claims checked: the adaptive
schedule matches the safest fixed schedule's uptime while multiplying its
data yield.
"""

from __future__ import annotations

from repro.core.adaptive import AdaptiveDutyCycle, simulate_adaptive_week
from repro.experiments.report import ExperimentResult
from repro.util.tabulate import render_table
from repro.util.units import MINUTE


def run(seed: int = 11, cloudiness_levels=(0.3, 0.5, 0.7)) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext-adaptive",
        title="Adaptive duty cycle vs fixed schedules (future-work extension)",
        description="Week-long runs over synthetic weather; controller re-plans hourly.",
    )
    controller = AdaptiveDutyCycle()
    for cloudiness in cloudiness_levels:
        rows = []
        runs = {}
        for name, kwargs in (
            ("fixed-5min", {"fixed_period": 5 * MINUTE}),
            ("fixed-120min", {"fixed_period": 120 * MINUTE}),
            ("adaptive", {"controller": controller}),
        ):
            runs[name] = simulate_adaptive_week(cloudiness=cloudiness, seed=seed, **kwargs)
            r = runs[name]
            rows.append((name, f"{r.uptime_fraction:.1%}", int(r.cycles_completed),
                         r.mean_period / MINUTE))
        result.tables.append(render_table(
            ["Schedule", "Uptime", "Cycles/week", "Mean period (min)"],
            rows,
            formats=[None, None, "d", ".0f"],
            title=f"cloudiness {cloudiness:.0%}",
        ))
        result.compare(
            f"adaptive uptime @cloud={cloudiness:.0%}",
            runs["fixed-120min"].uptime_fraction,
            runs["adaptive"].uptime_fraction,
            tolerance_pct=2.0,
        )
        yield_ratio = runs["adaptive"].cycles_completed / max(runs["fixed-120min"].cycles_completed, 1)
        result.notes.append(
            f"cloudiness {cloudiness:.0%}: adaptive collects {yield_ratio:.1f}x the safe schedule's cycles"
        )
        result.add_series(f"adaptive_periods_cloud{int(cloudiness*100)}",
                          runs["adaptive"].periods)
    return result
