"""Extension experiment: pricing the training phase the paper defers.

§V: "The training phase of CNN models has a significant energy cost, but it
is a less frequent task than the use of the trained models."  This
experiment quantifies the deferral: ResNet-18 over the 1647-clip corpus for
4 epochs on the server vs the Pi, and the per-cycle amortization of a
weekly retraining cadence.
"""

from __future__ import annotations

from repro.core.calibration import PAPER
from repro.experiments.report import ExperimentResult
from repro.ml.nn.resnet import resnet18
from repro.ml.training_cost import (
    paper_edge_training_model,
    paper_server_training_model,
    retraining_amortization,
    training_cost,
)
from repro.util.tabulate import render_table
from repro.util.units import DAY


def run(n_samples: int = 1647, epochs: int = 4) -> ExperimentResult:
    model = resnet18(in_channels=1)
    shape = (1, PAPER.cnn_image_size, PAPER.cnn_image_size)
    server = training_cost(model, shape, n_samples, epochs,
                           paper_server_training_model(), device="rtx2070 server")
    edge = training_cost(model, shape, n_samples, epochs,
                         paper_edge_training_model(), device="pi 3b+")

    result = ExperimentResult(
        experiment_id="ext-training",
        title="Training-phase energy (deferred by §V, priced here)",
        description=f"ResNet-18, {n_samples} clips x {epochs} epochs at {shape[1]}x{shape[2]}.",
    )
    result.tables.append(render_table(
        ["Device", "Wall time", "Energy (J)"],
        [
            (server.device, f"{server.seconds/60:.1f} min", server.joules),
            (edge.device, f"{edge.seconds/86400:.1f} days", edge.joules),
        ],
        formats=[None, None, ".0f"],
        title="One full training run",
    ))
    # §V claims: the server trains "in few minutes".
    result.compare("server training minutes", 3.0, server.seconds / 60.0, tolerance_pct=50.0)
    result.notes.append(
        f"edge training would take {edge.seconds/86400:.1f} days and "
        f"{edge.joules/3600:.0f} Wh — roughly {edge.joules / (PAPER.edge_svm_total_j * 288):.0f} "
        "days of the hive's entire cycle budget; training belongs in the cloud even when "
        "inference does not"
    )
    weekly = retraining_amortization(server, retraining_interval_s=7 * DAY)
    result.tables.append(weekly.render())
    result.compare("weekly retraining amortized J/cycle", 15.0,
                   weekly.extra_joules_per_cycle, tolerance_pct=20.0)
    return result
