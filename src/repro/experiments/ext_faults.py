"""Extension experiment: availability vs energy under fault injection.

Three questions the paper's ideal/loss models leave open:

1. **What does resilience cost?**  Sweeping the server-outage rate at a
   fixed fleet yields an availability-vs-energy curve: retries, failover
   uploads and local-inference fallbacks all burn edge joules to keep
   detections flowing while servers are down.
2. **Where does the Figure 7 crossover move?**  The edge-only scenario is
   immune to server and link faults, so every joule of resilience overhead
   shifts the edge+cloud curve up and pushes the economic crossover to
   larger fleets.
3. **Is loss C really a degenerate fault?**  A zero-repair
   :class:`~repro.faults.spec.ClientCrash` matched to loss C's mean dropout
   reproduces the loss-C energy statistics — the paper's stochastic loss is
   the memoryless limit of an explicit failure process.

With all injectors off the runner reproduces the ideal §VI-B energies
bit-for-bit (same allocator, same closed-form slot energy as ``fig6``).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.calibration import CYCLE_SECONDS, PAPER, PaperConstants
from repro.core.losses import ClientLoss, LossConfig
from repro.core.parallel import parallel_map
from repro.core.routines import make_scenario
from repro.core.simulate import simulate_fleet
from repro.experiments.report import ExperimentResult
from repro.faults.config import FaultConfig
from repro.faults.desfaults import run_des_faulty_fleet
from repro.faults.fleetsim import run_faulty_fleet
from repro.faults.spec import ClientCrash, LinkBlackout, ServerOutage
from repro.util.rng import derive_seed
from repro.util.tabulate import render_table

#: Server-outage MTBFs swept for the availability/energy trade-off (hours).
OUTAGE_MTBF_HOURS = (math.inf, 48.0, 24.0, 12.0, 6.0, 3.0)


def _faults_at(mtbf_h: float) -> FaultConfig:
    if math.isinf(mtbf_h):
        return FaultConfig.none()
    return FaultConfig(
        server_outage=ServerOutage(mtbf_s=mtbf_h * 3600.0, repair_s=1800.0),
        link_blackout=LinkBlackout(mtbf_s=4 * mtbf_h * 3600.0, repair_s=120.0),
    )


def _rate_point(args) -> tuple:
    """Worker: one MTBF point of the availability/energy sweep.

    Seed-stable: the point's seed is ``derive_seed(seed, "rate-sweep", i)``
    — a function of the point index only, so serial and parallel runs are
    bit-identical.
    """
    i, mtbf_h, model, max_parallel, n_clients, n_cycles, seed, constants = args
    cloud = make_scenario("edge+cloud", model, max_parallel=max_parallel, constants=constants)
    r = run_faulty_fleet(
        n_clients,
        cloud,
        _faults_at(mtbf_h),
        n_cycles=n_cycles,
        seed=derive_seed(seed, "rate-sweep", i),
        constants=constants,
    )
    return (
        r.availability,
        r.report.cloud_availability,
        r.mean_total_per_client_cycle,
        r.resilience_energy_j / (n_clients * n_cycles),
        int(r.n_servers_down.sum()),
    )


def _crossover_point(args) -> float:
    """Worker: mean total J/client/cycle at one (setting, fleet-size) point.

    The per-repetition seeds are derived from ``(label, n, rep)`` inside
    the worker, so splitting the grid across processes cannot change them.
    """
    label, mtbf_h, n, n_rep, n_cycles, model, max_parallel, seed, constants = args
    cloud = make_scenario("edge+cloud", model, max_parallel=max_parallel, constants=constants)
    return float(
        np.mean(
            [
                run_faulty_fleet(
                    int(n),
                    cloud,
                    _faults_at(mtbf_h),
                    n_cycles=n_cycles,
                    seed=derive_seed(seed, "crossover", label, int(n), rep),
                    constants=constants,
                ).mean_total_per_client_cycle
                for rep in range(n_rep)
            ]
        )
    )


def run(
    model: str = "svm",
    max_parallel: int = 35,
    n_clients: int = 700,
    n_cycles: int = 288,
    seed: int = 0,
    crossover_sizes: tuple = (350, 1000, 50),  # (min, max, step) client grid
    constants: PaperConstants = PAPER,
    workers: Optional[int] = None,
    checkpoint=None,
) -> ExperimentResult:
    """``checkpoint`` is an optional :class:`repro.resilience.checkpoint.
    RunCheckpoint`: both parallel sweeps (the MTBF rate sweep and the
    crossover grid) record per-chunk results durably; a resumed run skips
    every chunk already in the file and is bit-identical to a fresh one
    (chunk results are pure functions of their seed-carrying items)."""
    cloud = make_scenario("edge+cloud", model, max_parallel=max_parallel, constants=constants)
    edge = make_scenario("edge", model, constants=constants)
    edge_per_client = edge.client.cycle_energy

    result = ExperimentResult(
        experiment_id="ext-faults",
        title="Fault injection: availability vs energy, crossover drift",
        description=(
            f"{n_clients} clients, {max_parallel}/slot, {n_cycles} cycles per point; "
            "server outages + link blackouts with retry/backoff, failover and edge fallback."
        ),
    )

    # -- 0) faults off reproduces the ideal §VI-B energies bit-for-bit -------
    worst = 0.0
    for n in (100, n_clients, 2 * n_clients):
        ideal = simulate_fleet(n, cloud)
        faulty = run_faulty_fleet(n, cloud, FaultConfig.none(), n_cycles=3, seed=seed)
        worst = max(
            worst,
            abs(float(faulty.edge_energy_j[0]) - ideal.edge_energy_j),
            abs(float(faulty.server_energy_j[0]) - ideal.server_energy_j),
        )
    result.compare("ideal-path max |Δ| (J, faults off)", 0.0, worst)

    # -- 1) availability vs energy across outage rates ------------------------
    rows = []
    availability = []
    cloud_avail = []
    total_per_cc = []
    resilience = []
    rate_args = [
        (i, mtbf_h, model, max_parallel, n_clients, n_cycles, seed, constants)
        for i, mtbf_h in enumerate(OUTAGE_MTBF_HOURS)
    ]
    rate_stage = checkpoint.stage("rate-sweep") if checkpoint is not None else None
    for mtbf_h, (avail, c_avail, total_cc, resil, down) in zip(
        OUTAGE_MTBF_HOURS,
        parallel_map(_rate_point, rate_args, workers=workers, checkpoint=rate_stage),
    ):
        availability.append(avail)
        cloud_avail.append(c_avail)
        total_per_cc.append(total_cc)
        resilience.append(resil)
        rows.append(
            ("inf" if math.isinf(mtbf_h) else f"{mtbf_h:g}", avail, c_avail, total_cc, resil, down)
        )
    result.add_series("outage_mtbf_h", np.array([h if math.isfinite(h) else 0.0 for h in OUTAGE_MTBF_HOURS]))
    result.add_series("availability", np.array(availability))
    result.add_series("cloud_availability", np.array(cloud_avail))
    result.add_series("total_j_per_client_cycle", np.array(total_per_cc))
    result.add_series("resilience_j_per_client_cycle", np.array(resilience))
    result.tables.append(
        render_table(
            ["MTBF (h)", "Avail.", "Cloud avail.", "Total J/cl/cyc", "Resil. J/cl/cyc", "Server-down cycles"],
            rows,
            formats=[None, ".4f", ".4f", ".1f", ".2f", "d"],
            title=f"Availability vs energy ({model.upper()}, {n_clients} clients)",
        )
    )

    # -- 2) Figure 7 crossover drift under faults ------------------------------
    lo, hi, step = crossover_sizes
    sizes = np.arange(lo, hi + 1, step)
    cross_rows = []
    crossovers = {}
    settings = (("ideal", math.inf), ("moderate", 12.0), ("harsh", 3.0))
    grid = [
        (
            label,
            mtbf_h,
            int(n),
            1 if math.isinf(mtbf_h) else 6,  # fault runs avg over schedules
            max(n_cycles // 2, 16),
            model,
            max_parallel,
            seed,
            constants,
        )
        for label, mtbf_h in settings
        for n in sizes
    ]
    cross_stage = checkpoint.stage("crossover") if checkpoint is not None else None
    grid_totals = parallel_map(
        _crossover_point, grid, workers=workers, checkpoint=cross_stage
    )
    for j, (label, _mtbf_h) in enumerate(settings):
        totals = np.asarray(grid_totals[j * len(sizes):(j + 1) * len(sizes)])
        below = np.nonzero(totals < edge_per_client)[0]
        crossovers[label] = int(sizes[below[0]]) if below.size else None
        result.add_series(f"crossover_total_j_{label}", totals)
        cross_rows.append((label, crossovers[label] if crossovers[label] is not None else -1))
    result.add_series("crossover_n_clients", sizes)
    result.tables.append(
        render_table(
            ["Setting", "First crossover (clients)"],
            cross_rows,
            formats=[None, "d"],
            title=f"Edge vs edge+cloud crossover (edge flat at {edge_per_client:.1f} J/client)",
        )
    )
    if crossovers["ideal"] is not None and crossovers["moderate"] is not None:
        result.compare(
            "crossover drift under faults (clients)",
            crossovers["ideal"],
            crossovers["moderate"],
        )
        if crossovers["moderate"] > crossovers["ideal"]:
            result.notes.append(
                "resilience energy pushes the edge-vs-cloud crossover to larger fleets, "
                "as every fault costs edge joules (retries, failover uploads, local fallback)"
            )
    if crossovers["harsh"] is None:
        result.notes.append(
            "at a 3 h server MTBF the crossover leaves the grid entirely: resilience "
            "overhead exceeds the cloud offloading margin at every fleet size — the "
            "fault-rate analogue of Figure 7's 10-clients/slot 'edge always wins' regime"
        )

    # -- 3) loss C as the zero-repair client-crash limit -----------------------
    loss_c = ClientLoss(constants.loss_c_mean_fraction, constants.loss_c_std)
    crash = ClientCrash.from_client_loss(loss_c, period=CYCLE_SECONDS)
    n_eq = min(max(n_cycles, 192), 4 * n_cycles)
    r_crash = run_faulty_fleet(
        n_clients,
        cloud,
        FaultConfig(client_crash=crash),
        n_cycles=n_eq,
        seed=derive_seed(seed, "loss-c-crash"),
        constants=constants,
    )
    ref_totals = [
        simulate_fleet(
            n_clients,
            cloud,
            losses=LossConfig(client_loss=loss_c),
            seed=derive_seed(seed, "loss-c-ref", c),
        ).total_energy_j
        for c in range(n_eq)
    ]
    crash_mean = r_crash.total_energy_j / n_eq
    ref_mean = float(np.mean(ref_totals))
    result.compare(
        "loss-C vs zero-repair crash (J/cycle)", ref_mean, crash_mean, tolerance_pct=2.0
    )
    result.notes.append(
        f"zero-repair ClientCrash mtbf={crash.mtbf_s / 3600:.1f} h gives per-cycle miss "
        f"probability {crash.miss_probability():.3f} == loss C's mean fraction "
        f"{loss_c.mean_fraction:.3f}; mean energy agrees within tolerance"
    )

    # -- 4) DES demonstration: mid-cycle outage, live retries ------------------
    des = run_des_faulty_fleet(
        3 * max_parallel,
        cloud,
        FaultConfig(server_outage=ServerOutage(mtbf_s=900.0, repair_s=600.0)),
        n_cycles=3,
        seed=derive_seed(seed, "des-demo"),
        constants=constants,
    )
    rep = des.report
    result.tables.append(
        render_table(
            ["Metric", "Value"],
            [
                ("cycles expected", rep.cycles_expected),
                ("ok / retried / failover / fallback / missed",
                 f"{rep.cycles_ok}/{rep.cycles_retried}/{rep.cycles_failover}/"
                 f"{rep.cycles_fallback}/{rep.cycles_missed}"),
                ("availability", f"{rep.availability:.4f}"),
                ("retry energy (J)", f"{rep.retry_energy_j:.1f}"),
                ("failover energy (J)", f"{rep.failover_energy_j:.1f}"),
                ("fallback energy (J)", f"{rep.fallback_energy_j:.1f}"),
                ("fault events logged", rep.n_fault_events),
            ],
            formats=[None, None],
            title="DES demonstration: mid-cycle server outage with live retry/backoff",
        )
    )
    return result
