"""Figure 9: edge vs edge+cloud with all losses, 35 clients per slot.

With all three loss models active the edge+cloud advantage shrinks but the
paper reports intervals where it still wins, and that three servers safely
cover 1600–1750 clients.  The paper's loss definitions are ambiguous and
its Figures 8 and 9 are only *jointly* reachable under different readings
(see :mod:`repro.core.losses`); this experiment uses the Figure-9-consistent
readings (``LossConfig.fig9``): constant per-transfer stretch for loss B and
an active-energy base for loss A.  Under those, a server still packs 16
slots per cycle (capacity 560 at 35/slot), so 3 servers cover ~1680 clients.
The remaining quantitative gap — how often edge+cloud actually dips below
edge once the dropout penalty is charged per *initial* client — is recorded
honestly in the comparisons and EXPERIMENTS.md rather than tuned away.
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import PAPER, PaperConstants
from repro.core.crossover import find_crossover
from repro.core.losses import LossConfig
from repro.core.routines import make_scenario
from repro.core.sweep import sweep_clients
from repro.experiments.report import ExperimentResult
from repro.util.tabulate import render_table


def run(
    model: str = "svm",
    n_min: int = 100,
    n_max: int = 2000,
    max_parallel: int = 35,
    seed: int = 42,
    constants: PaperConstants = PAPER,
) -> ExperimentResult:
    edge = make_scenario("edge", model, constants=constants)
    cloud = make_scenario("edge+cloud", model, max_parallel=max_parallel, constants=constants)
    losses = LossConfig.fig9(constants)
    n = np.arange(n_min, n_max + 1)

    # Both scenarios face the same dropout stream (same seed) — the paper's
    # comparison keeps the fleet identical across scenarios.
    edge_sweep = sweep_clients(n, edge, losses=losses, seed=seed)
    cloud_sweep = sweep_clients(n, cloud, losses=losses, seed=seed)
    no_loss_cloud = sweep_clients(n, cloud)
    report = find_crossover(n, edge_sweep.total_energy_per_client, cloud_sweep.total_energy_per_client)

    result = ExperimentResult(
        experiment_id="fig9",
        title="Edge vs Edge+Cloud with all losses (35 clients/slot)",
        description=f"{n_min}..{n_max} clients, losses: {losses.describe()} (Figure-9 readings)",
    )
    result.add_series("n_clients", n)
    result.add_series("edge_per_client_j", edge_sweep.total_energy_per_client)
    result.add_series("edge_cloud_per_client_j", cloud_sweep.total_energy_per_client)
    result.add_series("edge_cloud_no_loss_per_client_j", no_loss_cloud.total_energy_per_client)
    result.add_series("n_servers", cloud_sweep.n_servers)
    result.tables.append(report.render())

    # Paper's operational claim: with 1600-1750 clients, 3 servers suffice.
    band = (n >= 1600) & (n <= 1750)
    servers_in_band = cloud_sweep.n_servers[band]
    result.compare("max servers @1600-1750", 3, float(np.max(servers_in_band)), tolerance_pct=34.0)
    result.compare("min servers @1600-1750", 3, float(np.min(servers_in_band)), tolerance_pct=0.0)

    # "A little bit worse than its equivalent without loss": quantify the
    # loss-induced degradation of the edge+cloud curve at full utilisation.
    cap = cloud_sweep.server_capacity
    at_cap = (n >= cap - 50) & (n <= cap + 50)
    # Normalize by *active* clients so the dropout does not mask the A/B
    # penalties (per-initial-client curves sit lower simply because lost
    # clients consume nothing).
    per_active = cloud_sweep.total_energy_j[at_cap] / np.maximum(cloud_sweep.n_active[at_cap], 1)
    degradation = float(np.mean(per_active - no_loss_cloud.total_energy_per_client[at_cap]))
    result.notes.append(
        f"loss-induced degradation of edge+cloud near one full server (~{cap} clients): "
        f"{degradation:+.1f} J/client (paper: 'a little bit worse')"
    )
    result.notes.append(
        f"edge+cloud wins on {report.fraction_cloud_better:.1%} of the grid under the fig9 loss "
        "readings (paper shows intervals of advantage; see EXPERIMENTS.md for the sensitivity "
        "of this margin to the loss-C accounting)"
    )
    result.tables.append(
        render_table(
            ["Clients", "Servers", "Edge J/client", "Edge+Cloud J/client", "E+C no-loss J/client"],
            [
                (
                    int(c),
                    int(cloud_sweep.n_servers[i]),
                    edge_sweep.total_energy_per_client[i],
                    cloud_sweep.total_energy_per_client[i],
                    no_loss_cloud.total_energy_per_client[i],
                )
                for i, c in enumerate(n)
                if c % 250 == 0
            ],
            formats=["d", "d", ".1f", ".1f", ".1f"],
            title="Figure 9 samples",
        )
    )
    return result
