"""Extension experiment: live serving under injected faults and overload.

The online counterpart of ``ext-faults``: instead of folding a fault
schedule into the batch energy model, this sweep drives the *serving*
layer — :class:`~repro.serve.engine.OrchestrationEngine` with a compiled
:class:`~repro.serve.faults.ServeFaultSpec` — through seeded open-loop
replays and measures what the live path does when servers die mid-replay,
hive links go dark, and the admission queue hits its bound:

* **availability** (served / offered) versus fault level, per placement
  policy and queue bound — the availability-vs-energy knee;
* **shed fraction** under the deterministic overload policy (telemetry
  shed at half the bound, inference at the bound);
* **retry energy** charged to the obs ledger's ``retry`` phase by the
  seeded in-flight retry ladder;
* the **edge fraction** — how much inference degrades to on-hive service
  when its cloud server is down or its link is dark.

Two pins keep the sweep honest: a present-but-inactive fault spec must be
bit-identical (placement-trace fingerprint) to a plain fault-free config,
and the serve-conservation invariant ``offered == served + shed +
errored`` must hold at every grid point (``engine.report()`` raises
otherwise — the comparison below re-checks the partition explicitly).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.calibration import CYCLE_SECONDS
from repro.experiments.report import ExperimentResult
from repro.loadgen.arrivals import LoadSpec
from repro.loadgen.replay import SHED, replay_in_process
from repro.serve.engine import OrchestrationEngine, ServeConfig
from repro.serve.faults import ServeFaultSpec
from repro.util.rng import derive_seed
from repro.util.tabulate import render_table

#: Mean failures per faulty server (and blackouts per dark hive) over the
#: horizon; 0 keeps the fault spec present but inactive (the identity pin).
DEFAULT_FAULT_LEVELS = (0.0, 2.0, 6.0)
DEFAULT_POLICIES = ("first-fit", "best-fit")
DEFAULT_QUEUE_BOUNDS: tuple = (None, 12)


def _bound_label(queue_bound: Optional[int]) -> str:
    return "unbounded" if queue_bound is None else f"q{queue_bound}"


def _fault_spec(
    fault_level: float, n_hives: int, horizon_s: float, period: float, seed: int
) -> ServeFaultSpec:
    """The fault surface one grid level describes (inactive at level 0)."""
    mtbf = horizon_s / fault_level if fault_level > 0 else math.inf
    return ServeFaultSpec(
        server_mtbf_s=mtbf,
        server_repair_s=period,
        fault_servers=3,
        dark_mtbf_s=mtbf,
        dark_repair_s=period / 2.0,
        fault_hives=max(2, n_hives // 4),
        horizon_s=horizon_s,
        seed=derive_seed(seed, "ext-serve-faults", "faults", f"{fault_level:.9g}"),
    )


def _run_point(
    policy: str,
    fault_level: float,
    queue_bound: Optional[int],
    spec: LoadSpec,
    period: float,
    seed: int,
) -> dict:
    """One (policy, fault level, queue bound) grid point: replay + summarize."""
    config = ServeConfig(
        policy=policy,
        period=period,
        queue_bound=queue_bound,
        faults=_fault_spec(fault_level, spec.n_hives, spec.horizon_s, period, seed),
    )
    engine = OrchestrationEngine(config)
    _, client = replay_in_process(spec, engine)
    unexpected = client.unexpected_classes((SHED,))
    if unexpected:
        raise RuntimeError(
            f"unexpected failure classes at policy={policy} "
            f"level={fault_level:.3g} bound={queue_bound}: {unexpected}"
        )
    report = engine.report()  # raises on a conservation violation
    offered = report["offered"]
    cloud = client.placements.get("cloud", 0)
    edge = client.placements.get("edge", 0)
    inf_latency = engine.latency_report().get("inference", {})
    return {
        "offered": offered,
        "served": report["served"],
        "shed": report["shed"],
        "errored": report["errored"],
        "availability": report["served"] / offered if offered else 1.0,
        "shed_fraction": report["shed"] / offered if offered else 0.0,
        "edge_fraction": edge / (edge + cloud) if (edge + cloud) else 0.0,
        "retry_energy_j": engine.obs.ledger.energy_j("retry"),
        "p99_s": inf_latency.get("p99_s", 0.0),
        "trace_sha256": engine.trace.fingerprint(),
        "conservation_gap": abs(
            offered - (report["served"] + report["shed"] + report["errored"])
        ),
    }


def run(
    policies=DEFAULT_POLICIES,
    fault_levels=DEFAULT_FAULT_LEVELS,
    queue_bounds=DEFAULT_QUEUE_BOUNDS,
    n_hives: int = 24,
    horizon_cycles: int = 8,
    rate_multiple: float = 1.25,
    period: float = CYCLE_SECONDS,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext-serve-faults",
        title="Live serving under injected faults and overload shedding",
        description=(
            "Seeded open-loop replays against the fault-injected serving "
            "engine across fault rate x placement policy x queue bound; "
            "availability, shed fraction, retry energy, edge degradation."
        ),
    )
    horizon_s = horizon_cycles * period
    # One shared load stream: every grid point sees the same arrivals, so
    # differences are attributable to faults/policy/bound alone.
    spec = LoadSpec(
        n_hives=n_hives,
        rate_hz=rate_multiple / period,
        horizon_s=horizon_s,
        telemetry_fraction=0.5,
        payload_bytes=1024,
        seed=derive_seed(seed, "ext-serve-faults", "load", n_hives),
    )
    levels = np.asarray(fault_levels, dtype=float)
    result.add_series("fault_level", levels)

    rows = []
    max_conservation_gap = 0
    zero_fault_identical = True
    for policy in policies:
        # Fault-free reference: plain config, no fault spec, no bound.  The
        # level-0 unbounded grid point must reproduce this trace exactly.
        reference = OrchestrationEngine(ServeConfig(policy=policy, period=period))
        replay_in_process(spec, reference)
        reference_sha = reference.trace.fingerprint()
        for queue_bound in queue_bounds:
            label = f"{policy}_{_bound_label(queue_bound)}"
            availability, shed_frac, edge_frac, retry_j = [], [], [], []
            for level in fault_levels:
                point = _run_point(policy, level, queue_bound, spec, period, seed)
                max_conservation_gap = max(max_conservation_gap, point["conservation_gap"])
                if level == 0 and queue_bound is None:
                    zero_fault_identical = (
                        zero_fault_identical
                        and point["trace_sha256"] == reference_sha
                    )
                availability.append(point["availability"])
                shed_frac.append(point["shed_fraction"])
                edge_frac.append(point["edge_fraction"])
                retry_j.append(point["retry_energy_j"])
                rows.append((
                    policy, _bound_label(queue_bound), level, point["offered"],
                    point["served"], point["shed"], point["availability"],
                    point["edge_fraction"], point["retry_energy_j"], point["p99_s"],
                ))
            result.add_series(f"availability_{label}", np.asarray(availability))
            result.add_series(f"shed_fraction_{label}", np.asarray(shed_frac))
            result.add_series(f"edge_fraction_{label}", np.asarray(edge_frac))
            result.add_series(f"retry_energy_j_{label}", np.asarray(retry_j))

    result.tables.append(render_table(
        ["Policy", "Queue", "Faults", "Offered", "Served", "Shed",
         "Avail", "Edge frac", "Retry (J)", "p99 (s)"],
        rows,
        formats=["s", "s", ".1f", "d", "d", "d", ".3f", ".3f", ".3g", ".1f"],
        title="Availability vs fault level under live fault injection",
    ))

    # Pin 1: a present-but-inactive fault spec is byte-identical to the
    # fault-free serving path (placement-trace fingerprint comparison).
    result.compare(
        "zero-fault config vs fault-free serving path, trace drift",
        paper=0.0,
        measured=0.0 if zero_fault_identical else 1.0,
        tolerance_pct=0.0,
    )
    # Pin 2: offered == served + shed + errored at every grid point (the
    # serve-conservation checker also enforces this inside every report()).
    result.compare(
        "max |offered - (served + shed + errored)| across the grid",
        paper=0.0,
        measured=float(max_conservation_gap),
        tolerance_pct=0.0,
    )

    # The knee: faults trade served-in-cloud for edge degradation + retry
    # energy; quantify availability loss for the first policy/bound pair.
    lead_bound = queue_bounds[-1]
    lead = f"{policies[0]}_{_bound_label(lead_bound)}"
    avail_series = result.series[f"availability_{lead}"]
    if len(avail_series) > 1 and float(levels[-1]) > 0:
        result.compare(
            "availability retained at the highest fault level "
            f"({policies[0]}, {_bound_label(lead_bound)})",
            paper=1.0,
            measured=float(avail_series[-1]) / float(avail_series[0])
            if avail_series[0] else 0.0,
        )
    result.notes.append(
        "Every grid point replays the same seeded arrival stream; fault "
        "schedules are derived per level so policies and queue bounds see "
        "identical failure timelines. Shedding is the only tolerated "
        "failure class — retries, dark-window buffering, and repacks all "
        "resolve to served responses."
    )
    result.notes.append(
        "Availability-vs-energy knee: rising fault levels shift inference "
        "from cloud to edge (higher on-hive energy) and charge the retry "
        "ledger for every timed-out in-flight transfer, while bounded "
        "queues convert overload into deterministic 503 sheds instead of "
        "unbounded latency."
    )
    return result
