"""Table II: per-task breakdown of the edge+cloud scenario (SVM and CNN).

Edge side and cloud side rendered separately; checks the published totals
(edge 322.0 J; cloud 13 744.3 J for SVM / 13 806 J for CNN) and the §V
claim that offloading saves ~12 % of edge energy.
"""

from __future__ import annotations

from repro.core.calibration import CYCLE_SECONDS, PAPER, PaperConstants, table2_rows
from repro.core.routines import make_scenario
from repro.core.tasks import TaskSequence
from repro.experiments.report import ExperimentResult


def run(constants: PaperConstants = PAPER) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table2",
        title="Edge+Cloud scenario task breakdown (per 5-minute cycle)",
    )
    cloud_totals = {"svm": constants.cloud_svm_total_j, "cnn": constants.cloud_cnn_total_j}
    edge_totals = {"svm": constants.edge_svm_total_j, "cnn": constants.edge_cnn_total_j}
    for model in ("svm", "cnn"):
        rows = table2_rows(model, constants)
        edge_seq = TaskSequence(f"Edge+Cloud ({model.upper()}) — edge side", rows["edge"])
        cloud_seq = TaskSequence(f"Edge+Cloud ({model.upper()}) — cloud side", rows["cloud"])
        result.tables.append(edge_seq.render())
        result.tables.append(cloud_seq.render())
        result.compare(
            f"edge+cloud ({model}) edge total (J)",
            constants.edge_cloud_client_j,
            edge_seq.total_energy,
            tolerance_pct=0.5,
        )
        result.compare(
            f"edge+cloud ({model}) cloud total (J)",
            cloud_totals[model],
            cloud_seq.total_energy,
            tolerance_pct=0.5,
        )
        result.compare(
            f"edge+cloud ({model}) edge time (s)", CYCLE_SECONDS, edge_seq.total_duration, tolerance_pct=0.5
        )
        # §V: offloading reduces edge energy by 12.1 % (SVM) / 12.4 % (CNN).
        paper_saving = {"svm": 12.1, "cnn": 12.4}[model]
        saving_pct = 100.0 * (1.0 - edge_seq.total_energy / edge_totals[model])
        result.compare(f"edge energy saving ({model}) (%)", paper_saving, saving_pct, tolerance_pct=5.0)
        # Derived client profile agrees with the explicit rows.
        scenario = make_scenario("edge+cloud", model, constants=constants)
        result.compare(
            f"edge+cloud ({model}) derived edge cycle energy (J)",
            constants.edge_cloud_client_j,
            scenario.client.cycle_energy,
            tolerance_pct=0.5,
        )
    return result
