"""Extension experiment: intermittent connectivity at the hive uplink.

Rural apiaries do not get the paper's always-on WiFi: provider duty cycles,
solar-budgeted modems and weather take the backhaul down for hours at a
time.  This experiment prices that regime with the
:mod:`repro.network.outage` renewal schedules and the
:mod:`repro.network.buffer` store-and-forward layer:

1. **Zero-outage sanity** — an ``always_up`` schedule (plus a configured
   buffer) must reproduce the ideal §VI-B energies *and* the Figure 7
   edge-vs-cloud crossover bit-for-bit: the subsystem is strictly additive.
2. **Outage pattern × buffer capacity grid** — availability stays high
   (buffered cycles still detect locally) while the *delivered-data
   fraction* and the store-and-forward delay distribution degrade with
   outage harshness and recover with buffer capacity.
3. **Overflow policy comparison** — drop-oldest / drop-newest trade which
   payloads survive; ``block`` converts overflow into missed detections.
4. **Crossover shift** — buffered cycles refund the radio but pay local
   inference and contended drain airtime, pushing the Figure 7 crossover
   to larger fleets as outages harshen.
5. **DES demonstration** — the same schedule replayed event-by-event:
   burst drains as interruptible ``send_drain`` windows, backlog carried
   across cycles.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.parallel import parallel_map
from repro.core.calibration import PAPER, PaperConstants
from repro.core.crossover import find_crossover
from repro.core.routines import make_scenario
from repro.core.simulate import simulate_fleet
from repro.experiments.report import ExperimentResult
from repro.faults.config import FaultConfig
from repro.faults.desfaults import run_des_faulty_fleet
from repro.faults.fleetsim import run_faulty_fleet
from repro.network.buffer import BLOCK, DROP_NEWEST, DROP_OLDEST, BufferSpec
from repro.network.outage import IntervalDist, OutagePattern
from repro.util.rng import derive_seed
from repro.util.tabulate import render_table

#: Outage regimes swept in the pattern × capacity grid.
OUTAGE_PATTERNS = ("none", "rare", "daily", "harsh")

#: Buffer capacities swept, in whole cycle payloads.
BUFFER_CYCLES = (1, 4, 8)


def _pattern(kind: str) -> OutagePattern:
    """Named outage regimes, harshest last."""
    if kind == "none":
        return OutagePattern.always_up()
    if kind == "rare":  # ~1 h dark per day, memoryless
        return OutagePattern(
            up=IntervalDist.exponential(23.0 * 3600.0),
            down=IntervalDist.exponential(3600.0),
        )
    if kind == "daily":  # provider duty cycle: ~18 h up / ~6 h dark
        return OutagePattern.duty_cycle(18.0 * 3600.0, 6.0 * 3600.0)
    if kind == "harsh":  # long-tailed half-time link
        return OutagePattern(
            up=IntervalDist.lognormal(2.0 * 3600.0, cv=0.8),
            down=IntervalDist.exponential(2.0 * 3600.0),
        )
    raise ValueError(f"unknown outage pattern {kind!r}")


def _outage_config(kind: str, cap_cycles: int, policy: str = DROP_OLDEST) -> FaultConfig:
    return FaultConfig(
        link_outage=_pattern(kind),
        buffer=BufferSpec.for_cycles(cap_cycles, policy=policy),
    )


def _grid_point(args) -> tuple:
    """Worker: one (pattern, capacity) point of the outage grid.

    Seed-stable under chunking: the seed derives from the point's labels,
    never its position in the work list.
    """
    kind, cap, model, max_parallel, n_clients, n_cycles, seed, constants = args
    cloud = make_scenario("edge+cloud", model, max_parallel=max_parallel, constants=constants)
    r = run_faulty_fleet(
        n_clients,
        cloud,
        _outage_config(kind, cap),
        n_cycles=n_cycles,
        seed=derive_seed(seed, "outage-grid", kind, cap),
        constants=constants,
    )
    br = r.buffer_report
    return (
        r.availability,
        r.delivered_data_fraction,
        br.delay_quantile(0.5) / 3600.0,
        br.delay_quantile(0.95) / 3600.0,
        r.mean_total_per_client_cycle,
        r.resilience_energy_j / (n_clients * n_cycles),
        int(br.dropped_payloads),
        int(br.resident_payloads),
    )


def _crossover_point(args) -> float:
    """Worker: mean total J/client/cycle at one (regime, fleet-size) point."""
    kind, n, n_rep, n_cycles, model, max_parallel, seed, constants = args
    cloud = make_scenario("edge+cloud", model, max_parallel=max_parallel, constants=constants)
    return float(
        np.mean(
            [
                run_faulty_fleet(
                    int(n),
                    cloud,
                    _outage_config(kind, 4),
                    n_cycles=n_cycles,
                    seed=derive_seed(seed, "outage-crossover", kind, int(n), rep),
                    constants=constants,
                ).mean_total_per_client_cycle
                for rep in range(n_rep)
            ]
        )
    )


def run(
    model: str = "svm",
    max_parallel: int = 35,
    n_clients: int = 300,
    n_cycles: int = 96,
    seed: int = 0,
    crossover_sizes: tuple = (350, 1000, 50),  # (min, max, step) client grid
    constants: PaperConstants = PAPER,
    workers: Optional[int] = None,
    checkpoint=None,
) -> ExperimentResult:
    """``checkpoint`` is an optional :class:`repro.resilience.checkpoint.
    RunCheckpoint`: the outage grid and the crossover sweep record
    per-chunk results durably; a resumed run skips completed chunks and is
    bit-identical to a fresh one (each point's seed derives from its
    labels, not its chunk position)."""
    cloud = make_scenario("edge+cloud", model, max_parallel=max_parallel, constants=constants)
    edge = make_scenario("edge", model, constants=constants)
    edge_per_client = edge.client.cycle_energy

    result = ExperimentResult(
        experiment_id="ext-outage",
        title="Intermittent connectivity: outage schedules, edge buffering, degraded mode",
        description=(
            f"{n_clients} clients, {max_parallel}/slot, {n_cycles} cycles per grid point; "
            "seeded renewal outage schedules with store-and-forward buffering, "
            "local-inference degradation and contention-aware burst drain."
        ),
    )

    # -- 0) zero-outage schedule is the identity, incl. the fig7 crossover ----
    cfg_zero = _outage_config("none", 4)
    worst = 0.0
    for n in (100, n_clients, 2 * n_clients):
        ideal = simulate_fleet(n, cloud)
        with_zero = run_faulty_fleet(n, cloud, cfg_zero, n_cycles=2, seed=seed)
        worst = max(
            worst,
            abs(float(with_zero.edge_energy_j[0]) - ideal.edge_energy_j),
            abs(float(with_zero.server_energy_j[0]) - ideal.server_energy_j),
        )
    result.compare("ideal-path max |Δ| (J, zero-outage schedule)", 0.0, worst)

    lo, hi, step = crossover_sizes
    sizes = np.arange(lo, hi + 1, step)
    ideal_totals = np.array(
        [simulate_fleet(int(n), cloud).total_energy_j / int(n) for n in sizes]
    )
    zero_totals = np.array(
        [
            run_faulty_fleet(int(n), cloud, cfg_zero, n_cycles=1, seed=seed)
            .mean_total_per_client_cycle
            for n in sizes
        ]
    )
    edge_curve = np.full(sizes.shape, edge_per_client)
    ideal_cross = find_crossover(sizes, edge_curve, ideal_totals)
    zero_cross = find_crossover(sizes, edge_curve, zero_totals)
    result.compare(
        "fig7 crossover, ideal vs zero-outage (clients)",
        ideal_cross.first_crossover or -1,
        zero_cross.first_crossover or -1,
    )
    result.compare(
        "fig7 curve max |Δ| (J/client, zero-outage)",
        0.0,
        float(np.max(np.abs(ideal_totals - zero_totals))),
    )

    # -- 1) outage pattern × buffer capacity grid ------------------------------
    grid = [
        (kind, cap, model, max_parallel, n_clients, n_cycles, seed, constants)
        for kind in OUTAGE_PATTERNS
        for cap in BUFFER_CYCLES
    ]
    grid_stage = checkpoint.stage("outage-grid") if checkpoint is not None else None
    points = parallel_map(_grid_point, grid, workers=workers, checkpoint=grid_stage)
    rows = []
    for (kind, cap, *_), (avail, dfrac, p50_h, p95_h, total_cc, resil, dropped, resident) in zip(
        grid, points
    ):
        rows.append((kind, cap, avail, dfrac, p50_h, p95_h, total_cc, resil, dropped, resident))
    for j, name in enumerate(
        (
            "availability",
            "delivered_fraction",
            "delay_p50_h",
            "delay_p95_h",
            "total_j_per_client_cycle",
            "resilience_j_per_client_cycle",
        )
    ):
        result.add_series(f"grid_{name}", np.array([p[j] for p in points]))
    result.tables.append(
        render_table(
            [
                "Pattern", "Buf (cyc)", "Avail.", "Delivered", "Delay p50 (h)",
                "Delay p95 (h)", "Total J/cl/cyc", "Resil. J/cl/cyc", "Dropped", "Resident",
            ],
            rows,
            formats=[None, "d", ".4f", ".4f", ".2f", ".2f", ".1f", ".2f", "d", "d"],
            title=f"Outage pattern × buffer capacity ({model.upper()}, {n_clients} clients)",
        )
    )
    up_frac = {k: _pattern(k).expected_uptime_fraction for k in OUTAGE_PATTERNS}
    result.notes.append(
        "expected uptime fractions: "
        + ", ".join(f"{k}={up_frac[k]:.3f}" for k in OUTAGE_PATTERNS)
        + "; availability stays near 1.0 because buffered cycles still detect locally — "
        "the price appears in the delivered-data fraction and the drain/inference joules"
    )

    # -- 2) overflow policy comparison -----------------------------------------
    policy_rows = []
    for policy in (DROP_OLDEST, DROP_NEWEST, BLOCK):
        r = run_faulty_fleet(
            n_clients,
            cloud,
            _outage_config("daily", 2, policy=policy),
            n_cycles=n_cycles,
            seed=derive_seed(seed, "policy", policy),
            constants=constants,
        )
        br = r.buffer_report
        policy_rows.append(
            (
                policy,
                r.availability,
                r.delivered_data_fraction,
                r.report.cycles_missed,
                br.dropped_payloads,
                br.delay_quantile(0.95) / 3600.0,
            )
        )
    result.add_series("policy_availability", np.array([row[1] for row in policy_rows]))
    result.add_series("policy_delivered_fraction", np.array([row[2] for row in policy_rows]))
    result.tables.append(
        render_table(
            ["Policy", "Avail.", "Delivered", "Missed cyc", "Dropped", "Delay p95 (h)"],
            policy_rows,
            formats=[None, ".4f", ".4f", "d", "d", ".2f"],
            title="Overflow policy at 2-cycle capacity under the daily pattern",
        )
    )

    # -- 3) crossover shift under outages --------------------------------------
    cross_grid = [
        (
            kind,
            int(n),
            1 if kind == "none" else 4,  # average stochastic regimes over schedules
            max(n_cycles // 2, 16),
            model,
            max_parallel,
            seed,
            constants,
        )
        for kind in ("none", "daily", "harsh")
        for n in sizes
    ]
    cross_stage = checkpoint.stage("crossover") if checkpoint is not None else None
    cross_totals = parallel_map(
        _crossover_point, cross_grid, workers=workers, checkpoint=cross_stage
    )
    cross_rows = []
    crossings = {}
    for j, kind in enumerate(("none", "daily", "harsh")):
        totals = np.asarray(cross_totals[j * len(sizes):(j + 1) * len(sizes)])
        report = find_crossover(sizes, np.full(sizes.shape, edge_per_client), totals)
        crossings[kind] = report.first_crossover
        result.add_series(f"crossover_total_j_{kind}", totals)
        cross_rows.append((kind, report.first_crossover if report.first_crossover else -1))
    result.add_series("crossover_n_clients", sizes)
    result.tables.append(
        render_table(
            ["Outage regime", "First crossover (clients)"],
            cross_rows,
            formats=[None, "d"],
            title=f"Edge vs edge+cloud crossover (edge flat at {edge_per_client:.1f} J/client)",
        )
    )
    if crossings["none"] is not None and crossings["daily"] is not None:
        result.compare(
            "crossover shift under daily outages (clients)",
            crossings["none"],
            crossings["daily"],
        )
        if crossings["daily"] >= crossings["none"]:
            result.notes.append(
                "outages shift the economic crossover to larger fleets: buffered cycles "
                "refund the radio but pay local inference plus contention-stretched drain "
                "airtime, eroding the cloud-offloading margin"
            )

    # -- 4) DES demonstration: live outages, burst drains ----------------------
    des = run_des_faulty_fleet(
        2 * max_parallel,
        cloud,
        _outage_config("daily", 4),
        n_cycles=16,
        seed=derive_seed(seed, "des-demo"),
        constants=constants,
    )
    rep = des.report
    br = des.buffer_report
    result.tables.append(
        render_table(
            ["Metric", "Value"],
            [
                ("cycles expected", rep.cycles_expected),
                (
                    "ok / retried / buffered / missed",
                    f"{rep.cycles_ok}/{rep.cycles_retried}/"
                    f"{rep.cycles_buffered}/{rep.cycles_missed}",
                ),
                ("availability", f"{rep.availability:.4f}"),
                ("payloads buffered / drained / resident",
                 f"{br.offered_payloads}/{br.delivered_payloads}/{br.resident_payloads}"),
                ("store-and-forward delay p95 (h)", f"{br.delay_quantile(0.95) / 3600.0:.2f}"),
                ("buffered-inference energy (J)", f"{rep.buffered_energy_j:.1f}"),
                ("drain airtime energy (J)", f"{rep.drain_energy_j:.1f}"),
            ],
            formats=[None, None],
            title="DES demonstration: live outage windows with burst drain on reconnect",
        )
    )
    result.compare("DES buffer conservation (bytes off)", 0.0,
                   float(br.offered_bytes - br.delivered_bytes - br.dropped_bytes - br.resident_bytes))
    return result
