"""Figure 2: week-long system trace with day/night outages and wake-up spikes.

(a) One week of a smart beehive: synthetic weather drives the solar panel;
the battery carries the duty-cycled load through the night; when the charge
protection cuts off, the system goes dark until morning light — the outage
pattern the paper observes.  (b) A zoomed window resolving the individual
10-minute wake-up power spikes of the Pi 3b+.
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import PAPER, PaperConstants
from repro.core.client import average_power_for_period
from repro.core.routines import data_collection_routine
from repro.devices.device import DutyCycledDevice
from repro.devices.specs import RASPBERRY_PI_3B_PLUS, RASPBERRY_PI_ZERO_WH
from repro.energy.battery import Battery
from repro.energy.converter import DCDCConverter
from repro.energy.harvest import EnergyNode, HarvestSimulation
from repro.energy.solar import SolarPanel
from repro.experiments.report import ExperimentResult
from repro.sensing.hive import HiveMicroclimate
from repro.sensing.weather import WeatherModel
from repro.util.units import DAY, HOUR, MINUTE


def run(
    days: float = 7.0,
    wakeup_period: float = 10 * MINUTE,
    colony_strength: float = 0.0,  # the paper's trace predates colony introduction
    seed: int = 11,
    constants: PaperConstants = PAPER,
) -> ExperimentResult:
    duration = days * DAY

    # --- environment -------------------------------------------------------
    weather = WeatherModel().generate(duration=duration, step=300.0, seed=seed)
    hive = HiveMicroclimate(colony_strength=colony_strength)
    hive_temp = hive.simulate(weather.temperature_c, seed=seed)
    hive_hum = hive.humidity(hive_temp, weather.humidity_pct, seed=seed)

    # --- energy node under the duty-cycled load ------------------------------
    # Average load: the always-on Pi Zero plus the duty-cycled Pi 3b+ at the
    # configured wake-up period.
    pi_zero_idle = RASPBERRY_PI_ZERO_WH.watts("idle")
    pi3_avg = average_power_for_period(wakeup_period, constants)
    node = EnergyNode(
        panel=SolarPanel(),
        converter=DCDCConverter(),
        # A modest starting charge so the first nights already show outages.
        battery=Battery(capacity_joules=Battery.DEFAULT_CAPACITY * 0.15, soc=0.5),
    )
    sim = HarvestSimulation(
        node,
        irradiance_fn=lambda t: float(weather.irradiance.at(t)),
        load_fn=lambda t, available: pi_zero_idle + pi3_avg,
        step=300.0,
    )
    harvest = sim.run(duration)

    # --- Figure 2b: resolved wake-up spikes over 3 hours ---------------------
    device = DutyCycledDevice(RASPBERRY_PI_3B_PLUS, name="fig2b-pi3")
    routine = data_collection_routine(constants)
    window = 3 * HOUR
    t = 0.0
    while t + routine.total_duration < window:
        device.sleep_until(t)
        device.run_routine(t, list(routine))
        t += wakeup_period
    device.finish(window)
    spike_times, spike_watts = device.power_trace(step=5.0)

    result = ExperimentResult(
        experiment_id="fig2",
        title="Week-long activity trace and wake-up spikes",
        description=f"{days:g} days, wake-up every {wakeup_period/60:.0f} min, colony_strength={colony_strength}",
    )
    result.add_series("times_s", harvest.times)
    result.add_series("irradiance_wm2", harvest.irradiance)
    result.add_series("soc", harvest.soc)
    result.add_series("available", harvest.available.astype(float))
    result.add_series("hive_temperature_c", hive_temp.values)
    result.add_series("hive_humidity_pct", hive_hum.values)
    result.add_series("outdoor_temperature_c", weather.temperature_c.values)
    result.add_series("fig2b_times_s", spike_times)
    result.add_series("fig2b_watts", spike_watts)

    outages = harvest.outages()
    night_outages = 0
    for start, end in outages:
        mid_tod = ((start + end) / 2) % DAY
        if mid_tod < 7 * HOUR or mid_tod > 19 * HOUR:
            night_outages += 1
    result.compare("uptime fraction in (0, 1)", 1.0, float(0.0 < harvest.uptime_fraction < 1.0), tolerance_pct=0.0)
    result.notes.append(
        f"{len(outages)} outages over {days:g} days, {night_outages} centred on night hours "
        "(paper: 'moments when the system is not running due to the lack of light at night')"
    )
    # Spike cadence: count rising edges above 1 W in the 2b window.
    above = spike_watts > 1.0
    rising = int(np.sum(above[1:] & ~above[:-1]) + (1 if above[0] else 0))
    expected_spikes = int(window // wakeup_period)
    result.compare("wake-up spikes in 3 h @10 min", expected_spikes, rising, tolerance_pct=10.0)
    result.compare(
        "mean routine power (W)", constants.routine.power_w,
        float(np.mean(spike_watts[above])) if above.any() else 0.0, tolerance_pct=10.0
    )
    return result
