"""Figure 8: the three loss models and their combination (10 clients/slot).

Panels: (a) slot-saturation penalty raises the converged server cost
(paper: 186 J vs 116 J ideal); (b) the per-client transfer stretch shrinks
slots-per-cycle so more servers are needed (paper: 4 servers instead of 2
at 350 clients; min server cost 212 J); (c) Gaussian client dropout makes
apparent per-initial-client energy drop and produces sawtooth artifacts in
server counts; (d) all three combined.
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import PAPER, PaperConstants
from repro.core.losses import ClientLoss, LossConfig, SaturationPenalty, TransferTimePenalty
from repro.core.routines import make_scenario
from repro.core.sweep import sweep_clients
from repro.experiments.report import ExperimentResult
from repro.util.tabulate import render_table


def run(
    model: str = "svm",
    n_min: int = 10,
    n_max: int = 400,
    max_parallel: int = 10,
    seed: int = 42,
    constants: PaperConstants = PAPER,
) -> ExperimentResult:
    scenario = make_scenario("edge+cloud", model, max_parallel=max_parallel, constants=constants)
    n = np.arange(n_min, n_max + 1)

    configs = {
        "no_loss": LossConfig.none(),
        "loss_a": LossConfig(saturation=SaturationPenalty()),
        "loss_b": LossConfig(transfer=TransferTimePenalty()),
        "loss_c": LossConfig(client_loss=ClientLoss()),
        "loss_abc": LossConfig.all_paper(constants),
    }

    result = ExperimentResult(
        experiment_id="fig8",
        title="Large-scale simulation with loss models A/B/C",
        description=f"{n_min}..{n_max} clients, {max_parallel} clients/slot.",
    )
    result.add_series("n_clients", n)

    sweeps = {}
    for name, losses in configs.items():
        sweeps[name] = sweep_clients(n, scenario, losses=losses, seed=seed)
        result.add_series(f"server_per_client_j_{name}", sweeps[name].server_energy_per_client)
        result.add_series(f"total_per_client_j_{name}", sweeps[name].total_energy_per_client)
        result.add_series(f"n_servers_{name}", sweeps[name].n_servers)

    # (a) loss A converged server cost — evaluate at exactly one full server.
    def converged_server_cost(name: str) -> float:
        sw = sweeps[name]
        cap = sw.server_capacity
        one_full = sweep_clients(np.array([cap]), scenario, losses=configs[name], seed=seed)
        return float(one_full.server_energy_per_client[0])

    ideal = converged_server_cost("no_loss")
    loss_a = converged_server_cost("loss_a")
    result.compare("ideal server J/client (full)", constants.server_full_per_client_j, ideal, tolerance_pct=8.0)
    result.compare("loss-A server J/client (full)", constants.loss_a_server_converged_j, loss_a, tolerance_pct=15.0)

    # (b) loss B: server count at 350 clients and the minimum server cost.
    idx350 = int(np.searchsorted(n, 350))
    servers_no_loss_350 = int(sweeps["no_loss"].n_servers[idx350])
    servers_b_350 = int(sweeps["loss_b"].n_servers[idx350])
    result.compare("servers @350 no loss", 2, servers_no_loss_350, tolerance_pct=0.0)
    result.compare("servers @350 loss B", 4, servers_b_350, tolerance_pct=0.0)
    loss_b_min = converged_server_cost("loss_b")
    result.compare("loss-B min server J/client", constants.loss_b_server_min_j, loss_b_min, tolerance_pct=15.0)

    # (c) loss C: mean dropout fraction matches the configured 10 %.
    lost_fraction = float(np.mean(sweeps["loss_c"].n_lost / np.maximum(n, 1)))
    result.compare("loss-C mean dropout fraction", constants.loss_c_mean_fraction, lost_fraction, tolerance_pct=20.0)
    # Sawtooth artifact: server count is NOT monotone under dropout.
    monotone = bool(np.all(np.diff(sweeps["loss_c"].n_servers) >= 0))
    result.notes.append(f"loss-C server count monotone: {monotone} (paper observes non-monotone spikes)")

    result.tables.append(
        render_table(
            ["Config", "Servers @350", "Server J/client (full srv)", "Slots/server"],
            [
                (name, int(sw.n_servers[idx350]), converged_server_cost(name), sw.slots_per_server)
                for name, sw in sweeps.items()
            ],
            formats=[None, "d", ".1f", "d"],
            title="Figure 8 summary",
        )
    )
    return result
