"""Extension experiment: heterogeneous fleets with phase-staggered uploads.

Per-service wake-up frequencies (§IV) mixed behind shared servers: slower
uploaders striped across phases multiply a server's effective client
capacity proportionally to their period.
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import CYCLE_SECONDS
from repro.core.mixed import ClientGroup, simulate_mixed_fleet
from repro.core.routines import EDGE_CLOUD_SVM
from repro.experiments.report import ExperimentResult
from repro.util.tabulate import render_table


def run(fleet_size: int = 600) -> ExperimentResult:
    server = EDGE_CLOUD_SVM.server
    capacity = server.slots_per_cycle() * server.max_parallel
    result = ExperimentResult(
        experiment_id="ext-mixed",
        title="Heterogeneous wake-up periods behind shared servers",
        description=f"{fleet_size} hives; server capacity {capacity} uploads per 5-minute cycle.",
    )
    rows = []
    multiples = (1, 2, 4, 6, 12)
    servers_needed = []
    for mult in multiples:
        client = EDGE_CLOUD_SVM.client.with_period(CYCLE_SECONDS * mult)
        r = simulate_mixed_fleet([ClientGroup(f"{mult}x", client, fleet_size)], server)
        servers_needed.append(r.n_servers)
        rows.append((
            f"{5*mult} min",
            r.n_servers,
            r.peak_due,
            r.server_energy_per_cycle,
            r.server_energy_per_cycle / fleet_size,
        ))
    result.tables.append(render_table(
        ["Upload period", "Servers", "Peak uploads/cycle", "Server J/cycle", "J/cycle/hive"],
        rows,
        formats=[None, "d", "d", ".0f", ".2f"],
        title=f"{fleet_size} hives at one period each",
    ))
    result.add_series("period_multiples", np.asarray(multiples))
    result.add_series("servers_needed", np.asarray(servers_needed))
    # Capacity multiplies with the period multiple: servers = ceil(N / (k*capacity)).
    expected = [int(np.ceil(fleet_size / (k * capacity))) for k in multiples]
    result.compare("servers @1x period", expected[0], servers_needed[0], tolerance_pct=0.0)
    result.compare("servers @6x period", expected[3], servers_needed[3], tolerance_pct=0.0)

    # A realistic mixed apiary.
    mixed = simulate_mixed_fleet(
        [
            ClientGroup("audio-5min", EDGE_CLOUD_SVM.client, 120),
            ClientGroup("telemetry-30min", EDGE_CLOUD_SVM.client.with_period(6 * CYCLE_SECONDS), 600),
        ],
        server,
    )
    result.tables.append(mixed.render())
    result.compare("servers for 120 fast + 600 slow hives", 2, mixed.n_servers, tolerance_pct=0.0)
    result.notes.append(
        "phase striping makes the slot calendar the scarce resource: the same server pool "
        "carries k× more hives at k× the upload period"
    )
    return result
