"""Extension experiment: deriving loss model B from channel contention.

Realizes synchronized slot uploads over the calibrated Wi-Fi link with
processor-sharing contention and fits the slope of receive time vs
occupancy — the empirical counterpart of the paper's postulated 1.5 s per
client.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.parallel import parallel_map
from repro.experiments.report import ExperimentResult
from repro.network.contention import fitted_loss_b_seconds_per_client, simulate_slot_contention
from repro.network.wifi import WIFI_80211N_2G4
from repro.util.tabulate import render_table

#: One 10-second audio clip — the per-hive upload in the edge+cloud slot.
AUDIO_PAYLOAD_BYTES = 441_000


def _occupancy_trials(args) -> Tuple[float, float]:
    """Worker: (mean, std) slot receive time for one occupancy level.

    The per-trial seeds arrive pre-drawn (sequentially, from the single
    experiment stream) so fanning occupancies out over processes cannot
    change any draw — parallel results match serial bit-for-bit.
    """
    k, trial_seeds = args
    times = [
        simulate_slot_contention(
            AUDIO_PAYLOAD_BYTES, k, WIFI_80211N_2G4, seed=s
        ).slot_receive_time
        for s in trial_seeds
    ]
    return float(np.mean(times)), float(np.std(times))


def run(
    max_clients: int = 10,
    n_trials: int = 30,
    seed: int = 0,
    workers: Optional[int] = None,
    checkpoint=None,
) -> ExperimentResult:
    """``checkpoint`` is an optional :class:`repro.resilience.checkpoint.
    RunCheckpoint`: the occupancy sweep records per-chunk results durably;
    the pre-drawn per-trial seeds ride inside the work items, so resumed
    chunks are bit-identical to fresh ones."""
    result = ExperimentResult(
        experiment_id="ext-contention",
        title="Loss model B from first principles (slot contention)",
        description=(
            f"{n_trials} stochastic slot realizations per occupancy on the deployed "
            "2.4 GHz link; fair channel sharing with per-client radio caps."
        ),
    )
    rows = []
    occupancies = list(range(1, max_clients + 1))
    rng = np.random.default_rng(seed)
    work: List[tuple] = [
        (k, [int(rng.integers(2**62)) for _ in range(n_trials)]) for k in occupancies
    ]
    stage = checkpoint.stage("occupancy") if checkpoint is not None else None
    stats = parallel_map(_occupancy_trials, work, workers=workers, checkpoint=stage)
    means = [m for m, _ in stats]
    for k, (mean, std) in zip(occupancies, stats):
        rows.append((k, mean, std))
    result.add_series("occupancy", np.asarray(occupancies))
    result.add_series("mean_receive_time_s", np.asarray(means))
    result.tables.append(render_table(
        ["Clients in slot", "Mean receive time (s)", "Std (s)"],
        rows,
        formats=["d", ".1f", ".2f"],
        title="Slot receive window vs occupancy",
    ))
    slope = fitted_loss_b_seconds_per_client(
        AUDIO_PAYLOAD_BYTES, WIFI_80211N_2G4, max_clients=max_clients,
        n_trials=n_trials, seed=seed,
    )
    # The paper's loss-B parameter: 1.5 s per client.  Our derived slope for
    # the audio payload on the deployed link lands in the same regime.
    result.compare("loss-B slope (s/client)", 1.5, slope)
    result.notes.append(
        "the postulated 1.5 s/client corresponds to sharing ~1 audio clip per hive on the "
        "deployed ~1.25 Mbit/s uplink at roughly half fair-sharing efficiency; the cumulative "
        "reading of loss B (slot window linear in occupancy) is what contention predicts"
    )
    return result
