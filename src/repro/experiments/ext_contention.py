"""Extension experiment: deriving loss model B from channel contention.

Realizes synchronized slot uploads over the calibrated Wi-Fi link with
processor-sharing contention and fits the slope of receive time vs
occupancy — the empirical counterpart of the paper's postulated 1.5 s per
client.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import ExperimentResult
from repro.network.contention import fitted_loss_b_seconds_per_client, simulate_slot_contention
from repro.network.wifi import WIFI_80211N_2G4
from repro.util.tabulate import render_table

#: One 10-second audio clip — the per-hive upload in the edge+cloud slot.
AUDIO_PAYLOAD_BYTES = 441_000


def run(max_clients: int = 10, n_trials: int = 30, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext-contention",
        title="Loss model B from first principles (slot contention)",
        description=(
            f"{n_trials} stochastic slot realizations per occupancy on the deployed "
            "2.4 GHz link; fair channel sharing with per-client radio caps."
        ),
    )
    rows = []
    occupancies = list(range(1, max_clients + 1))
    means = []
    rng = np.random.default_rng(seed)
    for k in occupancies:
        times = [
            simulate_slot_contention(AUDIO_PAYLOAD_BYTES, k, WIFI_80211N_2G4,
                                     seed=int(rng.integers(2**62))).slot_receive_time
            for _ in range(n_trials)
        ]
        means.append(float(np.mean(times)))
        rows.append((k, means[-1], float(np.std(times))))
    result.add_series("occupancy", np.asarray(occupancies))
    result.add_series("mean_receive_time_s", np.asarray(means))
    result.tables.append(render_table(
        ["Clients in slot", "Mean receive time (s)", "Std (s)"],
        rows,
        formats=["d", ".1f", ".2f"],
        title="Slot receive window vs occupancy",
    ))
    slope = fitted_loss_b_seconds_per_client(
        AUDIO_PAYLOAD_BYTES, WIFI_80211N_2G4, max_clients=max_clients,
        n_trials=n_trials, seed=seed,
    )
    # The paper's loss-B parameter: 1.5 s per client.  Our derived slope for
    # the audio payload on the deployed link lands in the same regime.
    result.compare("loss-B slope (s/client)", 1.5, slope)
    result.notes.append(
        "the postulated 1.5 s/client corresponds to sharing ~1 audio clip per hive on the "
        "deployed ~1.25 Mbit/s uplink at roughly half fair-sharing efficiency; the cumulative "
        "reading of loss B (slot window linear in occupancy) is what contention predicts"
    )
    return result
