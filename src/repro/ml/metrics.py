"""Classification metrics."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def _check_pair(y_true, y_pred) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def accuracy(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Confusion matrix ``M[i, j]`` = count(true=labels[i], pred=labels[j])."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {lab: i for i, lab in enumerate(labels.tolist())}
    M = np.zeros((labels.size, labels.size), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        M[index[t], index[p]] += 1
    return M


def precision_recall_f1(y_true, y_pred, positive=1) -> Dict[str, float]:
    """Binary precision/recall/F1 for the ``positive`` label."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    tp = int(np.sum((y_true == positive) & (y_pred == positive)))
    fp = int(np.sum((y_true != positive) & (y_pred == positive)))
    fn = int(np.sum((y_true == positive) & (y_pred != positive)))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return {"precision": precision, "recall": recall, "f1": f1}
