"""Feature standardization."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Zero-mean / unit-variance standardization fit on training data.

    Constant features (zero variance) are left centered but unscaled, so
    transforming never divides by zero.
    """

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = self._check(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("scaler is not fitted")
        X = self._check(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(f"feature dim {X.shape[1]} != fitted dim {self.mean_.shape[0]}")
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("scaler is not fitted")
        X = self._check(X)
        return X * self.scale_ + self.mean_

    @staticmethod
    def _check(X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        return X
