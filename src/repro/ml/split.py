"""Dataset splitting utilities."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.util.rng import SeedLike, make_rng


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.25,
    seed: SeedLike = 0,
    stratify: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle-split into train/test; stratified by label by default."""
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = make_rng(seed)
    n = X.shape[0]
    test_idx_parts = []
    if stratify:
        for lab in np.unique(y):
            idx = np.nonzero(y == lab)[0]
            idx = rng.permutation(idx)
            n_test = max(1, int(round(idx.size * test_fraction)))
            test_idx_parts.append(idx[:n_test])
        test_idx = np.concatenate(test_idx_parts)
    else:
        perm = rng.permutation(n)
        test_idx = perm[: max(1, int(round(n * test_fraction)))]
    mask = np.zeros(n, dtype=bool)
    mask[test_idx] = True
    return X[~mask], X[mask], y[~mask], y[mask]


def kfold_indices(n: int, k: int = 5, seed: SeedLike = 0) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, test_idx)`` for k shuffled folds."""
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if n < k:
        raise ValueError(f"cannot make {k} folds from {n} samples")
    rng = make_rng(seed)
    perm = rng.permutation(n)
    folds = np.array_split(perm, k)
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        yield train, test
