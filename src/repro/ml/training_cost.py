"""Training-energy accounting and edge/cloud amortization.

§V sets training aside: "the training phase of CNN models has a significant
energy cost, but it is a less frequent task than the use of the trained
models".  This module quantifies that deferral:

* :func:`training_flops` — FLOPs for a full training run (forward + backward
  ≈ 3× forward per sample, the standard estimate);
* :class:`TrainingCostModel` — converts to time/energy on a device via the
  same calibrated :class:`~repro.ml.nn.flops.InferenceCostModel` machinery;
* :func:`retraining_amortization` — given a retraining cadence, the energy
  a retraining run adds per inference cycle, and where to place it.

The paper's setting checks out quantitatively: ResNet-18 over 1647 clips ×
4 epochs is minutes on the RTX 2070 server but would be *days* of the Pi's
entire energy budget — training belongs in the cloud even when inference
does not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ml.nn.flops import InferenceCostModel, count_flops
from repro.util.validation import check_positive

#: Backward pass ≈ 2× the forward FLOPs; a training step is forward+backward.
TRAINING_FLOPS_MULTIPLIER = 3.0


def training_flops(
    model,
    input_shape,
    n_samples: int,
    epochs: int,
    multiplier: float = TRAINING_FLOPS_MULTIPLIER,
) -> float:
    """FLOPs of a full training run over ``n_samples × epochs`` steps."""
    if n_samples < 1 or epochs < 1:
        raise ValueError("n_samples and epochs must be >= 1")
    check_positive(multiplier, "multiplier")
    forward = count_flops(model, input_shape)
    return forward * multiplier * n_samples * epochs


@dataclass(frozen=True)
class TrainingCost:
    """Time/energy of one training run on one device."""

    device: str
    flops: float
    seconds: float
    joules: float

    @property
    def hours(self) -> float:
        return self.seconds / 3600.0


def training_cost(
    model,
    input_shape,
    n_samples: int,
    epochs: int,
    cost_model: InferenceCostModel,
    device: str = "device",
) -> TrainingCost:
    """Price a training run through a calibrated device cost model."""
    flops = training_flops(model, input_shape, n_samples, epochs)
    seconds = cost_model.seconds(flops)
    return TrainingCost(device=device, flops=flops, seconds=seconds,
                        joules=seconds * cost_model.active_watts)


@dataclass(frozen=True)
class AmortizationReport:
    """Energy a retraining cadence adds per inference cycle."""

    training: TrainingCost
    cycles_between_retraining: float
    extra_joules_per_cycle: float

    def render(self) -> str:
        from repro.util.tabulate import render_kv

        return render_kv(
            [
                ("device", self.training.device),
                ("training run", f"{self.training.joules:.0f} J / {self.training.hours:.2f} h"),
                ("cycles between retrainings", f"{self.cycles_between_retraining:.0f}"),
                ("amortized J per cycle", f"{self.extra_joules_per_cycle:.2f}"),
            ],
            title="Retraining amortization",
        )


def retraining_amortization(
    training: TrainingCost,
    retraining_interval_s: float,
    cycle_period_s: float = 300.0,
) -> AmortizationReport:
    """Spread one training run's energy over the cycles until the next one."""
    check_positive(retraining_interval_s, "retraining_interval_s")
    check_positive(cycle_period_s, "cycle_period_s")
    cycles = retraining_interval_s / cycle_period_s
    return AmortizationReport(
        training=training,
        cycles_between_retraining=cycles,
        extra_joules_per_cycle=training.joules / cycles,
    )


def paper_server_training_model() -> InferenceCostModel:
    """Training-throughput model of the RTX 2070 server.

    NOT the Table II single-inference anchor (its 1.0 s is dominated by
    request latency and I/O, implying under 1 GFLOPS): batched training
    streams at an effective ~100 GFLOPS including the input pipeline, which
    reproduces §V's "train ... in few minutes" for 1647 clips × 4 epochs.
    Board+CPU draw under training load ≈ 180 W.
    """
    return InferenceCostModel(active_watts=180.0, effective_flops_per_s=1e11)


def paper_edge_training_model() -> InferenceCostModel:
    """Training-throughput model of the Pi 3b+.

    Reuses the *measured* effective inference rate (the Figure-5 anchor:
    0.85 GFLOP in 32.6 s of compute ≈ 26 MFLOPS — interpreter-bound), since
    edge training would run the same NumPy-class stack; draw ≈ the 2.52 W
    active figure.
    """
    from repro.core.calibration import PAPER
    from repro.ml.nn.resnet import resnet18

    anchor = count_flops(resnet18(in_channels=1), (1, PAPER.cnn_image_size, PAPER.cnn_image_size))
    return InferenceCostModel.calibrate(
        anchor_flops=anchor,
        anchor_seconds=PAPER.cnn_edge_s,
        active_watts=PAPER.cnn_edge_j / PAPER.cnn_edge_s,
        fixed_overhead_s=5.0,
    )
