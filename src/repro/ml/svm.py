"""Binary support-vector classifier trained with SMO.

A compact, correct implementation of Platt's Sequential Minimal Optimization
with the standard working-set heuristics (maximal KKT violator paired with
the max-|E_i − E_j| second choice), precomputed Gram matrix, and shrinking
of converged multipliers.  Defaults match the paper: RBF kernel, ``C=20``,
``gamma=1e-5``.

The Gram matrix is precomputed (n ≤ a few thousand in all our corpora), so
one SMO step is O(n) and training is O(n² · passes).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ml.kernels import make_kernel
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_positive


class SVC:
    """Support-vector classification (binary).

    Parameters
    ----------
    C:
        Box constraint (paper: 20).
    kernel:
        ``'rbf' | 'linear' | 'poly'`` or a callable ``k(X, Z) -> Gram``.
    gamma:
        RBF width (paper: 1e-5) — on standardized features prefer
        ``gamma='scale'`` which uses ``1 / (n_features · var(X))``.
    tol:
        KKT violation tolerance.
    max_passes:
        Number of full alpha sweeps without progress before stopping.
    max_iter:
        Hard cap on SMO iterations (safety valve).
    """

    def __init__(
        self,
        C: float = 20.0,
        kernel: str | Callable = "rbf",
        gamma: float | str = 1e-5,
        tol: float = 1e-3,
        max_passes: int = 5,
        max_iter: int = 100_000,
        seed: SeedLike = 0,
    ) -> None:
        self.C = check_positive(C, "C")
        self.kernel = kernel
        self.gamma = gamma
        self.tol = check_positive(tol, "tol")
        self.max_passes = int(max_passes)
        self.max_iter = int(max_iter)
        self.seed = seed
        self._fitted = False

    # -- fitting -----------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "SVC":
        """Fit on ``X`` (n, d) and binary labels ``y`` (0/1 or ±1)."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError(f"y shape {y.shape} does not match X rows {X.shape[0]}")
        classes = np.unique(y)
        if classes.size != 2:
            raise ValueError(f"binary classifier needs exactly 2 classes, got {classes!r}")
        self.classes_ = classes
        t = np.where(y == classes[1], 1.0, -1.0)  # internal ±1 targets

        gamma = self._resolve_gamma(X)
        if callable(self.kernel):
            self._kernel_fn = self.kernel
        else:
            self._kernel_fn = make_kernel(self.kernel, gamma=gamma)
        self._gamma_value = gamma

        n = X.shape[0]
        K = self._kernel_fn(X, X)
        alpha = np.zeros(n)
        b = 0.0
        # Error cache: E_i = f(x_i) - t_i.  f = (alpha*t) @ K + b.
        E = -t.copy()  # all-zero alpha => f = 0

        rng = make_rng(self.seed)
        passes = 0
        iters = 0
        examine_all = True
        while (passes < self.max_passes) and (iters < self.max_iter):
            changed = 0
            idx_pool = np.arange(n) if examine_all else np.nonzero((alpha > 0) & (alpha < self.C))[0]
            order = rng.permutation(idx_pool)
            for i in order:
                changed += self._examine(i, X, t, K, alpha, E)
                iters += 1
                if iters >= self.max_iter:
                    break
            if examine_all:
                examine_all = False
            elif changed == 0:
                examine_all = True
                passes += 1
            if changed > 0:
                passes = 0
        # Recover bias from any free support vector; fall back to margin average.
        self._finalize(X, t, K, alpha, E)
        return self

    def _resolve_gamma(self, X: np.ndarray) -> float:
        if isinstance(self.gamma, str):
            if self.gamma == "scale":
                var = X.var()
                return 1.0 / (X.shape[1] * var) if var > 0 else 1.0
            raise ValueError(f"unknown gamma spec {self.gamma!r} (use a float or 'scale')")
        return check_positive(float(self.gamma), "gamma")

    def _examine(self, i: int, X, t, K, alpha, E) -> int:
        """Platt's examineExample: returns 1 if a pair was optimized."""
        Ei = E[i]
        ri = Ei * t[i]
        if (ri < -self.tol and alpha[i] < self.C) or (ri > self.tol and alpha[i] > 0):
            # Second-choice heuristic: maximize |Ei - Ej| over free alphas.
            free = np.nonzero((alpha > 0) & (alpha < self.C))[0]
            if free.size > 1:
                j = int(free[np.argmax(np.abs(E[free] - Ei))])
                if j != i and self._step(i, j, t, K, alpha, E):
                    return 1
            # Fall back: all indices in a fixed scan.
            for j in np.nonzero((alpha > 0) & (alpha < self.C))[0]:
                if j != i and self._step(i, int(j), t, K, alpha, E):
                    return 1
            for j in range(len(alpha)):
                if j != i and self._step(i, j, t, K, alpha, E):
                    return 1
        return 0

    def _step(self, i: int, j: int, t, K, alpha, E) -> bool:
        """Jointly optimize (alpha_i, alpha_j); returns True on progress."""
        ai_old, aj_old = alpha[i], alpha[j]
        if t[i] != t[j]:
            L = max(0.0, aj_old - ai_old)
            H = min(self.C, self.C + aj_old - ai_old)
        else:
            L = max(0.0, ai_old + aj_old - self.C)
            H = min(self.C, ai_old + aj_old)
        if H - L < 1e-12:
            return False
        eta = K[i, i] + K[j, j] - 2.0 * K[i, j]
        if eta <= 1e-12:
            return False  # non-positive curvature: skip (rare with PD kernels)
        aj = aj_old + t[j] * (E[i] - E[j]) / eta
        aj = min(max(aj, L), H)
        if abs(aj - aj_old) < 1e-8 * (aj + aj_old + 1e-8):
            return False
        ai = ai_old + t[i] * t[j] * (aj_old - aj)
        alpha[i], alpha[j] = ai, aj
        # Incremental error-cache update (O(n)): f changes by
        # d_i*K[i,:] + d_j*K[j,:] where d = t*(a_new - a_old).
        di = t[i] * (ai - ai_old)
        dj = t[j] * (aj - aj_old)
        E += di * K[i] + dj * K[j]
        return True

    def _finalize(self, X, t, K, alpha, E) -> None:
        sv_mask = alpha > 1e-8
        self.support_ = np.nonzero(sv_mask)[0]
        self.support_vectors_ = X[sv_mask]
        self.dual_coef_ = (alpha * t)[sv_mask]
        # Bias: for free SVs, t_i = f(x_i) => b = t_i - sum(dual*K).
        free = (alpha > 1e-8) & (alpha < self.C - 1e-8)
        f_no_b = K[:, sv_mask] @ self.dual_coef_
        if np.any(free):
            self.intercept_ = float(np.mean(t[free] - f_no_b[free]))
        elif np.any(sv_mask):
            self.intercept_ = float(np.mean(t[sv_mask] - f_no_b[sv_mask]))
        else:
            # Degenerate: no support vectors (identical classes / zero data).
            self.intercept_ = float(np.mean(t))
        self.n_iter_ = None
        self._fitted = True

    # -- inference ----------------------------------------------------------
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed distance-like score; positive → class ``classes_[1]``."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if self.support_vectors_.shape[0] == 0:
            return np.full(X.shape[0], self.intercept_)
        K = self._kernel_fn(X, self.support_vectors_)
        return K @ self.dual_coef_ + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels in the original label space."""
        scores = self.decision_function(X)
        return np.where(scores >= 0, self.classes_[1], self.classes_[0])

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

    @property
    def n_support_(self) -> int:
        self._check_fitted()
        return int(self.support_.size)

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("SVC is not fitted; call fit() first")
