"""ResNet architecture (He et al.) in the from-scratch layer stack.

``resnet18(width=1.0)`` builds the paper's queen-detection CNN; the width
multiplier and an optional reduced stem let tests train miniature variants
in seconds while keeping the exact residual topology.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Layer,
    Linear,
    MaxPool2d,
    Parameter,
    ReLU,
    Sequential,
)
from repro.util.rng import SeedLike, derive_seed


class BasicBlock(Layer):
    """Two 3×3 convs with a residual shortcut (projection when shapes change)."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1, seed: SeedLike = 0) -> None:
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False,
                            seed=derive_seed(seed, "conv1"))
        self.bn1 = BatchNorm2d(out_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False,
                            seed=derive_seed(seed, "conv2"))
        self.bn2 = BatchNorm2d(out_channels)
        self.relu2 = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Optional[Sequential] = Sequential([
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False,
                       seed=derive_seed(seed, "proj")),
                BatchNorm2d(out_channels),
            ])
        else:
            self.shortcut = None
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        main = self.conv1.forward(x, training)
        main = self.bn1.forward(main, training)
        main = self.relu1.forward(main, training)
        main = self.conv2.forward(main, training)
        main = self.bn2.forward(main, training)
        short = self.shortcut.forward(x, training) if self.shortcut is not None else x
        out = self.relu2.forward(main + short, training)
        self._cache = True
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        grad = self.relu2.backward(grad)
        # Sum node: gradient flows unchanged into both branches.
        g_main = self.bn2.backward(grad)
        g_main = self.conv2.backward(g_main)
        g_main = self.relu1.backward(g_main)
        g_main = self.bn1.backward(g_main)
        g_main = self.conv1.backward(g_main)
        g_short = self.shortcut.backward(grad) if self.shortcut is not None else grad
        return g_main + g_short

    def parameters(self) -> List[Parameter]:
        params = (
            self.conv1.parameters()
            + self.bn1.parameters()
            + self.conv2.parameters()
            + self.bn2.parameters()
        )
        if self.shortcut is not None:
            params += self.shortcut.parameters()
        return params


class ResNet(Layer):
    """Generic ResNet over :class:`BasicBlock` stages."""

    def __init__(
        self,
        stage_blocks: List[int],
        num_classes: int = 2,
        in_channels: int = 1,
        base_channels: int = 64,
        stem_kernel: int = 7,
        stem_stride: int = 2,
        stem_pool: bool = True,
        seed: SeedLike = 0,
    ) -> None:
        if not stage_blocks:
            raise ValueError("stage_blocks must be non-empty")
        layers: List[Layer] = [
            Conv2d(in_channels, base_channels, stem_kernel, stride=stem_stride,
                   padding=stem_kernel // 2, bias=False, seed=derive_seed(seed, "stem")),
            BatchNorm2d(base_channels),
            ReLU(),
        ]
        if stem_pool:
            layers.append(MaxPool2d(3, stride=2, padding=1))
        channels = base_channels
        for stage, n_blocks in enumerate(stage_blocks):
            out_ch = base_channels * (2**stage)
            for b in range(n_blocks):
                stride = 2 if (stage > 0 and b == 0) else 1
                layers.append(BasicBlock(channels, out_ch, stride=stride,
                                         seed=derive_seed(seed, "block", stage, b)))
                channels = out_ch
        layers += [GlobalAvgPool2d()]
        self.backbone = Sequential(layers)
        self.head = Linear(channels, num_classes, seed=derive_seed(seed, "head"))
        self.num_classes = num_classes
        self.feature_channels = channels

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        feats = self.backbone.forward(x, training)
        return self.head.forward(feats, training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.head.backward(grad)
        return self.backbone.backward(grad)

    def parameters(self) -> List[Parameter]:
        return self.backbone.parameters() + self.head.parameters()

    def predict(self, x: np.ndarray, batch_size: int = 32) -> np.ndarray:
        """Class predictions in eval mode, batched to bound memory."""
        out = []
        for i in range(0, x.shape[0], batch_size):
            logits = self.forward(x[i : i + batch_size], training=False)
            out.append(logits.argmax(axis=1))
        return np.concatenate(out)


def resnet18(
    num_classes: int = 2,
    in_channels: int = 1,
    width: float = 1.0,
    seed: SeedLike = 0,
) -> ResNet:
    """ResNet-18: stages [2, 2, 2, 2], 64·width base channels.

    ``width < 1`` builds a proportionally narrower network with the same
    depth/topology — the paper's architecture at test-tractable cost.
    """
    base = max(int(round(64 * width)), 4)
    return ResNet([2, 2, 2, 2], num_classes=num_classes, in_channels=in_channels,
                  base_channels=base, seed=seed)


def small_cnn(num_classes: int = 2, in_channels: int = 1, seed: SeedLike = 0) -> ResNet:
    """A two-stage miniature residual CNN for fast training experiments."""
    return ResNet(
        [1, 1],
        num_classes=num_classes,
        in_channels=in_channels,
        base_channels=8,
        stem_kernel=3,
        stem_stride=1,
        stem_pool=True,
        seed=seed,
    )
