"""Optimizers."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.ml.nn.layers import Parameter
from repro.util.validation import check_in_range, check_non_negative, check_positive


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        parameters: List[Parameter],
        lr: float = 0.001,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        if not parameters:
            raise ValueError("no parameters to optimize")
        self.parameters = list(parameters)
        self.lr = check_positive(lr, "lr")
        self.momentum = check_in_range(momentum, "momentum", 0.0, 1.0, high_inclusive=False)
        self.weight_decay = check_non_negative(weight_decay, "weight_decay")
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one update from accumulated gradients."""
        for p, v in zip(self.parameters, self._velocity):
            g = p.grad
            if self.weight_decay > 0:
                g = g + self.weight_decay * p.data
            v *= self.momentum
            v -= self.lr * g
            p.data += v

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def set_lr(self, lr: float) -> None:
        self.lr = check_positive(lr, "lr")
