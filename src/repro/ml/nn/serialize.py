"""Model weight serialization (.npz).

A released system needs to ship trained weights to the edge; this module
saves/loads any of our layer stacks to a NumPy ``.npz`` archive.  The
archive stores every :class:`~repro.ml.nn.layers.Parameter` plus batch-norm
running statistics, keyed by a deterministic walk of the module tree, and a
``__format__`` version for forward compatibility.
"""

from __future__ import annotations

import io
from typing import Dict, Union

import numpy as np

from repro.ml.nn.layers import BatchNorm2d, Layer, Sequential
from repro.ml.nn.resnet import BasicBlock, ResNet

FORMAT_VERSION = 1


def _walk(module, prefix: str):
    """Yield ``(path, layer)`` pairs in deterministic order."""
    if isinstance(module, Sequential):
        for i, layer in enumerate(module.layers):
            yield from _walk(layer, f"{prefix}.{i}")
    elif isinstance(module, BasicBlock):
        yield from _walk(module.conv1, f"{prefix}.conv1")
        yield from _walk(module.bn1, f"{prefix}.bn1")
        yield from _walk(module.conv2, f"{prefix}.conv2")
        yield from _walk(module.bn2, f"{prefix}.bn2")
        if module.shortcut is not None:
            yield from _walk(module.shortcut, f"{prefix}.shortcut")
    elif isinstance(module, ResNet):
        yield from _walk(module.backbone, f"{prefix}.backbone")
        yield from _walk(module.head, f"{prefix}.head")
    else:
        yield prefix, module


def state_dict(model: Layer) -> Dict[str, np.ndarray]:
    """Collect every parameter and running statistic into a flat dict."""
    state: Dict[str, np.ndarray] = {}
    for path, layer in _walk(model, "model"):
        for p in layer.parameters():
            state[f"{path}.{p.name}"] = p.data
        if isinstance(layer, BatchNorm2d):
            state[f"{path}.running_mean"] = layer.running_mean
            state[f"{path}.running_var"] = layer.running_var
    return state


def load_state_dict(model: Layer, state: Dict[str, np.ndarray]) -> None:
    """Copy a :func:`state_dict` back into ``model`` (strict matching)."""
    expected = state_dict(model)
    missing = set(expected) - set(state)
    unexpected = set(state) - set(expected) - {"__format__"}
    if missing or unexpected:
        raise ValueError(
            f"state mismatch: missing={sorted(missing)[:3]}..., unexpected={sorted(unexpected)[:3]}..."
            if len(missing) + len(unexpected) > 6
            else f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
        )
    for path, layer in _walk(model, "model"):
        for p in layer.parameters():
            src = np.asarray(state[f"{path}.{p.name}"])
            if src.shape != p.data.shape:
                raise ValueError(f"{path}.{p.name}: shape {src.shape} != {p.data.shape}")
            p.data[...] = src
        if isinstance(layer, BatchNorm2d):
            layer.running_mean[...] = np.asarray(state[f"{path}.running_mean"])
            layer.running_var[...] = np.asarray(state[f"{path}.running_var"])


def save_model(model: Layer, path: Union[str, io.IOBase]) -> None:
    """Save a model's weights to ``path`` (``.npz``)."""
    state = state_dict(model)
    np.savez_compressed(path, __format__=np.array(FORMAT_VERSION), **state)


def load_model(model: Layer, path: Union[str, io.IOBase]) -> Layer:
    """Load weights saved by :func:`save_model` into ``model`` (in place)."""
    with np.load(path) as archive:
        fmt = int(archive["__format__"]) if "__format__" in archive else None
        if fmt != FORMAT_VERSION:
            raise ValueError(f"unsupported weight-archive format {fmt!r} (expected {FORMAT_VERSION})")
        state = {k: archive[k] for k in archive.files if k != "__format__"}
    load_state_dict(model, state)
    return model
