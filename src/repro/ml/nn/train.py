"""Mini-batch training loop.

The paper trains its CNN for 4 epochs at learning rate 0.001; those are the
defaults here.  The loop is deliberately simple (shuffle, batch, forward,
cross-entropy, backward, SGD step) and records per-epoch loss/accuracy so
experiments can assert convergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.ml.nn.functional import cross_entropy_loss
from repro.ml.nn.layers import Layer
from repro.ml.nn.optim import SGD
from repro.util.rng import make_rng
from repro.util.validation import check_positive


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters (defaults: paper §V — 4 epochs, lr 0.001)."""

    epochs: int = 4
    batch_size: int = 16
    lr: float = 0.001
    momentum: float = 0.9
    weight_decay: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        check_positive(self.lr, "lr")


@dataclass
class TrainHistory:
    """Per-epoch records."""

    losses: List[float] = field(default_factory=list)
    train_accuracies: List[float] = field(default_factory=list)
    val_accuracies: List[float] = field(default_factory=list)


class Trainer:
    """Trains a :class:`~repro.ml.nn.layers.Layer` classifier."""

    def __init__(self, model: Layer, config: TrainConfig = TrainConfig()) -> None:
        self.model = model
        self.config = config
        self.optimizer = SGD(
            model.parameters(),
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        self.history = TrainHistory()

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        X_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
    ) -> TrainHistory:
        """Train on ``(X, y)``; optionally track validation accuracy."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 4:
            raise ValueError(f"X must be NCHW, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError("y must be (N,) class indices")
        rng = make_rng(self.config.seed)
        n = X.shape[0]
        for _epoch in range(self.config.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            correct = 0
            for start in range(0, n, self.config.batch_size):
                idx = order[start : start + self.config.batch_size]
                xb, yb = X[idx], y[idx]
                self.optimizer.zero_grad()
                logits = self.model.forward(xb, training=True)
                loss, grad = cross_entropy_loss(logits, yb)
                self.model.backward(grad)
                self.optimizer.step()
                epoch_loss += loss * idx.size
                correct += int(np.sum(logits.argmax(axis=1) == yb))
            self.history.losses.append(epoch_loss / n)
            self.history.train_accuracies.append(correct / n)
            if X_val is not None and y_val is not None:
                self.history.val_accuracies.append(self.evaluate(X_val, y_val))
        return self.history

    def evaluate(self, X: np.ndarray, y: np.ndarray, batch_size: int = 64) -> float:
        """Accuracy in eval mode."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        correct = 0
        for i in range(0, X.shape[0], batch_size):
            logits = self.model.forward(X[i : i + batch_size], training=False)
            correct += int(np.sum(logits.argmax(axis=1) == y[i : i + batch_size]))
        return correct / X.shape[0]
