"""From-scratch CNN stack (NumPy), sized for the queen-detection service.

Layers follow the forward/backward protocol of :class:`repro.ml.nn.layers.Layer`;
:func:`repro.ml.nn.resnet.resnet18` builds the paper's architecture (with a
width multiplier so tests can train scaled-down variants quickly), and
:mod:`repro.ml.nn.flops` provides the FLOP → time → energy model used to
reproduce Figure 5's quadratic energy curve.
"""

from repro.ml.nn.layers import (
    Layer,
    Conv2d,
    BatchNorm2d,
    ReLU,
    MaxPool2d,
    GlobalAvgPool2d,
    Linear,
    Flatten,
    Sequential,
    Add,
)
from repro.ml.nn.functional import im2col, col2im, softmax, cross_entropy_loss
from repro.ml.nn.resnet import BasicBlock, ResNet, resnet18, small_cnn
from repro.ml.nn.optim import SGD
from repro.ml.nn.train import Trainer, TrainConfig
from repro.ml.nn.flops import count_flops, InferenceCostModel
from repro.ml.nn.serialize import save_model, load_model, state_dict, load_state_dict

__all__ = [
    "Layer",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Linear",
    "Flatten",
    "Sequential",
    "Add",
    "im2col",
    "col2im",
    "softmax",
    "cross_entropy_loss",
    "BasicBlock",
    "ResNet",
    "resnet18",
    "small_cnn",
    "SGD",
    "Trainer",
    "TrainConfig",
    "count_flops",
    "InferenceCostModel",
    "save_model",
    "load_model",
    "state_dict",
    "load_state_dict",
]
