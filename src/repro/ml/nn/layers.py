"""Neural-network layers with explicit forward/backward.

Every layer implements

* ``forward(x, training=False) -> y`` caching what backward needs,
* ``backward(grad_y) -> grad_x`` accumulating parameter gradients,
* ``parameters() -> list[Parameter]``.

Arrays are NCHW float64 (double precision keeps the finite-difference
gradient tests tight; the corpora are small enough that speed is not
dominated by dtype).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.ml.nn.functional import col2im, im2col
from repro.util.rng import SeedLike, make_rng


class Parameter:
    """A trainable array with its gradient accumulator."""

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:
        return f"Parameter({self.name!r}, shape={self.data.shape})"


class Layer:
    """Base layer."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        return []

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


class Conv2d(Layer):
    """2-D convolution via im2col, with He initialization."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        seed: SeedLike = 0,
    ) -> None:
        if min(in_channels, out_channels, kernel_size, stride) < 1 or padding < 0:
            raise ValueError("invalid Conv2d hyper-parameters")
        rng = make_rng(seed)
        fan_in = in_channels * kernel_size * kernel_size
        w = rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(out_channels, in_channels, kernel_size, kernel_size))
        self.weight = Parameter(w, "conv.weight")
        self.bias = Parameter(np.zeros(out_channels), "conv.bias") if bias else None
        self.stride = stride
        self.padding = padding
        self.kernel_size = kernel_size
        self.in_channels = in_channels
        self.out_channels = out_channels
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {c}")
        cols, oh, ow = im2col(x, self.kernel_size, self.kernel_size, self.stride, self.padding)
        w_mat = self.weight.data.reshape(self.out_channels, -1)  # (O, C*K*K)
        out = cols @ w_mat.T  # (N*OH*OW, O)
        if self.bias is not None:
            out += self.bias.data[None, :]
        out = out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)
        self._cache = (x.shape, cols)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        x_shape, cols = self._cache
        n, _, oh, ow = grad.shape
        g = grad.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)  # (N*OH*OW, O)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        self.weight.grad += (g.T @ cols).reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += g.sum(axis=0)
        grad_cols = g @ w_mat  # (N*OH*OW, C*K*K)
        return col2im(grad_cols, x_shape, self.kernel_size, self.kernel_size, self.stride, self.padding)

    def parameters(self) -> List[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])


class BatchNorm2d(Layer):
    """Per-channel batch normalization with running statistics."""

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        if channels < 1:
            raise ValueError("channels must be >= 1")
        self.gamma = Parameter(np.ones(channels), "bn.gamma")
        self.beta = Parameter(np.zeros(channels), "bn.beta")
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.channels = channels
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.shape[1] != self.channels:
            raise ValueError(f"expected {self.channels} channels, got {x.shape[1]}")
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = self.gamma.data[None, :, None, None] * x_hat + self.beta.data[None, :, None, None]
        self._cache = (x_hat, inv_std, training, x.shape)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        x_hat, inv_std, training, shape = self._cache
        self.gamma.grad += (grad * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad.sum(axis=(0, 2, 3))
        g = self.gamma.data[None, :, None, None]
        if not training:
            return grad * g * inv_std[None, :, None, None]
        n = shape[0] * shape[2] * shape[3]
        dxhat = grad * g
        # Standard batch-norm backward over (N, H, W) per channel.
        sum_dxhat = dxhat.sum(axis=(0, 2, 3), keepdims=True)
        sum_dxhat_xhat = (dxhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        dx = (dxhat - sum_dxhat / n - x_hat * sum_dxhat_xhat / n) * inv_std[None, :, None, None]
        return dx

    def parameters(self) -> List[Parameter]:
        return [self.gamma, self.beta]


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward before forward")
        return grad * self._mask


class MaxPool2d(Layer):
    """Max pooling (kernel == stride, the common CNN configuration)."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0) -> None:
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else self.kernel_size
        self.padding = int(padding)
        if self.kernel_size < 1 or self.stride < 1 or self.padding < 0:
            raise ValueError("invalid MaxPool2d hyper-parameters")
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        # Reuse im2col treating channels as batch so each patch is k*k values.
        xr = x.reshape(n * c, 1, h, w)
        if p > 0:
            xr = np.pad(xr, ((0, 0), (0, 0), (p, p), (p, p)), constant_values=-np.inf)
        cols, oh, ow = im2col(xr, k, k, s, 0)
        idx = cols.argmax(axis=1)
        out = cols[np.arange(cols.shape[0]), idx]
        self._cache = (x.shape, idx, oh, ow, xr.shape)
        return out.reshape(n, c, oh, ow)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        x_shape, idx, oh, ow, padded_shape = self._cache
        n, c, h, w = x_shape
        k, s, p = self.kernel_size, self.stride, self.padding
        g = grad.reshape(-1)
        cols_grad = np.zeros((g.size, k * k))
        cols_grad[np.arange(g.size), idx] = g
        hp, wp = padded_shape[2], padded_shape[3]
        dx = col2im(cols_grad, (n * c, 1, hp, wp), k, k, s, 0)
        dx = dx.reshape(n, c, hp, wp)
        if p > 0:
            dx = dx[:, :, p : p + h, p : p + w]
        return dx


class GlobalAvgPool2d(Layer):
    """Average over the spatial dimensions: (N, C, H, W) -> (N, C)."""

    def __init__(self) -> None:
        self._shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward before forward")
        n, c, h, w = self._shape
        return np.broadcast_to(grad[:, :, None, None], self._shape) / (h * w)


class Flatten(Layer):
    """(N, ...) -> (N, prod(...))."""

    def __init__(self) -> None:
        self._shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward before forward")
        return grad.reshape(self._shape)


class Linear(Layer):
    """Fully connected layer with He initialization."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed: SeedLike = 0) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("features must be >= 1")
        rng = make_rng(seed)
        w = rng.normal(0.0, np.sqrt(2.0 / in_features), size=(out_features, in_features))
        self.weight = Parameter(w, "linear.weight")
        self.bias = Parameter(np.zeros(out_features), "linear.bias") if bias else None
        self.in_features = in_features
        self.out_features = out_features
        self._x = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(f"expected (N, {self.in_features}), got {x.shape}")
        self._x = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out += self.bias.data[None, :]
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward before forward")
        self.weight.grad += grad.T @ self._x
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.data

    def parameters(self) -> List[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])


class Sequential(Layer):
    """Chain of layers."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[Parameter]:
        return [p for layer in self.layers for p in layer.parameters()]


class Add(Layer):
    """Elementwise sum of a main branch and a shortcut branch (residual join).

    ``Add`` is a structural marker used by :class:`repro.ml.nn.resnet.BasicBlock`;
    it simply passes gradients to both branches.
    """

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:  # pragma: no cover
        raise RuntimeError("Add is applied by BasicBlock, not called directly")

    def backward(self, grad: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise RuntimeError("Add is applied by BasicBlock, not called directly")
