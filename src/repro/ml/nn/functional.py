"""Functional kernels: im2col/col2im, softmax, cross-entropy.

``im2col`` lowers convolution to one GEMM — the standard HPC approach for a
pure-NumPy CNN: the patch-extraction is a strided view (no copy) reshaped
once, so the arithmetic intensity lives in a single ``@``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output length of a 1-D convolution axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ValueError(f"non-positive conv output: size={size}, kernel={kernel}, stride={stride}, padding={padding}")
    return out


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> Tuple[np.ndarray, int, int]:
    """Lower NCHW input to patch-matrix form.

    Returns ``(cols, oh, ow)`` where ``cols`` has shape
    ``(N*oh*ow, C*kh*kw)``; row ``n*oh*ow + i*ow + j`` is the receptive field
    of output pixel (i, j) of sample n.
    """
    n, c, h, w = x.shape
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    sn, sc, sh, sw = x.strides
    patches = as_strided(
        x,
        shape=(n, c, oh, ow, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # (N, OH, OW, C, KH, KW) -> (N*OH*OW, C*KH*KW); transpose forces the copy.
    cols = patches.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
    return cols, oh, ow


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patch gradients back to NCHW."""
    n, c, h, w = x_shape
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    if cols.shape != (n * oh * ow, c * kh * kw):
        raise ValueError(f"cols shape {cols.shape} inconsistent with x_shape {x_shape}")
    hp, wp = h + 2 * padding, w + 2 * padding
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    patches = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    # Scatter-add per kernel offset (kh*kw adds, each fully vectorized).
    for di in range(kh):
        for dj in range(kw):
            out[:, :, di : di + stride * oh : stride, dj : dj + stride * ow : stride] += patches[:, :, :, :, di, dj]
    if padding > 0:
        out = out[:, :, padding : padding + h, padding : padding + w]
    return out


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    z = logits - logits.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def cross_entropy_loss(logits: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean softmax cross-entropy and its gradient w.r.t. logits.

    ``targets`` are integer class indices of shape ``(N,)``.
    """
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, classes), got shape {logits.shape}")
    n = logits.shape[0]
    targets = np.asarray(targets)
    if targets.shape != (n,):
        raise ValueError(f"targets shape {targets.shape} does not match batch {n}")
    if targets.min() < 0 or targets.max() >= logits.shape[1]:
        raise ValueError("target index out of range")
    p = softmax(logits, axis=1)
    eps = 1e-12
    loss = float(-np.mean(np.log(p[np.arange(n), targets] + eps)))
    grad = p.copy()
    grad[np.arange(n), targets] -= 1.0
    grad /= n
    return loss, grad
