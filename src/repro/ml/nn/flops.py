"""FLOP counting and the FLOP → time → energy inference-cost model.

Figure 5 of the paper shows edge inference energy growing quadratically with
image side length (linearly with pixel count) because convolutional FLOPs
are proportional to the spatial area.  We therefore reproduce the curve by

1. counting the FLOPs of the actual network at each input size
   (:func:`count_flops` walks our layer objects and propagates shapes), and
2. converting FLOPs to seconds through a device's effective throughput plus
   a fixed overhead, then to joules through the device's active power
   (:class:`InferenceCostModel`, calibrated against the paper's measured
   anchor: ResNet-18 at 100×100 takes 37.6 s / 94.8 J on the Pi 3b+).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.ml.nn.functional import conv_output_size
from repro.ml.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.ml.nn.resnet import BasicBlock, ResNet
from repro.util.validation import check_non_negative, check_positive


def count_flops(module, input_shape: Tuple[int, int, int]) -> int:
    """FLOPs for one forward pass on a single ``(C, H, W)`` input.

    Multiply-accumulate counts as 2 FLOPs.  Supported: our conv/bn/relu/
    pool/linear layers plus Sequential/BasicBlock/ResNet composites.
    """
    flops, _shape = _walk(module, input_shape)
    return flops


def _walk(module, shape):
    c, h, w = shape
    if isinstance(module, Conv2d):
        oh = conv_output_size(h, module.kernel_size, module.stride, module.padding)
        ow = conv_output_size(w, module.kernel_size, module.stride, module.padding)
        macs = module.out_channels * oh * ow * module.in_channels * module.kernel_size**2
        flops = 2 * macs + (module.out_channels * oh * ow if module.bias is not None else 0)
        return flops, (module.out_channels, oh, ow)
    if isinstance(module, BatchNorm2d):
        return 4 * c * h * w, (c, h, w)  # scale, shift, sub, div
    if isinstance(module, ReLU):
        return c * h * w, (c, h, w)
    if isinstance(module, MaxPool2d):
        oh = conv_output_size(h, module.kernel_size, module.stride, module.padding)
        ow = conv_output_size(w, module.kernel_size, module.stride, module.padding)
        return c * oh * ow * module.kernel_size**2, (c, oh, ow)
    if isinstance(module, GlobalAvgPool2d):
        return c * h * w, (c, 1, 1)
    if isinstance(module, Flatten):
        return 0, (c * h * w, 1, 1)
    if isinstance(module, Linear):
        return 2 * module.in_features * module.out_features, (module.out_features, 1, 1)
    if isinstance(module, Sequential):
        total = 0
        for layer in module.layers:
            f, shape = _walk(layer, shape)
            total += f
        return total, shape
    if isinstance(module, BasicBlock):
        total, out_shape = _walk(module.conv1, shape)
        for layer in (module.bn1, module.relu1, module.conv2, module.bn2):
            f, out_shape = _walk(layer, out_shape)
            total += f
        if module.shortcut is not None:
            f, short_shape = _walk(module.shortcut, shape)
            total += f
            if short_shape != out_shape:
                raise ValueError(f"residual shape mismatch: {short_shape} vs {out_shape}")
        total += out_shape[0] * out_shape[1] * out_shape[2]  # the add
        f, out_shape = _walk(module.relu2, out_shape)
        return total + f, out_shape
    if isinstance(module, ResNet):
        total, feat_shape = _walk(module.backbone, shape)
        # Backbone ends in GlobalAvgPool2d -> (C,1,1); head consumes (N, C).
        f, out_shape = _walk(module.head, feat_shape)
        return total + f, out_shape
    raise TypeError(f"count_flops: unsupported module {type(module).__name__}")


@dataclass(frozen=True)
class InferenceCostModel:
    """Converts FLOPs to wall time and energy on a target device.

    ``time = fixed_overhead_s + flops / effective_flops_per_s``
    ``energy = time × active_watts + fixed_overhead_j``

    ``calibrate`` solves for ``effective_flops_per_s`` from a measured
    (flops, seconds) anchor, the honest way to absorb interpreter and
    memory-system effects that a pure roofline would miss.
    """

    active_watts: float
    effective_flops_per_s: float
    fixed_overhead_s: float = 0.0
    fixed_overhead_j: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative(self.active_watts, "active_watts")
        check_positive(self.effective_flops_per_s, "effective_flops_per_s")
        check_non_negative(self.fixed_overhead_s, "fixed_overhead_s")
        check_non_negative(self.fixed_overhead_j, "fixed_overhead_j")

    @staticmethod
    def calibrate(
        anchor_flops: float,
        anchor_seconds: float,
        active_watts: float,
        fixed_overhead_s: float = 0.0,
    ) -> "InferenceCostModel":
        """Build a model whose predicted time matches the anchor exactly."""
        check_positive(anchor_flops, "anchor_flops")
        check_positive(anchor_seconds, "anchor_seconds")
        if fixed_overhead_s >= anchor_seconds:
            raise ValueError("fixed_overhead_s must be below the anchor time")
        rate = anchor_flops / (anchor_seconds - fixed_overhead_s)
        return InferenceCostModel(
            active_watts=active_watts,
            effective_flops_per_s=rate,
            fixed_overhead_s=fixed_overhead_s,
        )

    def seconds(self, flops: float) -> float:
        check_non_negative(flops, "flops")
        return self.fixed_overhead_s + flops / self.effective_flops_per_s

    def joules(self, flops: float) -> float:
        return self.seconds(flops) * self.active_watts + self.fixed_overhead_j

    def cost(self, flops: float) -> Tuple[float, float]:
        """``(seconds, joules)`` for one inference of ``flops``."""
        t = self.seconds(flops)
        return t, t * self.active_watts + self.fixed_overhead_j
