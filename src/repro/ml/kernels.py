"""Kernel functions for the SVM.

All kernels are fully vectorized: ``k(X, Z)`` returns the ``(n, m)`` Gram
matrix in one shot.  The RBF kernel uses the
``|x-z|² = |x|² + |z|² − 2x·z`` expansion so the hot path is a single GEMM.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive


def _check_2d(X: np.ndarray, name: str) -> np.ndarray:
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"{name} must be 2-D (n_samples, n_features), got shape {X.shape}")
    return X


def linear_kernel(X, Z) -> np.ndarray:
    """Gram matrix of dot products."""
    X, Z = _check_2d(X, "X"), _check_2d(Z, "Z")
    return X @ Z.T


def polynomial_kernel(X, Z, degree: int = 3, gamma: float = 1.0, coef0: float = 1.0) -> np.ndarray:
    """``(gamma * X·Zᵀ + coef0) ** degree``."""
    if degree < 1:
        raise ValueError("degree must be >= 1")
    check_positive(gamma, "gamma")
    X, Z = _check_2d(X, "X"), _check_2d(Z, "Z")
    return (gamma * (X @ Z.T) + coef0) ** degree


def rbf_kernel(X, Z, gamma: float = 1.0) -> np.ndarray:
    """Gaussian kernel ``exp(-gamma * |x - z|²)``."""
    check_positive(gamma, "gamma")
    X, Z = _check_2d(X, "X"), _check_2d(Z, "Z")
    if X.shape[1] != Z.shape[1]:
        raise ValueError(f"feature dims differ: {X.shape[1]} vs {Z.shape[1]}")
    x2 = np.einsum("ij,ij->i", X, X)[:, None]
    z2 = np.einsum("ij,ij->i", Z, Z)[None, :]
    d2 = x2 + z2 - 2.0 * (X @ Z.T)
    np.maximum(d2, 0.0, out=d2)  # numerical guard
    return np.exp(-gamma * d2)


def make_kernel(name: str, **params):
    """Kernel factory: ``'rbf' | 'linear' | 'poly'`` → callable ``k(X, Z)``."""
    name = name.lower()
    if name == "rbf":
        gamma = params.get("gamma", 1.0)
        return lambda X, Z: rbf_kernel(X, Z, gamma=gamma)
    if name == "linear":
        return linear_kernel
    if name in ("poly", "polynomial"):
        degree = params.get("degree", 3)
        gamma = params.get("gamma", 1.0)
        coef0 = params.get("coef0", 1.0)
        return lambda X, Z: polynomial_kernel(X, Z, degree=degree, gamma=gamma, coef0=coef0)
    raise ValueError(f"unknown kernel {name!r} (known: rbf, linear, poly)")
