"""Machine-learning substrate, implemented from scratch on NumPy.

Two model families mirror §V of the paper:

* :class:`repro.ml.svm.SVC` — a binary support-vector classifier trained by
  SMO with an RBF kernel (paper settings: ``C=20``, ``gamma=1e-5``);
* :mod:`repro.ml.nn` — a CNN stack (im2col convolutions, batch norm,
  residual blocks, SGD training) able to build ResNet-18, plus a FLOP/energy
  model for inference-cost analysis.
"""

from repro.ml.kernels import rbf_kernel, linear_kernel, polynomial_kernel
from repro.ml.svm import SVC
from repro.ml.scaler import StandardScaler
from repro.ml.metrics import accuracy, confusion_matrix, precision_recall_f1
from repro.ml.split import train_test_split, kfold_indices

__all__ = [
    "rbf_kernel",
    "linear_kernel",
    "polynomial_kernel",
    "SVC",
    "StandardScaler",
    "accuracy",
    "confusion_matrix",
    "precision_recall_f1",
    "train_test_split",
    "kfold_indices",
]
