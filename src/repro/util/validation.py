"""Argument-validation helpers with consistent error messages.

Validation failures raise ``ValueError``/``TypeError`` naming the offending
parameter, so configuration errors surface at construction time rather than
deep inside a simulation sweep.
"""

from __future__ import annotations

import math
from typing import Optional


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0`` and finite; return it."""
    value = _check_finite_number(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Require ``value >= 0`` and finite; return it."""
    value = _check_finite_number(value, name)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    low: Optional[float] = None,
    high: Optional[float] = None,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Require ``value`` within the given (possibly open) interval."""
    value = _check_finite_number(value, name)
    if low is not None:
        if low_inclusive and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value!r}")
        if not low_inclusive and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value!r}")
    if high is not None:
        if high_inclusive and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value!r}")
        if not high_inclusive and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Require ``value`` in [0, 1]; return it."""
    return check_in_range(value, name, 0.0, 1.0)


def check_integer(value, name: str, minimum: Optional[int] = None) -> int:
    """Require an integral value (bools rejected), optionally >= ``minimum``."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        # Accept numpy integer types too.
        try:
            import numpy as np

            if isinstance(value, np.integer):
                value = int(value)
            else:
                raise TypeError
        except TypeError:
            raise TypeError(f"{name} must be an integer, got {type(value).__name__}") from None
    value = int(value)
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def _check_finite_number(value: float, name: str) -> float:
    if isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got bool")
    if isinstance(value, (str, bytes)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}") from None
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value
