"""Streaming statistics used by monitors and calibration code.

:class:`RunningStats` implements Welford's online algorithm so long traces
(e.g. per-routine powers over a week of simulated time) can be summarized
without storing every sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np


class RunningStats:
    """Numerically stable online mean/variance/min/max accumulator."""

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def push(self, value: float) -> None:
        """Add one sample."""
        value = float(value)
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        """Add many samples."""
        for v in values:
            self.push(v)

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise ValueError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample (n-1) variance."""
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._n == 0:
            raise ValueError("no samples")
        return self._min

    @property
    def maximum(self) -> float:
        if self._n == 0:
            raise ValueError("no samples")
        return self._max

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (parallel Welford merge)."""
        merged = RunningStats()
        if self._n == 0:
            merged.__dict__.update(other.__dict__)
            return merged
        if other._n == 0:
            merged.__dict__.update(self.__dict__)
            return merged
        n = self._n + other._n
        delta = other._mean - self._mean
        merged._n = n
        merged._mean = self._mean + delta * other._n / n
        merged._m2 = self._m2 + other._m2 + delta * delta * self._n * other._n / n
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    def __repr__(self) -> str:
        if self._n == 0:
            return "RunningStats(empty)"
        return (
            f"RunningStats(n={self._n}, mean={self._mean:.4g}, "
            f"std={self.std:.4g}, min={self._min:.4g}, max={self._max:.4g})"
        )


@dataclass(frozen=True)
class Summary:
    """Immutable summary of a sample array."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float


def summarize(values) -> Summary:
    """Summarize an array-like of samples into a :class:`Summary`."""
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
    )
