"""Deterministic random-number-generator plumbing.

All stochastic components in the library accept either an integer seed or an
existing :class:`numpy.random.Generator`.  :func:`make_rng` normalises both
into a Generator; :func:`spawn` derives independent child streams so that
adding a new consumer of randomness never perturbs existing draws (important
when comparing loss-model runs side by side).
"""

from __future__ import annotations

import hashlib
import warnings
from typing import Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]

#: Default seed used by experiments when the caller does not provide one.
DEFAULT_SEED = 0xBEE5


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (use :data:`DEFAULT_SEED`), an ``int``, a ``SeedSequence``,
        or an existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None:
        seed = DEFAULT_SEED
    if not isinstance(seed, (int, np.integer)):
        raise TypeError(f"seed must be int/Generator/SeedSequence/None, got {type(seed)!r}")
    return np.random.default_rng(int(seed))


def resolve_rng(rng: SeedLike = None, seed: SeedLike = None) -> np.random.Generator:
    """Normalise the ``rng``/legacy-``seed`` pair into one Generator.

    ``seed`` is a deprecated alias kept so older call sites keep working;
    passing it emits a :class:`DeprecationWarning`.  Passing both is an
    error.  Long simulations should thread a single ``rng`` through every
    transfer instead of re-creating a generator per call.
    """
    if seed is not None:
        if rng is not None:
            raise TypeError("pass either rng or seed, not both")
        warnings.warn(
            "the 'seed' parameter is deprecated; pass 'rng' instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return make_rng(seed)
    return make_rng(rng)


def spawn(rng: np.random.Generator, n: int = 1) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Children are produced via ``SeedSequence`` spawning on fresh entropy drawn
    from the parent, so repeated calls on the same parent yield different but
    reproducible streams.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    entropy = int(rng.integers(0, 2**63 - 1))
    seq = np.random.SeedSequence(entropy)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def derive_seed(base: int, *labels: Union[str, int]) -> int:
    """Derive a stable 63-bit seed from a base seed and a label path.

    Used so that e.g. ``derive_seed(seed, "fig8", "loss_c")`` always names the
    same stream regardless of execution order.  Each label component is
    length-prefixed before hashing, so label *structure* is part of the
    stream name: ``("a/b",)`` and ``("a", "b")`` derive different seeds (a
    plain separator join would collide whenever a label contains the
    separator).  Labels are stringified, so ``1`` and ``"1"`` are the same
    component by design.
    """
    h = hashlib.sha256()
    base_repr = str(int(base)).encode()
    h.update(len(base_repr).to_bytes(4, "little"))
    h.update(base_repr)
    for label in labels:
        data = str(label).encode()
        h.update(len(data).to_bytes(4, "little"))
        h.update(data)
    return int.from_bytes(h.digest()[:8], "little") & (2**63 - 1)


def rng_for(base: int, *labels: Union[str, int]) -> np.random.Generator:
    """Shorthand for ``make_rng(derive_seed(base, *labels))``."""
    return make_rng(derive_seed(base, *labels))


def choice_without_replacement(
    rng: np.random.Generator, pool: Sequence[int], size: int
) -> np.ndarray:
    """Sample ``size`` distinct items from ``pool`` (clamped to pool size)."""
    size = min(size, len(pool))
    if size <= 0:
        return np.empty(0, dtype=np.int64)
    return rng.choice(np.asarray(pool), size=size, replace=False)
