"""Terminal line plots for the figure-reproduction CLI.

No plotting backend is available offline, so ``repro-exp <fig> --plot``
renders the reproduced curves as ASCII: multiple named series on a shared
braille-free character grid, with axis labels and a legend.  Resolution is
deliberately modest — the goal is seeing the *shape* (sawtooth, crossover,
knee) in a terminal, not publication graphics.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

#: Glyphs assigned to series, in order.
SERIES_GLYPHS = "*+ox#@%&"


def line_plot(
    x,
    series: Dict[str, Sequence[float]],
    width: int = 72,
    height: int = 18,
    title: Optional[str] = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named series over a shared x axis as an ASCII chart.

    Values are linearly binned onto a ``width × height`` grid; later series
    overwrite earlier ones where they collide (legend order shows priority).
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1 or x.size < 2:
        raise ValueError("x must be 1-D with at least 2 points")
    if not series:
        raise ValueError("no series to plot")
    if width < 16 or height < 4:
        raise ValueError("grid too small (need width >= 16, height >= 4)")
    arrays = {}
    for name, ys in series.items():
        ys = np.asarray(ys, dtype=float)
        if ys.shape != x.shape:
            raise ValueError(f"series {name!r} has shape {ys.shape}, x has {x.shape}")
        arrays[name] = ys
    if len(arrays) > len(SERIES_GLYPHS):
        raise ValueError(f"at most {len(SERIES_GLYPHS)} series supported")

    y_all = np.concatenate(list(arrays.values()))
    y_min, y_max = float(np.min(y_all)), float(np.max(y_all))
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(x.min()), float(x.max())

    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, ys) in zip(SERIES_GLYPHS, arrays.items()):
        cols = np.clip(((x - x_min) / (x_max - x_min) * (width - 1)).round().astype(int), 0, width - 1)
        rows = np.clip(((ys - y_min) / (y_max - y_min) * (height - 1)).round().astype(int), 0, height - 1)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = glyph

    y_labels = [f"{y_max:.4g}", f"{(y_min + y_max) / 2:.4g}", f"{y_min:.4g}"]
    label_w = max(len(s) for s in y_labels)
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        if i == 0:
            label = y_labels[0]
        elif i == height // 2:
            label = y_labels[1]
        elif i == height - 1:
            label = y_labels[2]
        else:
            label = ""
        lines.append(f"{label.rjust(label_w)} |{''.join(row)}|")
    axis = f"{'':>{label_w}} +{'-' * width}+"
    lines.append(axis)
    x_lo, x_hi = f"{x_min:.4g}", f"{x_max:.4g}"
    gap = max(width - len(x_lo) - len(x_hi), 1)
    lines.append(f"{'':>{label_w}}  {x_lo}{' ' * gap}{x_hi}  {x_label}")
    legend = "   ".join(
        f"{glyph} {name}" for glyph, name in zip(SERIES_GLYPHS, arrays)
    )
    lines.append(f"{'':>{label_w}}  [{legend}]" + (f"  ({y_label})" if y_label else ""))
    return "\n".join(lines)


#: Series that live on a different scale than the energy curves and would
#: flatten them if co-plotted.
_DEFAULT_EXCLUDE_PREFIXES = ("n_servers", "available", "soc", "accuracy", "fig2b")


def plot_experiment(
    result,
    width: int = 72,
    height: int = 18,
    exclude_prefixes: Sequence[str] = _DEFAULT_EXCLUDE_PREFIXES,
) -> str:
    """Best-effort chart of an :class:`~repro.experiments.report.ExperimentResult`.

    Picks the experiment's natural x series (``n_clients``, ``period_s``,
    ``image_size_px`` or ``times_s``) and plots every same-length numeric
    series against it, skipping series whose scale would flatten the rest
    (server counts, fractions).  Returns '' when no plottable pairing
    exists.
    """
    x_keys = ("n_clients", "period_s", "image_size_px", "occupancy", "times_s", "period_multiples")
    x_key = next((k for k in x_keys if k in result.series), None)
    if x_key is None:
        return ""
    x = np.asarray(result.series[x_key], dtype=float)
    if x.size < 2:
        return ""
    series = {}
    for name, values in result.series.items():
        if name == x_key or any(name.startswith(p) for p in exclude_prefixes):
            continue
        arr = np.asarray(values)
        if arr.shape == x.shape and np.issubdtype(arr.dtype, np.number):
            series[name] = arr.astype(float)
        if len(series) == len(SERIES_GLYPHS):
            break
    if not series:
        return ""
    return line_plot(
        x, series, width=width, height=height,
        title=f"{result.experiment_id}: {result.title}", x_label=x_key,
    )
