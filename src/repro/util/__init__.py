"""Shared utilities: RNG management, units, validation, tables, statistics.

Everything in :mod:`repro` that is stochastic draws its randomness from a
:class:`numpy.random.Generator` obtained through :func:`repro.util.rng.make_rng`
or spawned from a parent generator, so that every experiment is exactly
reproducible from a single integer seed.
"""

from repro.util.rng import make_rng, spawn, derive_seed
from repro.util.units import (
    Joules,
    Seconds,
    Watts,
    MINUTE,
    HOUR,
    DAY,
    format_duration,
    format_energy,
    format_power,
    wh_to_joules,
    joules_to_wh,
)
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_probability,
    check_integer,
)
from repro.util.tabulate import render_table, render_kv
from repro.util.stats import RunningStats, summarize

__all__ = [
    "make_rng",
    "spawn",
    "derive_seed",
    "Joules",
    "Seconds",
    "Watts",
    "MINUTE",
    "HOUR",
    "DAY",
    "format_duration",
    "format_energy",
    "format_power",
    "wh_to_joules",
    "joules_to_wh",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_probability",
    "check_integer",
    "render_table",
    "render_kv",
    "RunningStats",
    "summarize",
]
