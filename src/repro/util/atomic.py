"""Crash-only atomic file writes (tmp + fsync + rename).

Every JSON artifact the project emits — golden fingerprints, drift
reports, observability snapshots, benchmark reports, checkpoints — goes
through this module, so a crash (SIGKILL, OOM, power loss) mid-write can
never leave a truncated or interleaved file at the destination path.  The
protocol is the classic crash-only one:

1. write the full payload to a uniquely-named temporary file *in the same
   directory* as the destination (same filesystem, so the final rename is
   atomic);
2. flush and ``fsync`` the temporary file so the bytes are durable before
   the name is;
3. ``os.replace`` the temporary file onto the destination — an atomic
   POSIX rename that either fully installs the new content or leaves the
   previous file untouched;
4. ``fsync`` the parent directory so the rename *itself* is durable — on
   power loss a synced rename cannot revert to the old name (best-effort
   on platforms where a directory cannot be opened or fsynced; atomicity
   never depends on this step, only durability of the install).

A reader therefore observes either the old complete file or the new
complete file, never a prefix of the new one.  On any failure the
temporary file is removed and the destination is left exactly as it was.
"""

from __future__ import annotations

import io
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Union

PathLike = Union[str, os.PathLike]


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync making a completed rename power-loss durable."""
    try:
        dfd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dfd)
    except OSError:
        pass
    finally:
        os.close(dfd)


@contextmanager
def atomic_writer(
    path: PathLike, mode: str = "w", encoding: str = "utf-8", fsync: bool = True
) -> Iterator[io.IOBase]:
    """Context manager yielding a handle whose content is installed atomically.

    The handle writes to a temporary file next to ``path``; on clean exit
    the temporary is fsynced and renamed over ``path``, on exception it is
    deleted and ``path`` is untouched.  ``mode`` must be a write mode
    (``"w"`` or ``"wb"``).
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_writer requires mode 'w' or 'wb', got {mode!r}")
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=str(directory), prefix=f".{path.name}.", suffix=".tmp"
    )
    binary = mode == "wb"
    fh = os.fdopen(fd, mode, encoding=None if binary else encoding)
    try:
        yield fh
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
        fh.close()
        os.replace(tmp_name, path)
        if fsync:
            _fsync_dir(directory)
    except BaseException:
        try:
            fh.close()
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
        raise


def atomic_write(
    path: PathLike,
    data: Union[str, bytes],
    encoding: str = "utf-8",
    fsync: bool = True,
) -> None:
    """Atomically replace ``path`` with ``data`` (str or bytes)."""
    mode = "wb" if isinstance(data, (bytes, bytearray)) else "w"
    with atomic_writer(path, mode=mode, encoding=encoding, fsync=fsync) as fh:
        fh.write(data)


def atomic_write_json(
    path: PathLike,
    obj: Any,
    indent: int = 2,
    sort_keys: bool = False,
    fsync: bool = True,
) -> None:
    """Atomically write ``obj`` as an indented JSON document ending in a newline.

    The document is fully serialized *before* the temporary file is opened,
    so a ``TypeError`` from an unserializable object cannot leave a partial
    artifact behind either.
    """
    import json

    text = json.dumps(obj, indent=indent, sort_keys=sort_keys) + "\n"
    atomic_write(path, text, fsync=fsync)


__all__ = ["atomic_write", "atomic_write_json", "atomic_writer"]
