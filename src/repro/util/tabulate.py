"""Minimal ASCII table rendering for experiment reports.

Experiments reproduce the paper's tables as text; this module renders them
without third-party dependencies.  Numbers are formatted per column with a
caller-supplied format spec.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


def _format_cell(value, fmt: Optional[str]) -> str:
    if value is None:
        return ""
    if fmt is not None and isinstance(value, (int, float)) and not isinstance(value, bool):
        return format(value, fmt)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    formats: Optional[Sequence[Optional[str]]] = None,
    title: Optional[str] = None,
    aligns: Optional[Sequence[str]] = None,
) -> str:
    """Render ``rows`` under ``headers`` as a boxed ASCII table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Iterable of row sequences (must match header arity).
    formats:
        Optional per-column format spec applied to numeric cells
        (e.g. ``".1f"``); ``None`` entries use ``str``.
    title:
        Optional caption rendered above the table.
    aligns:
        Per-column ``'l'``/``'r'`` alignment; defaults to right for numeric
        format columns and left otherwise.
    """
    headers = [str(h) for h in headers]
    ncols = len(headers)
    if formats is None:
        formats = [None] * ncols
    if len(formats) != ncols:
        raise ValueError(f"formats has {len(formats)} entries for {ncols} columns")

    str_rows: list[list[str]] = []
    for row in rows:
        row = list(row)
        if len(row) != ncols:
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {ncols}")
        str_rows.append([_format_cell(v, f) for v, f in zip(row, formats)])

    if aligns is None:
        aligns = ["r" if f is not None else "l" for f in formats]

    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        out = []
        for cell, width, align in zip(cells, widths, aligns):
            out.append(cell.rjust(width) if align == "r" else cell.ljust(width))
        return "| " + " | ".join(out) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(headers))
    lines.append(sep)
    for row in str_rows:
        lines.append(fmt_row(row))
    lines.append(sep)
    return "\n".join(lines)


def render_kv(pairs: Iterable[tuple], title: Optional[str] = None, value_fmt: str = "") -> str:
    """Render key/value pairs as an aligned two-column listing."""
    pairs = [(str(k), _format_cell(v, value_fmt or None)) for k, v in pairs]
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title] if title else []
    for k, v in pairs:
        lines.append(f"  {k.ljust(width)} : {v}")
    return "\n".join(lines)
