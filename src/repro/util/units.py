"""Physical units and formatting helpers.

The whole library works in SI base units: **seconds**, **watts**, **joules**.
Type aliases (:data:`Seconds`, :data:`Watts`, :data:`Joules`) document intent
in signatures; converters handle the watt-hour figures that the beekeeping
literature quotes (e.g. the 2 Wh/day system of the related work).
"""

from __future__ import annotations

# Type aliases for documentation purposes (plain floats at runtime).
Seconds = float
Watts = float
Joules = float

MINUTE: Seconds = 60.0
HOUR: Seconds = 3600.0
DAY: Seconds = 86400.0


def wh_to_joules(wh: float) -> Joules:
    """Convert watt-hours to joules (1 Wh = 3600 J)."""
    return wh * 3600.0


def joules_to_wh(joules: Joules) -> float:
    """Convert joules to watt-hours."""
    return joules / 3600.0


def mah_to_joules(mah: float, volts: float = 3.7) -> Joules:
    """Convert a battery capacity in mAh at ``volts`` nominal to joules.

    The paper's power bank is quoted at 20 000 mAh, which for the customary
    3.7 V cell rating is ~266 kJ (~74 Wh).
    """
    return mah / 1000.0 * volts * 3600.0


def format_duration(seconds: Seconds) -> str:
    """Human-readable duration: ``95.0`` -> ``'1m 35.0s'``."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < MINUTE:
        return f"{seconds:.1f}s"
    if seconds < HOUR:
        m, s = divmod(seconds, MINUTE)
        return f"{int(m)}m {s:.1f}s"
    if seconds < DAY:
        h, rem = divmod(seconds, HOUR)
        m = rem / MINUTE
        return f"{int(h)}h {m:.0f}m"
    d, rem = divmod(seconds, DAY)
    h = rem / HOUR
    return f"{int(d)}d {h:.0f}h"


def format_energy(joules: Joules) -> str:
    """Human-readable energy: picks J, kJ, or Wh scale."""
    if abs(joules) < 1000.0:
        return f"{joules:.1f} J"
    if abs(joules) < 100_000.0:
        return f"{joules / 1000.0:.2f} kJ"
    return f"{joules_to_wh(joules):.2f} Wh"


def format_power(watts: Watts) -> str:
    """Human-readable power: mW below 1 W, otherwise W."""
    if abs(watts) < 1.0:
        return f"{watts * 1000.0:.0f} mW"
    return f"{watts:.2f} W"
