"""Network substrate: link models and transfer cost estimation.

§IV attributes the 3.5 s standard deviation of routine durations to unstable
Wi-Fi throughput; §V shows the data-transfer step dominating the edge power
profile ("the network components have a larger energy cost than the
sensors").  This package models both: a throughput distribution per link and
a transfer-cost calculator producing (duration, energy) pairs for payloads.
"""

from repro.network.link import LinkModel, LinkSample
from repro.network.wifi import WIFI_80211N_2G4, WIFI_80211N_5G, wifi_profile
from repro.network.transfer import TransferCost, transfer_cost
from repro.network.contention import (
    ContentionResult,
    fitted_loss_b_seconds_per_client,
    overrun_probability,
    simulate_slot_contention,
    slot_transfer_time,
)
from repro.network.outage import LINK_OUTAGE, IntervalDist, OutagePattern
from repro.network.buffer import (
    BUFFER_POLICIES,
    BufferReport,
    BufferSpec,
    EdgeBuffer,
)

__all__ = [
    "LinkModel",
    "LinkSample",
    "WIFI_80211N_2G4",
    "WIFI_80211N_5G",
    "wifi_profile",
    "TransferCost",
    "transfer_cost",
    "ContentionResult",
    "fitted_loss_b_seconds_per_client",
    "overrun_probability",
    "simulate_slot_contention",
    "slot_transfer_time",
    "LINK_OUTAGE",
    "IntervalDist",
    "OutagePattern",
    "BUFFER_POLICIES",
    "BufferReport",
    "BufferSpec",
    "EdgeBuffer",
]
