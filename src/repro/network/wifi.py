"""Wi-Fi profiles for the deployed hardware.

The Pi 3b+ has 2.4/5 GHz IEEE 802.11n.  The calibration target is §IV/§V:
the per-cycle payload (three 10-second audio clips plus five JPEG stills,
~2 MB) uploads in ~15 s including a ~1.5 s handshake, i.e. an *effective*
application throughput of only ~1.25 Mbit/s — rooftop deployments far from
the access point sustain a small fraction of the PHY rate.  The cv of 0.25
reproduces the σ≈3.5 s routine-duration spread the paper attributes to
"unstable network throughput".
"""

from __future__ import annotations

from repro.network.link import LinkModel

#: 2.4 GHz band as deployed (rooftop, distant AP): ~1.25 Mbit/s effective.
WIFI_80211N_2G4 = LinkModel(nominal_bps=1.25e6, cv=0.25, handshake_s=1.5)

#: 5 GHz band: faster and cleaner, shorter reach.
WIFI_80211N_5G = LinkModel(nominal_bps=6e6, cv=0.15, handshake_s=1.2)

_PROFILES = {"2.4GHz": WIFI_80211N_2G4, "5GHz": WIFI_80211N_5G}

#: Per-cycle upload payload of the paper's routine (bytes): three 10 s
#: 22 050 Hz 16-bit audio clips plus five ~150 kB stills.
PAPER_CYCLE_PAYLOAD_BYTES = 3 * 441_000 + 5 * 150_000


def wifi_profile(band: str = "2.4GHz") -> LinkModel:
    """Look up a Wi-Fi link profile by band name."""
    try:
        return _PROFILES[band]
    except KeyError:
        known = ", ".join(sorted(_PROFILES))
        raise ValueError(f"unknown Wi-Fi band {band!r} (known: {known})") from None
