"""Transfer cost calculation: payload × link × device power → (time, energy).

Beyond the single-shot :func:`transfer_cost`, :func:`transfer_with_retries`
models the failure-aware upload path: attempts that time out burn radio-on
energy, retries wait out exponential backoff with jitter, and the returned
:class:`RetriedTransfer` itemizes exactly what resilience cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.faults.retry import RetryPolicy
from repro.network.link import LinkModel, resolve_rng
from repro.util.rng import SeedLike
from repro.util.validation import check_in_range, check_non_negative

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.faults.monitor import FaultMonitor


@dataclass(frozen=True)
class TransferCost:
    """Realized cost of moving one payload over a link."""

    payload_bytes: int
    duration_s: float
    sender_energy_j: float
    receiver_energy_j: float

    @property
    def total_energy_j(self) -> float:
        return self.sender_energy_j + self.receiver_energy_j


def transfer_cost(
    payload_bytes: int,
    link: LinkModel,
    sender_watts: float,
    receiver_watts: float = 0.0,
    rng: SeedLike = None,
    seed: SeedLike = None,
) -> TransferCost:
    """Realize a transfer and charge both endpoints at their transfer powers.

    Sender and receiver are active for the same wall-clock duration (the
    synchronized time-slot model of §VI assumes the server's receive window
    spans the whole transfer).  ``seed`` is a deprecated alias for ``rng``
    (see :func:`repro.network.link.resolve_rng`).
    """
    check_non_negative(sender_watts, "sender_watts")
    check_non_negative(receiver_watts, "receiver_watts")
    sample = link.transfer(payload_bytes, rng=resolve_rng(rng, seed))
    return TransferCost(
        payload_bytes=payload_bytes,
        duration_s=sample.duration_s,
        sender_energy_j=sender_watts * sample.duration_s,
        receiver_energy_j=receiver_watts * sample.duration_s,
    )


@dataclass(frozen=True)
class RetriedTransfer:
    """Outcome of an upload under a retry policy.

    ``cost`` is the successful transfer's cost (``None`` when every attempt
    failed); the overhead fields itemize what the failed attempts and the
    backoff waits added on top.
    """

    success: bool
    attempts: int
    cost: Optional[TransferCost]
    retry_energy_j: float
    backoff_s: float
    elapsed_s: float

    @property
    def sender_energy_j(self) -> float:
        """Total sender-side joules including failed attempts."""
        base = self.cost.sender_energy_j if self.cost is not None else 0.0
        return base + self.retry_energy_j


def transfer_with_retries(
    payload_bytes: int,
    link: LinkModel,
    sender_watts: float,
    receiver_watts: float = 0.0,
    retry: Optional[RetryPolicy] = None,
    attempt_fails: Optional[Callable[[int], bool]] = None,
    p_fail: float = 0.0,
    rng: SeedLike = None,
    monitor: Optional["FaultMonitor"] = None,
) -> RetriedTransfer:
    """Attempt an upload, retrying with exponential backoff + jitter.

    Parameters
    ----------
    retry:
        Policy governing attempts and waits (default: :class:`RetryPolicy`).
    attempt_fails:
        Predicate ``attempt_index -> bool`` deciding whether an attempt
        fails — how callers wire in fault schedules (e.g. "the server is
        down until attempt 2").  When ``None``, attempts fail independently
        with probability ``p_fail``.
    rng:
        Single stream used for failure draws, backoff jitter and the
        successful transfer's throughput draw.
    monitor:
        Optional :class:`~repro.faults.monitor.FaultMonitor`.  When given,
        every attempt (including the final failed one) is recorded via
        ``record_attempts``, every timed-out attempt via
        ``record_timeout_attempts``, and the burned airtime is charged with
        ``charge_retry`` — so ``timeout_attempts × timeout_s × watts``
        equals the charged retry energy exactly, the same ledger identity
        the DES path maintains.

    Every failed attempt charges ``sender_watts × retry.timeout_s`` to the
    sender (radio on, nobody listening); backoff waits cost no transfer
    energy here — the caller charges sleep power for them.
    """
    check_non_negative(sender_watts, "sender_watts")
    check_in_range(p_fail, "p_fail", 0.0, 1.0)
    retry = retry or RetryPolicy()
    generator = resolve_rng(rng)

    def fails(i: int) -> bool:
        if attempt_fails is not None:
            return bool(attempt_fails(i))
        return bool(generator.uniform() < p_fail)

    def account(result: RetriedTransfer, timed_out: int) -> RetriedTransfer:
        if monitor is not None:
            monitor.record_attempts(result.attempts)
            monitor.record_timeout_attempts(timed_out)
            if result.retry_energy_j > 0.0:
                monitor.charge_retry(result.retry_energy_j)
        return result

    retry_energy = 0.0
    backoff_total = 0.0
    elapsed = 0.0
    for attempt in range(1 + retry.max_retries):
        if not fails(attempt):
            cost = transfer_cost(
                payload_bytes, link, sender_watts, receiver_watts, rng=generator
            )
            return account(
                RetriedTransfer(
                    success=True,
                    attempts=attempt + 1,
                    cost=cost,
                    retry_energy_j=retry_energy,
                    backoff_s=backoff_total,
                    elapsed_s=elapsed + cost.duration_s,
                ),
                timed_out=attempt,
            )
        retry_energy += retry.attempt_energy_j(sender_watts)
        elapsed += retry.timeout_s
        if attempt < retry.max_retries:
            delay = retry.delay_s(attempt, generator)
            backoff_total += delay
            elapsed += delay
    # The final failed attempt burned a full timeout window too: it is
    # charged above like every other failure and counted below, keeping
    # attempts == timeout_attempts on total exhaustion.
    return account(
        RetriedTransfer(
            success=False,
            attempts=1 + retry.max_retries,
            cost=None,
            retry_energy_j=retry_energy,
            backoff_s=backoff_total,
            elapsed_s=elapsed,
        ),
        timed_out=1 + retry.max_retries,
    )
