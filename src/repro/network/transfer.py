"""Transfer cost calculation: payload × link × device power → (time, energy)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.link import LinkModel
from repro.util.rng import SeedLike
from repro.util.validation import check_non_negative


@dataclass(frozen=True)
class TransferCost:
    """Realized cost of moving one payload over a link."""

    payload_bytes: int
    duration_s: float
    sender_energy_j: float
    receiver_energy_j: float

    @property
    def total_energy_j(self) -> float:
        return self.sender_energy_j + self.receiver_energy_j


def transfer_cost(
    payload_bytes: int,
    link: LinkModel,
    sender_watts: float,
    receiver_watts: float = 0.0,
    seed: SeedLike = None,
) -> TransferCost:
    """Realize a transfer and charge both endpoints at their transfer powers.

    Sender and receiver are active for the same wall-clock duration (the
    synchronized time-slot model of §VI assumes the server's receive window
    spans the whole transfer).
    """
    check_non_negative(sender_watts, "sender_watts")
    check_non_negative(receiver_watts, "receiver_watts")
    sample = link.transfer(payload_bytes, seed=seed)
    return TransferCost(
        payload_bytes=payload_bytes,
        duration_s=sample.duration_s,
        sender_energy_j=sender_watts * sample.duration_s,
        receiver_energy_j=receiver_watts * sample.duration_s,
    )
