"""Slot contention: deriving loss model B from channel sharing.

§VI-C's loss B postulates "1.5 extra second per client for clients' data
transfer time" when synchronized clients send simultaneously.  This module
derives that shape from first principles: ``k`` clients sharing one
fixed-capacity uplink (fair sharing, as Wi-Fi DCF approximates in
expectation) each see throughput ``C/k``, so the slot's receive window grows
linearly in ``k`` — the cumulative reading of loss B.  A per-client MAC
overhead term adds the constant part.

:func:`slot_transfer_time` is the analytic model;
:func:`simulate_slot_contention` realizes it with stochastic per-client
throughput draws and processor-sharing dynamics (clients that finish early
return their bandwidth to the pool), which tests compare against the
analytic bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.network.link import LinkModel
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_non_negative, check_positive


def slot_transfer_time(
    payload_bytes: int,
    n_clients: int,
    channel_bps: float,
    per_client_overhead_s: float = 0.0,
) -> float:
    """Time for ``n_clients`` to finish uploading ``payload_bytes`` each over
    a fairly shared channel of ``channel_bps`` (analytic, deterministic).

    With perfect sharing every client finishes together at
    ``n * payload * 8 / C`` — linear in ``n``, the cumulative loss-B shape.
    """
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be >= 0")
    check_positive(channel_bps, "channel_bps")
    check_non_negative(per_client_overhead_s, "per_client_overhead_s")
    return n_clients * (payload_bytes * 8.0 / channel_bps + per_client_overhead_s)


@dataclass(frozen=True)
class ContentionResult:
    """Outcome of one stochastic slot realization."""

    n_clients: int
    completion_times: np.ndarray  # per-client finish times (s)

    @property
    def slot_receive_time(self) -> float:
        """When the last client finishes — the slot's receive window."""
        return float(self.completion_times.max())

    @property
    def mean_completion(self) -> float:
        return float(self.completion_times.mean())


def simulate_slot_contention(
    payload_bytes: int,
    n_clients: int,
    link: LinkModel,
    seed: SeedLike = None,
) -> ContentionResult:
    """Processor-sharing realization of a synchronized upload slot.

    Every client draws an individual *access* rate from ``link`` (its radio
    conditions cap what it could achieve alone); the shared channel grants
    each active client ``min(own_rate, channel/k_active)`` where the channel
    capacity is the link's nominal rate.  When a client drains its payload,
    the remaining clients re-divide the channel.  Event-driven exact
    simulation (piecewise-constant rates).
    """
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be >= 0")
    rng = make_rng(seed)
    own_rate = np.asarray(link.sample_throughput(rng, size=n_clients), dtype=float)
    remaining = np.full(n_clients, payload_bytes * 8.0)
    finish = np.full(n_clients, link.handshake_s)
    active = np.ones(n_clients, dtype=bool)
    now = link.handshake_s
    channel = link.nominal_bps

    while active.any():
        k = int(active.sum())
        share = channel / k
        rates = np.minimum(own_rate[active], share)
        # Time until the first active client drains.
        dt = float((remaining[active] / rates).min())
        remaining[active] -= rates * dt
        now += dt
        done = active.copy()
        done[active] = remaining[active] <= 1e-9
        finish[done & active] = now
        active &= ~done

    return ContentionResult(n_clients=n_clients, completion_times=finish)


def overrun_probability(
    payload_bytes: int,
    link: LinkModel,
    window_s: float,
    n_trials: int = 2000,
    seed: SeedLike = 0,
    n_clients: int = 1,
) -> float:
    """Probability an upload exceeds a slot's receive window.

    This quantifies the slot guard-time choice: with the deployed link
    (median 15 s transfers, cv 0.25) a 16.6 s window (guard 1.5 s) still gets
    overrun by the throughput tail — the §IV duration variance made concrete
    at the slot calendar.

    ``n_clients`` models fair channel sharing during the window (each of
    ``k`` simultaneous senders sees ``1/k`` of its drawn rate), so with a
    fixed seed the durations grow — and the overrun probability is
    monotonically non-decreasing — in the client count.
    """
    check_positive(window_s, "window_s")
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    rng = make_rng(seed)
    bps = np.asarray(link.sample_throughput(rng, size=n_trials)) / n_clients
    durations = link.handshake_s + payload_bytes * 8.0 / bps
    return float(np.mean(durations > window_s))


def fitted_loss_b_seconds_per_client(
    payload_bytes: int,
    link: LinkModel,
    max_clients: int = 10,
    n_trials: int = 20,
    seed: SeedLike = 0,
) -> float:
    """Least-squares slope of slot receive time vs occupancy (s/client).

    This is the empirical counterpart of the paper's 1.5 s/client loss-B
    parameter for a given payload and link.
    """
    if max_clients < 2:
        raise ValueError("max_clients must be >= 2")
    rng = make_rng(seed)
    ks: List[int] = []
    times: List[float] = []
    for k in range(1, max_clients + 1):
        for _ in range(n_trials):
            result = simulate_slot_contention(
                payload_bytes, k, link, seed=int(rng.integers(2**62))
            )
            ks.append(k)
            times.append(result.slot_receive_time)
    slope, _intercept = np.polyfit(np.asarray(ks, dtype=float), np.asarray(times), 1)
    return float(slope)
