"""Seeded renewal outage schedules for intermittent connectivity.

Field deployments consistently report the Wi-Fi uplink *flapping* — hours of
connectivity followed by hours of darkness — rather than the short blackout
bursts :class:`repro.faults.spec.LinkBlackout` models.  This module realizes
that regime as an alternating **up/down renewal process** per client:

* an :class:`IntervalDist` describes one interval family (fixed,
  exponential, uniform, or log-normal — the distributions rural-link
  surveys actually fit);
* an :class:`OutagePattern` pairs an up-interval and a down-interval
  distribution and compiles them, per target, into the same
  :class:`~repro.faults.spec.FaultWindow` objects the fault timetable
  machinery already indexes (kind :data:`LINK_OUTAGE`);
* compilation is deterministic via the shared
  :func:`repro.util.rng.derive_seed` discipline — each target draws from
  its own ``(base, "link_outage", target)`` stream, so widening the fleet
  or chunking a sweep never perturbs another client's schedule.

The compiled up/down intervals *tile the horizon exactly* (property-tested):
:meth:`OutagePattern.compile_segments` returns the alternating ``(state,
t0, t1)`` tiles, and :meth:`compile_target` is simply its down tiles, so no
instant is ever both up and down and none is unaccounted for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.faults.spec import FaultWindow
from repro.util.validation import check_non_negative, check_positive

#: Window kind for compiled outage intervals (client-targeted, like the
#: blackout/degradation kinds in :mod:`repro.faults.spec`).
LINK_OUTAGE = "link_outage"

#: Supported interval families.
FIXED = "fixed"
EXPONENTIAL = "exponential"
UNIFORM = "uniform"
LOGNORMAL = "lognormal"
INFINITE = "infinite"

_KINDS = (FIXED, EXPONENTIAL, UNIFORM, LOGNORMAL, INFINITE)


@dataclass(frozen=True)
class IntervalDist:
    """One renewal-interval family: strictly positive random durations.

    Use the named constructors (:meth:`fixed`, :meth:`exponential`,
    :meth:`uniform`, :meth:`lognormal`, :meth:`infinite`) rather than the
    raw ``(kind, a, b)`` fields; ``infinite`` is the "this state never
    ends" sentinel that :meth:`OutagePattern.always_up` builds on.
    """

    kind: str
    a: float
    b: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown interval kind {self.kind!r} (known: {_KINDS})")
        if self.kind == INFINITE:
            return
        check_positive(self.a, f"IntervalDist.{self.kind}.a")
        if self.kind == UNIFORM:
            check_positive(self.b, "IntervalDist.uniform.high")
            if self.b < self.a:
                raise ValueError(
                    f"uniform interval needs low <= high, got [{self.a}, {self.b}]"
                )
        elif self.kind == LOGNORMAL:
            check_non_negative(self.b, "IntervalDist.lognormal.cv")
        # fixed/exponential carry no second parameter.

    # -- constructors -----------------------------------------------------
    @staticmethod
    def fixed(seconds: float) -> "IntervalDist":
        """Deterministic intervals of exactly ``seconds``."""
        return IntervalDist(FIXED, seconds)

    @staticmethod
    def exponential(mean_s: float) -> "IntervalDist":
        """Memoryless intervals with mean ``mean_s``."""
        return IntervalDist(EXPONENTIAL, mean_s)

    @staticmethod
    def uniform(low_s: float, high_s: float) -> "IntervalDist":
        """Uniform intervals on ``[low_s, high_s]``."""
        return IntervalDist(UNIFORM, low_s, high_s)

    @staticmethod
    def lognormal(median_s: float, cv: float = 0.5) -> "IntervalDist":
        """Log-normal intervals with the given median and coefficient of
        variation (the long-tailed shape rural-link surveys report)."""
        return IntervalDist(LOGNORMAL, median_s, cv)

    @staticmethod
    def infinite() -> "IntervalDist":
        """The state never ends — used by :meth:`OutagePattern.always_up`."""
        return IntervalDist(INFINITE, 1.0)

    # -- behaviour --------------------------------------------------------
    @property
    def mean_s(self) -> float:
        """Expected interval length (``inf`` for the infinite sentinel)."""
        if self.kind == INFINITE:
            return math.inf
        if self.kind in (FIXED, EXPONENTIAL):
            return self.a
        if self.kind == UNIFORM:
            return 0.5 * (self.a + self.b)
        # log-normal mean = median * exp(sigma^2 / 2)
        sigma2 = math.log1p(self.b**2)
        return self.a * math.exp(sigma2 / 2.0)

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one interval.  Fixed intervals consume no randomness, so a
        fixed/fixed pattern is identical for every seed by construction."""
        if self.kind == INFINITE:
            return math.inf
        if self.kind == FIXED:
            return self.a
        if self.kind == EXPONENTIAL:
            return float(rng.exponential(self.a))
        if self.kind == UNIFORM:
            return float(rng.uniform(self.a, self.b))
        sigma = math.sqrt(math.log1p(self.b**2))
        if sigma == 0.0:
            return self.a
        return float(rng.lognormal(mean=math.log(self.a), sigma=sigma))

    def describe(self) -> str:
        if self.kind == INFINITE:
            return "inf"
        if self.kind == FIXED:
            return f"{self.a:g}s"
        if self.kind == EXPONENTIAL:
            return f"exp({self.a:g}s)"
        if self.kind == UNIFORM:
            return f"U[{self.a:g},{self.b:g}]s"
        return f"lognorm({self.a:g}s, cv={self.b:g})"


@dataclass(frozen=True)
class OutagePattern:
    """Alternating up/down renewal process for one client's uplink.

    Compatible with the :class:`~repro.faults.spec.FaultSpec` compilation
    protocol (``kind`` attribute + ``compile_target``), so
    :func:`repro.faults.schedule.compile_schedule` realizes it alongside
    the other injectors with the same per-target seed derivation.

    Attributes
    ----------
    up, down:
        Interval distributions for the connected / disconnected states.
    start_up:
        Whether the link is connected at ``t=0`` (the common case; set
        ``False`` to model deployments that boot into darkness).
    """

    up: IntervalDist
    down: IntervalDist
    start_up: bool = True

    #: Compiled windows carry this kind (class attribute, spec protocol).
    kind = LINK_OUTAGE

    def __post_init__(self) -> None:
        if self.down.kind == INFINITE and self.up.kind == INFINITE:
            raise ValueError("up and down intervals cannot both be infinite")

    # -- constructors -----------------------------------------------------
    @staticmethod
    def always_up() -> "OutagePattern":
        """The zero-outage schedule: compiles to no windows for any seed."""
        return OutagePattern(up=IntervalDist.infinite(), down=IntervalDist.fixed(1.0))

    @staticmethod
    def duty_cycle(up_s: float, down_s: float, jitter: bool = True) -> "OutagePattern":
        """Mean ``up_s`` connected / ``down_s`` dark, memoryless if
        ``jitter`` else exactly periodic."""
        if jitter:
            return OutagePattern(
                up=IntervalDist.exponential(up_s), down=IntervalDist.exponential(down_s)
            )
        return OutagePattern(up=IntervalDist.fixed(up_s), down=IntervalDist.fixed(down_s))

    # -- compilation ------------------------------------------------------
    @property
    def never_fires(self) -> bool:
        """True when no down window can ever be realized."""
        return self.up.kind == INFINITE and self.start_up

    @property
    def expected_uptime_fraction(self) -> float:
        """Long-run fraction of time the link is up."""
        if self.up.kind == INFINITE:
            return 1.0
        if self.down.kind == INFINITE:
            return 0.0
        total = self.up.mean_s + self.down.mean_s
        return self.up.mean_s / total

    def compile_segments(
        self, horizon_s: float, rng: np.random.Generator
    ) -> List[Tuple[str, float, float]]:
        """Alternating ``("up"|"down", t0, t1)`` tiles covering exactly
        ``[0, horizon_s)`` — the invariant the property tests pin."""
        check_positive(horizon_s, "horizon_s")
        segments: List[Tuple[str, float, float]] = []
        t = 0.0
        state_up = self.start_up
        while t < horizon_s:
            dist = self.up if state_up else self.down
            # Exponential draws can round to exactly 0.0; clamp so the
            # renewal walk always advances and the loop terminates.
            length = max(dist.sample(rng), 1e-9)
            end = min(t + length, horizon_s)
            segments.append(("up" if state_up else "down", t, end))
            t = end
            state_up = not state_up
        return segments

    def compile_target(
        self, target: int, horizon_s: float, rng: np.random.Generator
    ) -> Tuple[FaultWindow, ...]:
        """Down tiles as :class:`FaultWindow` objects (spec protocol)."""
        if self.never_fires:
            check_positive(horizon_s, "horizon_s")
            return ()
        return tuple(
            FaultWindow(start=t0, end=t1, kind=LINK_OUTAGE, target=target)
            for state, t0, t1 in self.compile_segments(horizon_s, rng)
            if state == "down" and t1 > t0
        )

    def describe(self) -> str:
        if self.never_fires:
            return f"{LINK_OUTAGE}(off)"
        return (
            f"{LINK_OUTAGE}(up={self.up.describe()}, down={self.down.describe()}"
            + ("" if self.start_up else ", starts down")
            + ")"
        )


__all__ = [
    "LINK_OUTAGE",
    "FIXED",
    "EXPONENTIAL",
    "UNIFORM",
    "LOGNORMAL",
    "INFINITE",
    "IntervalDist",
    "OutagePattern",
]
