"""Bounded store-and-forward edge buffer for intermittent uplinks.

When a client's uplink is dark (:mod:`repro.network.outage`), the cycle's
payload does not vanish: the hive stores it locally and drains the backlog
as a burst when connectivity returns.  This module models that buffer with
exact integer byte accounting so the conservation invariant

    ``offered == delivered + dropped + resident``

holds bit-for-bit at every instant (enforced by
:class:`repro.validate.invariants.BufferConservation`).

Three overflow policies, selected by :class:`BufferSpec`:

* :data:`DROP_OLDEST` — evict the oldest payloads until the new one fits
  (freshest data wins; evictions count as dropped).
* :data:`DROP_NEWEST` — refuse the incoming payload, keep the backlog
  (oldest data wins).
* :data:`BLOCK` — the buffer refuses and the client *skips the cycle*
  entirely (no local inference either); the orchestrator reads the
  ``"blocked"`` outcome and records a missed cycle.

Drain is link-contention aware: ``k`` clients draining through the same AP
each see ``nominal_bps / k`` (the same processor-sharing reading as
:mod:`repro.network.contention`), so :meth:`BufferSpec.drain_quota` shrinks
as reconnect bursts pile up.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.network.link import LinkModel
from repro.network.wifi import PAPER_CYCLE_PAYLOAD_BYTES
from repro.util.validation import check_non_negative, check_positive

#: Overflow policies.
DROP_OLDEST = "drop-oldest"
DROP_NEWEST = "drop-newest"
BLOCK = "block"

BUFFER_POLICIES: Tuple[str, ...] = (DROP_OLDEST, DROP_NEWEST, BLOCK)

#: ``offer`` outcomes.
STORED = "stored"
DROPPED = "dropped"
BLOCKED = "blocked"


class BufferedPayload(NamedTuple):
    """One payload resident in (or drained from) the buffer."""

    enqueue_t: float
    nbytes: int


@dataclass(frozen=True)
class BufferSpec:
    """Sizing and policy of the per-client store-and-forward buffer.

    Attributes
    ----------
    capacity_bytes:
        Hard bound on resident bytes (flash/SD budget on the hive).
    policy:
        One of :data:`DROP_OLDEST`, :data:`DROP_NEWEST`, :data:`BLOCK`.
    payload_bytes:
        Size of one cycle's recording bundle (§IV payload by default).
    drain_window_s:
        Wall-clock budget per reconnected cycle for burst-draining backlog;
        the quota of payloads actually drained follows from the contended
        link rate (:meth:`drain_quota`).
    """

    capacity_bytes: int = 8 * PAPER_CYCLE_PAYLOAD_BYTES
    policy: str = DROP_OLDEST
    payload_bytes: int = PAPER_CYCLE_PAYLOAD_BYTES
    drain_window_s: float = 240.0

    def __post_init__(self) -> None:
        if self.policy not in BUFFER_POLICIES:
            raise ValueError(
                f"unknown buffer policy {self.policy!r} (known: {BUFFER_POLICIES})"
            )
        if not isinstance(self.capacity_bytes, (int, np.integer)):
            raise ValueError("capacity_bytes must be an integer byte count")
        if not isinstance(self.payload_bytes, (int, np.integer)):
            raise ValueError("payload_bytes must be an integer byte count")
        check_positive(self.capacity_bytes, "capacity_bytes")
        check_positive(self.payload_bytes, "payload_bytes")
        check_positive(self.drain_window_s, "drain_window_s")

    @staticmethod
    def for_cycles(n_cycles: int, policy: str = DROP_OLDEST, **kw) -> "BufferSpec":
        """A buffer holding exactly ``n_cycles`` paper payloads."""
        if n_cycles < 1:
            raise ValueError("for_cycles needs n_cycles >= 1")
        payload = int(kw.pop("payload_bytes", PAPER_CYCLE_PAYLOAD_BYTES))
        return BufferSpec(
            capacity_bytes=n_cycles * payload,
            policy=policy,
            payload_bytes=payload,
            **kw,
        )

    @property
    def capacity_payloads(self) -> int:
        """How many whole payloads fit."""
        return self.capacity_bytes // self.payload_bytes

    def drain_time_s(self, link: LinkModel, contenders: int = 1) -> float:
        """Airtime to drain ONE payload when ``contenders`` clients share
        the AP (processor-sharing: each sees ``nominal_bps/contenders``)."""
        if contenders < 1:
            raise ValueError("contenders must be >= 1")
        shared_bps = link.nominal_bps / contenders
        return link.handshake_s + self.payload_bytes * 8.0 / shared_bps

    def drain_quota(self, link: LinkModel, contenders: int = 1) -> int:
        """Whole payloads drainable inside ``drain_window_s`` at the
        contended rate.  Zero when even one payload cannot fit — the
        backlog then waits for a quieter cycle."""
        per = self.drain_time_s(link, contenders)
        if not math.isfinite(per) or per <= 0.0:
            return 0
        return int(self.drain_window_s // per)

    def drain_quota_for(self, per_payload_s: float, contenders: int = 1) -> int:
        """Same quota from a known single-drainer airtime (the fleet
        simulators price one payload at the scenario's calibrated upload
        duration rather than a :class:`LinkModel` draw).  ``contenders``
        stretches the airtime linearly, processor-sharing style."""
        check_positive(per_payload_s, "per_payload_s")
        if contenders < 1:
            raise ValueError("contenders must be >= 1")
        per = per_payload_s * contenders
        return int(self.drain_window_s // per)

    def describe(self) -> str:
        return (
            f"buffer({self.capacity_payloads}x{self.payload_bytes}B, "
            f"{self.policy}, drain<={self.drain_window_s:g}s)"
        )


class EdgeBuffer:
    """Mutable per-client buffer with exact byte conservation.

    Every byte presented via :meth:`offer` lands in exactly one of the
    delivered / dropped / resident ledgers; :attr:`conserves` checks the
    partition with integer equality.
    """

    def __init__(self, spec: BufferSpec) -> None:
        self.spec = spec
        self._queue: Deque[BufferedPayload] = deque()
        self.offered_bytes = 0
        self.delivered_bytes = 0
        self.dropped_bytes = 0
        self.offered_payloads = 0
        self.delivered_payloads = 0
        self.dropped_payloads = 0
        self.blocked_payloads = 0
        self.delays_s: List[float] = []

    # -- state -------------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        return sum(p.nbytes for p in self._queue)

    @property
    def resident_payloads(self) -> int:
        return len(self._queue)

    @property
    def conserves(self) -> bool:
        return (
            self.offered_bytes
            == self.delivered_bytes + self.dropped_bytes + self.resident_bytes
        )

    # -- ingest ------------------------------------------------------------
    def offer(self, t: float, nbytes: Optional[int] = None) -> str:
        """Present one payload at time ``t``; returns the outcome.

        ``"stored"`` — admitted (possibly after drop-oldest evictions);
        ``"dropped"`` — refused and discarded (drop-newest, or the payload
        can never fit); ``"blocked"`` — refused under :data:`BLOCK`, the
        caller must skip the cycle.  Blocked bytes count as dropped in the
        conservation ledger (they never become resident or delivered).
        """
        check_non_negative(t, "offer.t")
        nb = self.spec.payload_bytes if nbytes is None else int(nbytes)
        check_positive(nb, "offer.nbytes")
        self.offered_bytes += nb
        self.offered_payloads += 1
        if nb > self.spec.capacity_bytes:
            # Can never fit, under any policy.
            self.dropped_bytes += nb
            self.dropped_payloads += 1
            return DROPPED
        if self.resident_bytes + nb <= self.spec.capacity_bytes:
            self._queue.append(BufferedPayload(t, nb))
            return STORED
        if self.spec.policy == DROP_OLDEST:
            while self._queue and self.resident_bytes + nb > self.spec.capacity_bytes:
                evicted = self._queue.popleft()
                self.dropped_bytes += evicted.nbytes
                self.dropped_payloads += 1
            self._queue.append(BufferedPayload(t, nb))
            return STORED
        if self.spec.policy == DROP_NEWEST:
            self.dropped_bytes += nb
            self.dropped_payloads += 1
            return DROPPED
        # BLOCK: refuse and tell the caller to skip the cycle.
        self.dropped_bytes += nb
        self.dropped_payloads += 1
        self.blocked_payloads += 1
        return BLOCKED

    # -- drain -------------------------------------------------------------
    def take(self, t: float) -> Optional[BufferedPayload]:
        """Drain the oldest resident payload at time ``t`` (FIFO), or
        ``None`` when empty.  Records the store-and-forward delay."""
        if not self._queue:
            return None
        payload = self._queue.popleft()
        self.delivered_bytes += payload.nbytes
        self.delivered_payloads += 1
        self.delays_s.append(max(0.0, t - payload.enqueue_t))
        return payload

    def drain(self, t: float, max_payloads: int) -> List[BufferedPayload]:
        """Drain up to ``max_payloads`` oldest payloads at time ``t``."""
        out: List[BufferedPayload] = []
        for _ in range(max(0, int(max_payloads))):
            payload = self.take(t)
            if payload is None:
                break
            out.append(payload)
        return out

    def report(self) -> "BufferReport":
        return BufferReport.from_buffers([self])

    # -- persistence ---------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe state dump for checkpointing (spec not included —
        restore re-binds the caller's spec and refuses a capacity drift)."""
        return {
            "queue": [[p.enqueue_t, p.nbytes] for p in self._queue],
            "offered_bytes": self.offered_bytes,
            "delivered_bytes": self.delivered_bytes,
            "dropped_bytes": self.dropped_bytes,
            "offered_payloads": self.offered_payloads,
            "delivered_payloads": self.delivered_payloads,
            "dropped_payloads": self.dropped_payloads,
            "blocked_payloads": self.blocked_payloads,
            "delays_s": list(self.delays_s),
        }

    @staticmethod
    def restore(spec: BufferSpec, snap: dict) -> "EdgeBuffer":
        """Rebuild a buffer that continues exactly from ``snapshot()``.

        The restored buffer conserves by construction; a snapshot whose
        ledgers do not partition raises ``ValueError`` instead of silently
        resuming with broken accounting.
        """
        buf = EdgeBuffer(spec)
        for t, nbytes in snap["queue"]:
            buf._queue.append(BufferedPayload(float(t), int(nbytes)))
        for name in (
            "offered_bytes", "delivered_bytes", "dropped_bytes",
            "offered_payloads", "delivered_payloads", "dropped_payloads",
            "blocked_payloads",
        ):
            setattr(buf, name, int(snap[name]))
        buf.delays_s = [float(d) for d in snap["delays_s"]]
        if not buf.conserves:
            raise ValueError("buffer snapshot does not conserve bytes")
        return buf


@dataclass(frozen=True)
class BufferReport:
    """Fleet-level buffer ledger: integer byte totals plus delay stats.

    ``delays_s`` holds every drained payload's store-and-forward delay —
    the shift this subsystem adds to the detection-delay distribution.
    """

    offered_bytes: int = 0
    delivered_bytes: int = 0
    dropped_bytes: int = 0
    resident_bytes: int = 0
    offered_payloads: int = 0
    delivered_payloads: int = 0
    dropped_payloads: int = 0
    resident_payloads: int = 0
    blocked_payloads: int = 0
    delays_s: Tuple[float, ...] = field(default=(), repr=False)

    @staticmethod
    def from_buffers(buffers: Sequence[EdgeBuffer]) -> "BufferReport":
        delays: List[float] = []
        for b in buffers:
            delays.extend(b.delays_s)
        return BufferReport(
            offered_bytes=sum(b.offered_bytes for b in buffers),
            delivered_bytes=sum(b.delivered_bytes for b in buffers),
            dropped_bytes=sum(b.dropped_bytes for b in buffers),
            resident_bytes=sum(b.resident_bytes for b in buffers),
            offered_payloads=sum(b.offered_payloads for b in buffers),
            delivered_payloads=sum(b.delivered_payloads for b in buffers),
            dropped_payloads=sum(b.dropped_payloads for b in buffers),
            resident_payloads=sum(b.resident_payloads for b in buffers),
            blocked_payloads=sum(b.blocked_payloads for b in buffers),
            delays_s=tuple(delays),
        )

    @property
    def conserves(self) -> bool:
        """The tentpole invariant, with exact integer arithmetic."""
        return (
            self.offered_bytes
            == self.delivered_bytes + self.dropped_bytes + self.resident_bytes
        )

    @property
    def delivered_fraction(self) -> float:
        """Delivered / offered bytes (1.0 when nothing was ever buffered —
        a pristine link delivers everything directly)."""
        if self.offered_bytes == 0:
            return 1.0
        return self.delivered_bytes / self.offered_bytes

    def delay_quantile(self, q: float) -> float:
        """Store-and-forward delay quantile in seconds (0.0 when nothing
        was drained)."""
        if not self.delays_s:
            return 0.0
        return float(np.quantile(np.asarray(self.delays_s), q))

    def describe(self) -> str:
        return (
            f"buffered={self.offered_payloads} delivered={self.delivered_payloads} "
            f"dropped={self.dropped_payloads} resident={self.resident_payloads} "
            f"(delivered {100.0 * self.delivered_fraction:.1f}% of buffered bytes)"
        )


__all__ = [
    "DROP_OLDEST",
    "DROP_NEWEST",
    "BLOCK",
    "BUFFER_POLICIES",
    "STORED",
    "DROPPED",
    "BLOCKED",
    "BufferedPayload",
    "BufferSpec",
    "EdgeBuffer",
    "BufferReport",
]
