"""Stochastic link model.

Throughput draws follow a log-normal around the nominal rate (long-tailed
slowdowns, never negative), with an optional per-transfer handshake latency.
The coefficient of variation defaults to the value that reproduces §IV's
routine-duration spread (σ ≈ 3.5 s on a ~15 s transfer).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util.rng import SeedLike, resolve_rng  # noqa: F401  (re-export)
from repro.util.validation import check_in_range, check_non_negative, check_positive


def _check_payload(payload_bytes) -> float:
    """Reject NaN/inf/negative payloads before they poison transfer times."""
    if not math.isfinite(payload_bytes) or payload_bytes < 0:
        raise ValueError(
            f"payload_bytes must be a finite number >= 0, got {payload_bytes!r}"
        )
    return payload_bytes


@dataclass(frozen=True)
class LinkSample:
    """One realized transfer: throughput and total duration for a payload."""

    throughput_bps: float
    duration_s: float


class LinkModel:
    """Log-normal throughput link.

    Parameters
    ----------
    nominal_bps:
        Median throughput in bits/s.
    cv:
        Coefficient of variation of throughput (0 = deterministic).
    handshake_s:
        Fixed per-transfer setup latency (association, TLS, …).
    """

    def __init__(self, nominal_bps: float, cv: float = 0.25, handshake_s: float = 1.5) -> None:
        self.nominal_bps = check_positive(nominal_bps, "nominal_bps")
        self.cv = check_in_range(cv, "cv", 0.0, 2.0)
        self.handshake_s = check_non_negative(handshake_s, "handshake_s")
        # Log-normal parameterized so the *median* is nominal_bps and the
        # multiplicative spread matches cv.
        self._sigma = np.sqrt(np.log1p(self.cv**2))

    def sample_throughput(self, rng: np.random.Generator, size=None):
        """Draw throughput(s) in bits/s."""
        if self.cv == 0.0:
            if size is None:
                return self.nominal_bps
            return np.full(size, self.nominal_bps)
        draw = rng.lognormal(mean=np.log(self.nominal_bps), sigma=self._sigma, size=size)
        return float(draw) if size is None else draw

    def transfer(self, payload_bytes: int, rng: SeedLike = None, seed: SeedLike = None) -> LinkSample:
        """Realize one transfer of ``payload_bytes``.

        ``rng`` accepts anything :func:`repro.util.rng.make_rng` does — pass
        a live Generator to draw from an ongoing stream.  ``seed`` is a
        deprecated alias (see :func:`resolve_rng`).
        """
        _check_payload(payload_bytes)
        generator = resolve_rng(rng, seed)
        bps = self.sample_throughput(generator)
        duration = self.handshake_s + (payload_bytes * 8.0) / bps
        return LinkSample(throughput_bps=bps, duration_s=duration)

    def expected_duration(self, payload_bytes: int) -> float:
        """Duration at the *mean* throughput (log-normal mean > median)."""
        _check_payload(payload_bytes)
        mean_bps = self.nominal_bps * np.exp(self._sigma**2 / 2)
        return self.handshake_s + payload_bytes * 8.0 / mean_bps

    def describe(self) -> dict:
        """Stable, JSON-safe parameters (for config headers and fingerprints)."""
        return {
            "nominal_bps": self.nominal_bps,
            "cv": self.cv,
            "handshake_s": self.handshake_s,
        }
