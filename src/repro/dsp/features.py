"""Feature vectors for the classical-ML path.

The paper passes mel "vector features ... as is" to the SVM.  We use the
standard compaction for long clips: per-mel-band statistics over time (mean
and standard deviation), giving a fixed-length ``2*n_mels`` vector
irrespective of clip duration.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.spectrogram import MelSpectrogram


def mel_statistics(spec_db: np.ndarray) -> np.ndarray:
    """Per-band mean and std over time: ``(n_mels, T)`` → ``(2*n_mels,)``."""
    spec_db = np.asarray(spec_db, dtype=np.float64)
    if spec_db.ndim != 2:
        raise ValueError(f"spectrogram must be 2-D, got shape {spec_db.shape}")
    return np.concatenate([spec_db.mean(axis=1), spec_db.std(axis=1)])


def svm_feature_vector(signal: np.ndarray, mel: MelSpectrogram) -> np.ndarray:
    """Full audio → SVM feature path (mel dB stats)."""
    return mel_statistics(mel.db(signal))
