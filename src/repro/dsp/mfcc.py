"""Mel-frequency cepstral coefficients — the classical bioacoustics feature.

The queen-detection literature the paper builds on (Nolasco et al.) uses
MFCCs alongside mel spectrograms; we provide them as an alternative
classical-ML feature for the ablation in ``examples``/tests.  Implemented
from scratch: mel dB spectrogram → orthonormal DCT-II over the band axis →
first ``n_mfcc`` coefficients, optionally with liftering and Δ features.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.spectrogram import MelSpectrogram


def dct_ii_matrix(n: int, k: int) -> np.ndarray:
    """Orthonormal DCT-II basis: ``(k, n)`` matrix mapping n bands → k coefs."""
    if n < 1 or k < 1 or k > n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    grid = np.pi * (np.arange(n) + 0.5) / n
    basis = np.cos(np.outer(np.arange(k), grid))
    basis *= np.sqrt(2.0 / n)
    basis[0] *= 1.0 / np.sqrt(2.0)
    return basis


def mfcc(
    spec_db: np.ndarray,
    n_mfcc: int = 20,
    lifter: float = 0.0,
) -> np.ndarray:
    """MFCCs from a dB mel spectrogram: ``(n_mels, T)`` → ``(n_mfcc, T)``.

    ``lifter > 0`` applies sinusoidal liftering (emphasizes mid-order
    coefficients, the HTK convention).
    """
    spec_db = np.asarray(spec_db, dtype=np.float64)
    if spec_db.ndim != 2:
        raise ValueError(f"spectrogram must be 2-D, got shape {spec_db.shape}")
    basis = dct_ii_matrix(spec_db.shape[0], n_mfcc)
    coefs = basis @ spec_db
    if lifter > 0:
        weights = 1.0 + (lifter / 2.0) * np.sin(np.pi * np.arange(n_mfcc) / lifter)
        coefs = coefs * weights[:, None]
    elif lifter < 0:
        raise ValueError("lifter must be >= 0")
    return coefs


def delta(features: np.ndarray, width: int = 2) -> np.ndarray:
    """Regression-based temporal derivative (Δ features), same shape."""
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must be 2-D (coef, time)")
    if width < 1:
        raise ValueError("width must be >= 1")
    t = features.shape[1]
    padded = np.pad(features, ((0, 0), (width, width)), mode="edge")
    num = np.zeros_like(features)
    for d in range(1, width + 1):
        num += d * (padded[:, width + d : width + d + t] - padded[:, width - d : width - d + t])
    denom = 2.0 * sum(d * d for d in range(1, width + 1))
    return num / denom


def mfcc_feature_vector(
    signal: np.ndarray,
    mel: MelSpectrogram,
    n_mfcc: int = 20,
    include_delta: bool = True,
) -> np.ndarray:
    """Clip → fixed-length MFCC statistics vector for classical classifiers.

    Mean and std per coefficient (and per Δ-coefficient when enabled):
    ``2 * n_mfcc * (1 + include_delta)`` values.
    """
    coefs = mfcc(mel.db(signal), n_mfcc=n_mfcc)
    parts = [coefs.mean(axis=1), coefs.std(axis=1)]
    if include_delta:
        d = delta(coefs)
        parts += [d.mean(axis=1), d.std(axis=1)]
    return np.concatenate(parts)
