"""Analysis windows for the STFT."""

from __future__ import annotations

from functools import lru_cache

import numpy as np


def hann(length: int) -> np.ndarray:
    """Periodic Hann window (the STFT convention, not symmetric)."""
    _check_length(length)
    if length == 1:
        return np.ones(1)
    return 0.5 * (1.0 - np.cos(2.0 * np.pi * np.arange(length) / length))


def hamming(length: int) -> np.ndarray:
    """Periodic Hamming window."""
    _check_length(length)
    if length == 1:
        return np.ones(1)
    return 0.54 - 0.46 * np.cos(2.0 * np.pi * np.arange(length) / length)


def rectangular(length: int) -> np.ndarray:
    """Rectangular (boxcar) window."""
    _check_length(length)
    return np.ones(length)


_WINDOWS = {"hann": hann, "hamming": hamming, "rectangular": rectangular, "boxcar": rectangular}


def get_window(name: str, length: int) -> np.ndarray:
    """Look up a window by name."""
    try:
        fn = _WINDOWS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_WINDOWS))
        raise ValueError(f"unknown window {name!r} (known: {known})") from None
    return fn(length)


def cached_window(name: str, length: int) -> np.ndarray:
    """Memoized :func:`get_window`, returned **read-only**.

    The STFT recomputed its analysis window on every call; with the paper
    settings that is one 2048-point cosine table per clip.  All callers of
    the same (name, length) pair — case-insensitively — share one
    immutable array instead.
    """
    return _cached_window(name.lower(), length)


@lru_cache(maxsize=64)
def _cached_window(name: str, length: int) -> np.ndarray:
    window = get_window(name, length)
    window.flags.writeable = False
    return window


def _check_length(length: int) -> None:
    if not isinstance(length, (int, np.integer)) or isinstance(length, bool):
        raise TypeError(f"window length must be an int, got {type(length).__name__}")
    if length < 1:
        raise ValueError(f"window length must be >= 1, got {length}")
