"""DSP substrate: STFT, mel filterbank, spectrogram pipeline, image resize.

Implements from scratch (NumPy only) the feature pipeline of §V: mel-scaled
spectrograms of 10-second clips at 22 050 Hz with an FFT window of 2048, a
hop of 512 and 128 mel bands, converted to dB and optionally resized to
square images for the CNN.
"""

from repro.dsp.windows import hann, hamming, rectangular, get_window
from repro.dsp.stft import stft, frame_signal, istft_magnitude_check
from repro.dsp.mel import hz_to_mel, mel_to_hz, mel_filterbank
from repro.dsp.spectrogram import MelSpectrogram, SpectrogramConfig, power_to_db
from repro.dsp.image import resize_bilinear, normalize_image, spectrogram_to_image
from repro.dsp.features import mel_statistics, svm_feature_vector
from repro.dsp.mfcc import mfcc, mfcc_feature_vector, delta, dct_ii_matrix

__all__ = [
    "hann",
    "hamming",
    "rectangular",
    "get_window",
    "stft",
    "frame_signal",
    "istft_magnitude_check",
    "hz_to_mel",
    "mel_to_hz",
    "mel_filterbank",
    "MelSpectrogram",
    "SpectrogramConfig",
    "power_to_db",
    "resize_bilinear",
    "normalize_image",
    "spectrogram_to_image",
    "mel_statistics",
    "svm_feature_vector",
    "mfcc",
    "mfcc_feature_vector",
    "delta",
    "dct_ii_matrix",
]
