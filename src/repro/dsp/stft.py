"""Short-time Fourier transform.

Vectorized implementation: the signal is cut into overlapping frames with a
strided view (no copy until windowing), then transformed with a single 2-D
``rfft`` — the idiom the HPC guides recommend over per-frame Python loops.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.dsp.windows import cached_window


def frame_signal(signal: np.ndarray, frame_length: int, hop: int, center: bool = True) -> np.ndarray:
    """Cut ``signal`` into overlapping frames of ``frame_length`` every ``hop``.

    With ``center=True`` the signal is reflection-padded by ``frame_length//2``
    on both sides (librosa convention) so frame ``i`` is centered on sample
    ``i*hop``.  Returns an array of shape ``(n_frames, frame_length)``.
    """
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim != 1:
        raise ValueError(f"signal must be 1-D, got shape {signal.shape}")
    if frame_length < 1 or hop < 1:
        raise ValueError("frame_length and hop must be >= 1")
    if center:
        pad = frame_length // 2
        signal = np.pad(signal, pad, mode="reflect" if signal.size > 1 else "constant")
    if signal.size < frame_length:
        raise ValueError(f"signal too short ({signal.size} samples) for frame_length={frame_length}")
    n_frames = 1 + (signal.size - frame_length) // hop
    stride = signal.strides[0]
    frames = as_strided(
        signal,
        shape=(n_frames, frame_length),
        strides=(hop * stride, stride),
        writeable=False,
    )
    return frames


def stft(
    signal: np.ndarray,
    n_fft: int = 2048,
    hop: int = 512,
    window: str = "hann",
    center: bool = True,
) -> np.ndarray:
    """Complex STFT of shape ``(n_fft//2 + 1, n_frames)``.

    Matches the paper's feature settings by default (n_fft 2048, hop 512).
    """
    frames = frame_signal(signal, n_fft, hop, center=center)
    win = cached_window(window, n_fft)
    # Windowing copies; the rfft is applied across the frame axis in one call.
    spectra = np.fft.rfft(frames * win[None, :], axis=1)
    return spectra.T


def istft_magnitude_check(signal: np.ndarray, n_fft: int = 2048, hop: int = 512) -> float:
    """Parseval-style diagnostic: ratio of STFT power to windowed signal power.

    For a Hann window with 4× overlap this ratio is a constant; tests use it
    to pin down the transform's scaling.  Returns the ratio.
    """
    spec = stft(signal, n_fft=n_fft, hop=hop)
    stft_power = float(np.sum(np.abs(spec) ** 2))
    sig_power = float(np.sum(np.asarray(signal, dtype=np.float64) ** 2))
    if sig_power == 0:
        raise ValueError("zero-power signal")
    return stft_power / sig_power
