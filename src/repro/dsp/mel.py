"""Mel scale and triangular mel filterbank (Slaney-free, HTK mel formula)."""

from __future__ import annotations

from functools import lru_cache

import numpy as np


def hz_to_mel(hz):
    """HTK mel scale: ``2595 * log10(1 + hz/700)``. Accepts scalars/arrays."""
    hz = np.asarray(hz, dtype=np.float64)
    if np.any(hz < 0):
        raise ValueError("frequency must be >= 0")
    out = 2595.0 * np.log10(1.0 + hz / 700.0)
    return float(out) if out.ndim == 0 else out


def mel_to_hz(mel):
    """Inverse of :func:`hz_to_mel`."""
    mel = np.asarray(mel, dtype=np.float64)
    if np.any(mel < 0):
        raise ValueError("mel value must be >= 0")
    out = 700.0 * (10.0 ** (mel / 2595.0) - 1.0)
    return float(out) if out.ndim == 0 else out


def mel_filterbank(
    sample_rate: int,
    n_fft: int,
    n_mels: int = 128,
    fmin: float = 0.0,
    fmax: float | None = None,
    normalize: bool = True,
) -> np.ndarray:
    """Triangular mel filterbank of shape ``(n_mels, n_fft//2 + 1)``.

    With ``normalize=True`` each filter is area-normalized (Slaney style) so
    white noise yields a flat mel spectrum; tests rely on the un-normalized
    bank forming a partition of unity between the centre frequencies of the
    first and last filters.
    """
    if n_mels < 1:
        raise ValueError("n_mels must be >= 1")
    if n_fft < 2:
        raise ValueError("n_fft must be >= 2")
    if sample_rate <= 0:
        raise ValueError("sample_rate must be > 0")
    fmax = sample_rate / 2.0 if fmax is None else float(fmax)
    if not (0 <= fmin < fmax <= sample_rate / 2.0 + 1e-9):
        raise ValueError(f"need 0 <= fmin < fmax <= nyquist, got fmin={fmin}, fmax={fmax}")

    n_bins = n_fft // 2 + 1
    fft_freqs = np.linspace(0.0, sample_rate / 2.0, n_bins)
    mel_points = np.linspace(hz_to_mel(fmin), hz_to_mel(fmax), n_mels + 2)
    hz_points = mel_to_hz(mel_points)

    bank = np.zeros((n_mels, n_bins))
    for m in range(n_mels):
        lo, center, hi = hz_points[m], hz_points[m + 1], hz_points[m + 2]
        # Rising and falling ramps; guard zero-width edges.
        up = (fft_freqs - lo) / max(center - lo, 1e-12)
        down = (hi - fft_freqs) / max(hi - center, 1e-12)
        bank[m] = np.clip(np.minimum(up, down), 0.0, None)

    if normalize:
        # Slaney area normalization: 2 / bandwidth.
        enorm = 2.0 / (hz_points[2:] - hz_points[:-2])
        bank *= enorm[:, None]
    return bank


@lru_cache(maxsize=32)
def cached_mel_filterbank(
    sample_rate: int,
    n_fft: int,
    n_mels: int = 128,
    fmin: float = 0.0,
    fmax: float | None = None,
    normalize: bool = True,
) -> np.ndarray:
    """Memoized :func:`mel_filterbank`, shared across pipeline instances.

    The bank is the dominant setup cost of a mel pipeline, and every
    :class:`~repro.dsp.spectrogram.MelSpectrogram` built from the same
    config needs the identical matrix — so it is computed once per distinct
    parameter tuple and returned **read-only** (all callers share one
    array; mutate a copy if you need to).
    """
    bank = mel_filterbank(sample_rate, n_fft, n_mels, fmin, fmax, normalize)
    bank.flags.writeable = False
    return bank
