"""Spectrogram → image conversion (bilinear resize + normalization).

The paper converts mel spectrograms into N×N images as CNN input and sweeps
N (Figure 5).  Bilinear resampling is implemented with separable 1-D
interpolation (two vectorized ``np.interp``-style gathers), which is exact
for axis-aligned bilinear and allocation-light.
"""

from __future__ import annotations

import numpy as np


def _axis_coords(n_out: int, n_in: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Half-pixel-centered source coordinates and gather indices/weights."""
    if n_out < 1 or n_in < 1:
        raise ValueError("sizes must be >= 1")
    # align: out pixel i center maps to ((i+0.5) * n_in/n_out - 0.5) in input.
    src = (np.arange(n_out) + 0.5) * (n_in / n_out) - 0.5
    src = np.clip(src, 0.0, n_in - 1.0)
    lo = np.floor(src).astype(np.intp)
    hi = np.minimum(lo + 1, n_in - 1)
    w = src - lo
    return lo, hi, w


def resize_bilinear(image: np.ndarray, height: int, width: int) -> np.ndarray:
    """Resize a 2-D array to ``(height, width)`` with bilinear interpolation."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"image must be 2-D, got shape {image.shape}")
    r_lo, r_hi, r_w = _axis_coords(height, image.shape[0])
    c_lo, c_hi, c_w = _axis_coords(width, image.shape[1])
    # Rows first (separable).
    rows = image[r_lo, :] * (1.0 - r_w)[:, None] + image[r_hi, :] * r_w[:, None]
    out = rows[:, c_lo] * (1.0 - c_w)[None, :] + rows[:, c_hi] * c_w[None, :]
    return out


def normalize_image(image: np.ndarray, eps: float = 1e-9) -> np.ndarray:
    """Scale an image to zero mean / unit std (per-image standardization)."""
    image = np.asarray(image, dtype=np.float64)
    std = image.std()
    return (image - image.mean()) / (std + eps)


def spectrogram_to_image(spec_db: np.ndarray, size: int) -> np.ndarray:
    """Paper pipeline: resize a dB mel spectrogram to ``size×size`` and standardize."""
    if size < 2:
        raise ValueError("size must be >= 2")
    return normalize_image(resize_bilinear(spec_db, size, size))
