"""Mel-spectrogram pipeline matching the paper's §V settings."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.mel import cached_mel_filterbank
from repro.dsp.stft import stft


def power_to_db(power: np.ndarray, ref: float | None = None, top_db: float = 80.0) -> np.ndarray:
    """Convert a power spectrogram to decibels.

    ``ref`` defaults to the array maximum (librosa's ``ref=np.max``); the
    dynamic range is clipped at ``top_db`` below the reference.
    """
    power = np.asarray(power, dtype=np.float64)
    if np.any(power < 0):
        raise ValueError("power values must be >= 0")
    if ref is None:
        ref = float(power.max()) if power.size else 1.0
    ref = max(ref, 1e-20)
    db = 10.0 * np.log10(np.maximum(power, 1e-20) / ref)
    if top_db is not None:
        if top_db <= 0:
            raise ValueError("top_db must be > 0")
        db = np.maximum(db, db.max() - top_db)
    return db


@dataclass(frozen=True)
class SpectrogramConfig:
    """Feature settings; defaults are the paper's (§V)."""

    sample_rate: int = 22050
    n_fft: int = 2048
    hop: int = 512
    n_mels: int = 128
    fmin: float = 0.0
    fmax: float | None = None
    window: str = "hann"

    def __post_init__(self) -> None:
        if self.n_fft < 16:
            raise ValueError("n_fft must be >= 16")
        if self.hop < 1:
            raise ValueError("hop must be >= 1")
        if self.n_mels < 1:
            raise ValueError("n_mels must be >= 1")
        if self.sample_rate <= 0:
            raise ValueError("sample_rate must be > 0")


class MelSpectrogram:
    """Callable audio → (n_mels, n_frames) mel power/dB spectrogram.

    The filterbank comes from the module-level memo keyed on the config
    (:func:`repro.dsp.mel.cached_mel_filterbank`), so instances built with
    equal settings share one immutable matrix instead of each paying the
    dominant setup cost; the per-clip path is a strided STFT (with a
    likewise-cached analysis window) plus one matmul.
    """

    def __init__(self, config: SpectrogramConfig = SpectrogramConfig()) -> None:
        self.config = config
        self._bank = cached_mel_filterbank(
            sample_rate=config.sample_rate,
            n_fft=config.n_fft,
            n_mels=config.n_mels,
            fmin=config.fmin,
            fmax=config.fmax,
        )

    @property
    def filterbank(self) -> np.ndarray:
        """The (n_mels, n_fft//2+1) filterbank (read-only, shared)."""
        return self._bank

    def power(self, signal: np.ndarray) -> np.ndarray:
        """Mel *power* spectrogram, shape ``(n_mels, n_frames)``."""
        spec = stft(signal, n_fft=self.config.n_fft, hop=self.config.hop, window=self.config.window)
        power = np.abs(spec) ** 2
        return self._bank @ power

    def db(self, signal: np.ndarray, top_db: float = 80.0) -> np.ndarray:
        """Mel spectrogram in dB relative to the clip maximum."""
        return power_to_db(self.power(signal), top_db=top_db)

    def __call__(self, signal: np.ndarray) -> np.ndarray:
        return self.db(signal)
