"""Structured failure taxonomy for crash-safe execution.

Every resilience failure mode maps to one exception type so callers (the
CLI, the chaos harness, CI) can branch on *what* went wrong instead of
parsing messages:

``CheckpointCorrupt``
    The checkpoint file is truncated or its payload digest does not match
    — the run that wrote it died mid-write *outside* the atomic protocol
    (e.g. the file was tampered with), or the storage lost bytes.  The
    file is unusable; the run must restart fresh.
``CheckpointSchemaMismatch``
    The checkpoint was written by an incompatible schema version; it is
    refused with a message naming both versions rather than silently
    misinterpreted.
``CheckpointMismatch``
    The checkpoint is internally valid but belongs to a *different run*
    (other experiment, other parameters); resuming from it would splice
    incompatible state.
``InterruptedRun``
    The run was interrupted (Ctrl-C) after a clean shutdown; carries the
    path of the last durable checkpoint so the caller can print an exact
    resume command.
``SupervisionError``
    A supervised parallel chunk exhausted its retry budget; carries the
    per-chunk attempt ledger instead of hanging or dying with a bare
    ``BrokenProcessPool``.
``SnapshotError``
    The object graph handed to the snapshot layer contains state that is
    not deterministically serializable (e.g. an event callback that is not
    a registered, named callback).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class ResilienceError(RuntimeError):
    """Base class for all crash-safe-execution failures."""


class SnapshotError(ResilienceError):
    """State cannot be deterministically serialized (or deserialized)."""


class CheckpointError(ResilienceError):
    """Base class for checkpoint-file problems; carries the offending path."""

    def __init__(self, message: str, path: Optional[str] = None) -> None:
        super().__init__(message)
        self.path = path


class CheckpointCorrupt(CheckpointError):
    """Checkpoint file is truncated, unparseable, or fails its digest."""


class CheckpointSchemaMismatch(CheckpointError):
    """Checkpoint was written by an incompatible schema version."""

    def __init__(
        self,
        message: str,
        path: Optional[str] = None,
        found: Optional[int] = None,
        expected: Optional[int] = None,
    ) -> None:
        super().__init__(message, path)
        self.found = found
        self.expected = expected


class CheckpointMismatch(CheckpointError):
    """Checkpoint belongs to a different run (experiment or parameters)."""


class InterruptedRun(ResilienceError):
    """A run was interrupted after clean shutdown.

    ``checkpoint_path`` is the last durable checkpoint (``None`` when the
    run was not checkpointing), ``completed``/``total`` count finished work
    units at the moment of interruption.
    """

    def __init__(
        self,
        message: str = "run interrupted",
        checkpoint_path: Optional[str] = None,
        completed: int = 0,
        total: int = 0,
    ) -> None:
        super().__init__(message)
        self.checkpoint_path = checkpoint_path
        self.completed = completed
        self.total = total

    def resume_hint(self) -> str:
        """One-line human hint on how to pick the run back up."""
        if self.checkpoint_path is None:
            return "no checkpoint was active; the run must restart from scratch"
        return (
            f"{self.completed}/{self.total} work units are durable in "
            f"{self.checkpoint_path}; re-run with --resume to continue"
        )


class SupervisionError(ResilienceError):
    """A supervised parallel run failed structurally after bounded retries.

    ``failures`` is a list of per-chunk records ``{chunk, attempts, error,
    kind}`` where ``kind`` is ``"crash"`` (worker died), ``"deadline"``
    (worker exceeded its chunk deadline) or ``"exception"`` (the work
    function itself raised).
    """

    def __init__(self, message: str, failures: Optional[List[Dict[str, Any]]] = None) -> None:
        super().__init__(message)
        self.failures = failures or []

    def describe(self) -> str:
        lines = [str(self)]
        for f in self.failures:
            lines.append(
                f"  chunk {f.get('chunk')}: {f.get('kind')} after "
                f"{f.get('attempts')} attempt(s): {f.get('error')}"
            )
        return "\n".join(lines)


__all__ = [
    "ResilienceError",
    "SnapshotError",
    "CheckpointError",
    "CheckpointCorrupt",
    "CheckpointSchemaMismatch",
    "CheckpointMismatch",
    "InterruptedRun",
    "SupervisionError",
]
