"""Crash-safe execution: checkpoints, supervision, chaos (PR 5).

The north-star "production-scale system" must survive interruption: a
week-long sweep that is preempted, OOM-killed, or loses a worker must
resume from durable state and finish **bit-identical** to an
uninterrupted run — the orchestration-resilience concern the paper raises
for duty-cycled edge nodes (§IV night outages), lifted to the simulation
infrastructure itself.  Three layers:

:mod:`repro.resilience.snapshot`
    Versioned, schema-checked snapshot/restore of live state: the DES
    engine's full scheduling state, numpy RNG streams, realized fault
    schedules (re-armed on restore), and observability collectors.
:mod:`repro.resilience.checkpoint`
    Crash-only checkpoint files (atomic replace + payload digest +
    schema gate), cadence policies (every N units / N wall-seconds), and
    the multi-stage :class:`RunCheckpoint` the experiments resume from.
:mod:`repro.resilience.supervisor`
    :func:`supervised_map` — chunked parallel execution with heartbeats,
    per-chunk deadlines, crash/hang retries on fresh workers (same
    derived seeds, so retried == serial bit for bit), bounded retries
    then structured failure, and clean Ctrl-C teardown surfacing
    :class:`InterruptedRun`.

``repro-chaos`` (:mod:`repro.resilience.chaos`) turns the guarantees into
executable scenarios: SIGKILLed workers, truncated checkpoints, stale
schemas, kill-and-resume fingerprint equality.  ``docs/RESILIENCE.md``
is the prose contract.

Like :mod:`repro.obs`, the package lazy-loads: importing it costs nothing
until a symbol is touched, so the unresilient fast path stays unchanged.
"""

from __future__ import annotations

#: name → defining submodule (PEP 562 lazy resolution).
_LAZY = {
    "ResilienceError": "errors",
    "SnapshotError": "errors",
    "CheckpointError": "errors",
    "CheckpointCorrupt": "errors",
    "CheckpointSchemaMismatch": "errors",
    "CheckpointMismatch": "errors",
    "InterruptedRun": "errors",
    "SupervisionError": "errors",
    "register_callback": "registry",
    "SNAPSHOT_VERSION": "snapshot",
    "snapshot_engine": "snapshot",
    "restore_engine": "snapshot",
    "snapshot_rng": "snapshot",
    "restore_rng": "snapshot",
    "snapshot_schedule": "snapshot",
    "restore_schedule": "snapshot",
    "snapshot_obs": "snapshot",
    "restore_obs": "snapshot",
    "CHECKPOINT_SCHEMA": "checkpoint",
    "run_key": "checkpoint",
    "write_checkpoint": "checkpoint",
    "load_checkpoint": "checkpoint",
    "CheckpointPolicy": "checkpoint",
    "Checkpointer": "checkpoint",
    "RunCheckpoint": "checkpoint",
    "StageCheckpoint": "checkpoint",
    "supervised_map": "supervisor",
}


def __getattr__(name: str):
    submodule = _LAZY.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f"{__name__}.{submodule}"), name)


__all__ = list(_LAZY)
