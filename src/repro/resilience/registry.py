"""Named-callback registry: the serialization boundary for event callbacks.

An :class:`~repro.des.engine.Event` carries arbitrary Python callables, so
a snapshot of the event heap is only deterministic if every callback can
be *named* and later *resolved* back to the same function.  The registry
holds that mapping: module-level functions register under a stable string
name, and a scheduled callback serializes as ``{"ref": name, "args":
[...]}`` — either the bare registered function or a
:func:`functools.partial` of one over JSON-able arguments.

Anything else (lambdas, bound methods of live processes, closures) raises
:class:`~repro.resilience.errors.SnapshotError`: an engine that still has
generator processes attached is **not** snapshot-safe, by design — fleet
runs checkpoint at quiescent boundaries where the heap holds only
callback-free timeouts (see ``docs/RESILIENCE.md``).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Optional

from repro.resilience.errors import SnapshotError

_CALLBACKS: Dict[str, Callable] = {}
_NAMES: Dict[Callable, str] = {}


def register_callback(name: Optional[str] = None) -> Callable:
    """Decorator registering a module-level function as a named callback.

    ``name`` defaults to ``module:qualname``.  Registering two different
    functions under one name is an error (the mapping must be stable
    across process restarts for restore to be deterministic).
    """

    def deco(fn: Callable) -> Callable:
        key = name or f"{fn.__module__}:{fn.__qualname__}"
        existing = _CALLBACKS.get(key)
        if existing is not None and existing is not fn:
            raise ValueError(f"callback name {key!r} already registered to {existing!r}")
        _CALLBACKS[key] = fn
        _NAMES[fn] = key
        return fn

    return deco


def registered_name(fn: Callable) -> Optional[str]:
    """The registry name of ``fn``, or ``None`` if it is unregistered."""
    return _NAMES.get(fn)


def encode_callback(cb: Callable) -> Dict[str, Any]:
    """Serialize one event callback to a ``{"ref", "args"}`` record."""
    if isinstance(cb, functools.partial):
        name = _NAMES.get(cb.func)
        if name is None:
            raise SnapshotError(
                f"partial over unregistered callback {cb.func!r}; "
                "register it with @register_callback() to make it snapshot-safe"
            )
        if cb.keywords:
            raise SnapshotError("partial callbacks with keyword arguments are not snapshot-safe")
        return {"ref": name, "args": list(cb.args)}
    name = _NAMES.get(cb)
    if name is None:
        raise SnapshotError(
            f"unregistered event callback {cb!r}: the engine is not snapshot-safe "
            "at this point (live processes / ad-hoc callbacks on the heap)"
        )
    return {"ref": name, "args": []}


def resolve_callback(record: Dict[str, Any]) -> Callable:
    """Inverse of :func:`encode_callback`."""
    name = record.get("ref")
    fn = _CALLBACKS.get(name)
    if fn is None:
        raise SnapshotError(
            f"snapshot names callback {name!r} but nothing is registered under "
            "that name in this process; import the module that registers it first"
        )
    args = record.get("args") or []
    return functools.partial(fn, *args) if args else fn


__all__ = ["register_callback", "registered_name", "encode_callback", "resolve_callback"]
