"""Crash-only checkpoint files and cadence policies.

A checkpoint is a single JSON *envelope* written atomically
(:mod:`repro.util.atomic`: tmp + fsync + rename) around a compressed,
digest-protected payload::

    {
      "schema":  2,                 # CHECKPOINT_SCHEMA — refused if stale
      "kind":    "run",             # what the payload is
      "run_key": "<sha256>",        # identity of the producing run
      "sha256":  "<hex>",           # digest of the payload field
      "payload": "<base64(zlib(pickle(state)))>"
    }

The envelope makes every failure mode a *structured* one:

* a crash mid-write never leaves a truncated file (atomic replace);
* a truncated/tampered file fails JSON parsing or the digest check and
  raises :class:`~repro.resilience.errors.CheckpointCorrupt`;
* a checkpoint from an older code generation raises
  :class:`~repro.resilience.errors.CheckpointSchemaMismatch` naming both
  versions instead of being misinterpreted;
* a checkpoint from a *different run* (other experiment or parameters)
  raises :class:`~repro.resilience.errors.CheckpointMismatch`.

:class:`Checkpointer` decides *when* to persist — every N completed work
units and/or every N wall-clock seconds — and :class:`RunCheckpoint`
layers a multi-stage store on top (one section per pipeline stage, chunk
results keyed by index), which is what the experiment runners and the
supervised parallel map share.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
import time
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.resilience.errors import (
    CheckpointCorrupt,
    CheckpointMismatch,
    CheckpointSchemaMismatch,
    InterruptedRun,
)
from repro.util.atomic import atomic_write_json

#: Bump on any structural change to the envelope or payload layout.
#: 2 — supervised chunk entries carry their (lo, hi) item bounds so resume
#:     can refuse a same-index chunk recorded under a different chunking.
CHECKPOINT_SCHEMA = 2

_REQUIRED_KEYS = ("schema", "kind", "sha256", "payload")


def run_key(*parts: Any) -> str:
    """Stable identity hash of a run: experiment id + canonical parameters.

    Length-prefixed like :func:`repro.util.rng.derive_seed`, so component
    structure is part of the key and no separator collisions exist.
    """
    h = hashlib.sha256()
    for part in parts:
        data = repr(part).encode()
        h.update(len(data).to_bytes(4, "little"))
        h.update(data)
    return h.hexdigest()


def write_checkpoint(
    path, payload: Any, *, kind: str, run_key: Optional[str] = None
) -> None:
    """Atomically persist ``payload`` under the digest-protected envelope."""
    blob = base64.b64encode(zlib.compress(pickle.dumps(payload, protocol=4))).decode("ascii")
    envelope = {
        "schema": CHECKPOINT_SCHEMA,
        "kind": kind,
        "run_key": run_key,
        "sha256": hashlib.sha256(blob.encode("ascii")).hexdigest(),
        "payload": blob,
    }
    atomic_write_json(path, envelope)


def load_checkpoint(
    path, *, kind: Optional[str] = None, expect_run_key: Optional[str] = None
) -> Any:
    """Load and verify a checkpoint; every failure is a structured error."""
    path_s = str(path)
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointCorrupt(
            f"checkpoint {path_s} is not valid JSON (truncated write or foreign file): {exc}",
            path=path_s,
        ) from exc
    if not isinstance(envelope, dict) or any(k not in envelope for k in _REQUIRED_KEYS):
        raise CheckpointCorrupt(
            f"checkpoint {path_s} is missing envelope fields", path=path_s
        )
    schema = envelope["schema"]
    if schema != CHECKPOINT_SCHEMA:
        raise CheckpointSchemaMismatch(
            f"checkpoint {path_s} was written with schema {schema!r}; this code "
            f"expects {CHECKPOINT_SCHEMA}. Resuming across schema generations is "
            "refused — restart the run fresh (the old checkpoint is unusable).",
            path=path_s,
            found=schema if isinstance(schema, int) else None,
            expected=CHECKPOINT_SCHEMA,
        )
    blob = envelope["payload"]
    if hashlib.sha256(str(blob).encode("ascii")).hexdigest() != envelope["sha256"]:
        raise CheckpointCorrupt(
            f"checkpoint {path_s} fails its payload digest (corrupt or tampered)",
            path=path_s,
        )
    if kind is not None and envelope["kind"] != kind:
        raise CheckpointMismatch(
            f"checkpoint {path_s} holds a {envelope['kind']!r} payload, expected {kind!r}",
            path=path_s,
        )
    if expect_run_key is not None and envelope.get("run_key") != expect_run_key:
        raise CheckpointMismatch(
            f"checkpoint {path_s} belongs to a different run "
            f"(run_key {envelope.get('run_key')!r} != expected {expect_run_key!r}); "
            "refusing to splice incompatible state — pick a different --checkpoint "
            "path or drop --resume",
            path=path_s,
        )
    try:
        return pickle.loads(zlib.decompress(base64.b64decode(blob)))
    except Exception as exc:  # zlib.error, pickle errors, binascii.Error
        raise CheckpointCorrupt(
            f"checkpoint {path_s} payload does not decode: {exc}", path=path_s
        ) from exc


# ---------------------------------------------------------------------------
# cadence
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to persist: every N completed units and/or every N wall seconds.

    Both triggers are OR-ed; ``every_units=1`` (the default) persists after
    every completed work unit — maximally durable, and still cheap because
    units are whole simulation chunks (see the overhead budget in
    ``docs/PERFORMANCE.md``).
    """

    every_units: int = 1
    every_wall_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.every_units < 1:
            raise ValueError("every_units must be >= 1")
        if self.every_wall_s is not None and self.every_wall_s <= 0:
            raise ValueError("every_wall_s must be > 0")


class Checkpointer:
    """Cadence-driven checkpoint writer with a deterministic chaos hook.

    ``abort_after_saves=N`` raises
    :class:`~repro.resilience.errors.InterruptedRun` immediately after the
    N-th durable save — a *deterministic* simulated crash landing exactly
    on a checkpoint boundary, which is what the chaos suite and the
    ``checkpoint-resume`` golden case use to prove resume == fresh.
    """

    def __init__(
        self,
        path,
        kind: str = "run",
        run_key: Optional[str] = None,
        policy: Optional[CheckpointPolicy] = None,
        abort_after_saves: Optional[int] = None,
    ) -> None:
        self.path = str(path)
        self.kind = kind
        self.run_key = run_key
        self.policy = policy or CheckpointPolicy()
        self.abort_after_saves = abort_after_saves
        self.saves = 0
        self._units_since_save = 0
        self._last_save_wall = time.monotonic()

    def record_units(self, n: int = 1) -> None:
        """Count ``n`` completed work units toward the cadence."""
        self._units_since_save += n

    @property
    def due(self) -> bool:
        if self._units_since_save >= self.policy.every_units:
            return True
        if (
            self.policy.every_wall_s is not None
            and self._units_since_save > 0
            and time.monotonic() - self._last_save_wall >= self.policy.every_wall_s
        ):
            return True
        return False

    def save(self, payload: Any) -> None:
        """Unconditionally persist ``payload`` (atomic, digest-protected)."""
        write_checkpoint(self.path, payload, kind=self.kind, run_key=self.run_key)
        self.saves += 1
        self._units_since_save = 0
        self._last_save_wall = time.monotonic()
        if self.abort_after_saves is not None and self.saves >= self.abort_after_saves:
            raise InterruptedRun(
                f"chaos hook: simulated crash after {self.saves} checkpoint save(s)",
                checkpoint_path=self.path,
            )

    def maybe_save(self, payload_fn: Callable[[], Any]) -> bool:
        """Persist if the cadence says so; returns whether a save happened."""
        if not self.due:
            return False
        self.save(payload_fn())
        return True


# ---------------------------------------------------------------------------
# multi-stage run checkpoints
# ---------------------------------------------------------------------------


class RunCheckpoint:
    """Durable multi-stage store for one run (e.g. one experiment).

    The payload maps stage names to ``{chunk_index: chunk_results}``
    sections plus optional named extra-state sections (RNG streams, fault
    schedules, observability — captured through registered providers at
    every save).  Chunk results are pure functions of their items, so a
    resumed run that reuses them is bit-identical to an uninterrupted one.
    """

    def __init__(
        self,
        path,
        run_key: str,
        policy: Optional[CheckpointPolicy] = None,
        resume: bool = False,
        abort_after_saves: Optional[int] = None,
    ) -> None:
        self._ckpt = Checkpointer(
            path, kind="run", run_key=run_key,
            policy=policy, abort_after_saves=abort_after_saves,
        )
        self._stages: Dict[str, Dict[int, Any]] = {}
        self._extra: Dict[str, Any] = {}
        self._providers: Dict[str, Callable[[], Any]] = {}
        self.resumed = False
        if resume:
            try:
                payload = load_checkpoint(path, kind="run", expect_run_key=run_key)
            except FileNotFoundError:
                payload = None
            if payload is not None:
                self._stages = {
                    stage: {int(k): v for k, v in chunks.items()}
                    for stage, chunks in payload.get("stages", {}).items()
                }
                self._extra = dict(payload.get("extra", {}))
                self.resumed = True

    @property
    def path(self) -> str:
        return self._ckpt.path

    @property
    def saves(self) -> int:
        return self._ckpt.saves

    def add_state_provider(self, name: str, fn: Callable[[], Any]) -> None:
        """Capture ``fn()`` into the ``extra`` section at every save."""
        self._providers[name] = fn

    def extra_state(self, name: str) -> Any:
        """Extra-state section loaded from a resumed checkpoint (or ``None``)."""
        return self._extra.get(name)

    def completed(self, stage: str) -> Dict[int, Any]:
        """Chunk results already durable for ``stage`` (resume skip-set)."""
        return dict(self._stages.get(stage, {}))

    def _payload(self) -> Dict[str, Any]:
        for name, fn in self._providers.items():
            self._extra[name] = fn()
        return {
            "stages": {
                stage: {str(k): v for k, v in chunks.items()}
                for stage, chunks in self._stages.items()
            },
            "extra": dict(self._extra),
        }

    def record(self, stage: str, chunk_index: int, results: Any, units: int = 1) -> None:
        """Store one completed chunk and persist if the cadence is due."""
        self._stages.setdefault(stage, {})[int(chunk_index)] = results
        self._ckpt.record_units(units)
        self._ckpt.maybe_save(self._payload)

    def flush(self) -> None:
        """Persist unconditionally (used on interrupts and stage boundaries)."""
        self._ckpt.save(self._payload())

    def stage(self, name: str) -> "StageCheckpoint":
        """A view bound to one stage, as consumed by ``supervised_map``."""
        return StageCheckpoint(self, name)


class StageCheckpoint:
    """One stage's slice of a :class:`RunCheckpoint` (supervisor-facing)."""

    def __init__(self, run: RunCheckpoint, stage: str) -> None:
        self._run = run
        self.stage = stage

    @property
    def path(self) -> str:
        return self._run.path

    def completed(self) -> Dict[int, Any]:
        return self._run.completed(self.stage)

    def record(self, chunk_index: int, results: Any, units: int = 1) -> None:
        self._run.record(self.stage, chunk_index, results, units=units)

    def flush(self) -> None:
        self._run.flush()


__all__ = [
    "CHECKPOINT_SCHEMA",
    "run_key",
    "write_checkpoint",
    "load_checkpoint",
    "CheckpointPolicy",
    "Checkpointer",
    "RunCheckpoint",
    "StageCheckpoint",
]
