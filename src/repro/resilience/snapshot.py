"""Deterministic, versioned snapshots of live simulation state.

Four state families can be frozen to a JSON-able dict and restored
bit-for-bit, each with its own ``kind`` tag under one shared
:data:`SNAPSHOT_VERSION`:

* **Engine** (:func:`snapshot_engine` / :func:`restore_engine`) — the
  full scheduling state of a :class:`repro.des.engine.Engine`: simulated
  clock, the event heap in internal heap order (so pop order after
  restore is identical), the monotonic insertion counter (tie-breaks),
  the recycled-:class:`~repro.des.engine.Timeout` slab occupancy, and the
  engine flags.  Event callbacks must be *named* callbacks from
  :mod:`repro.resilience.registry`; an engine with live generator
  processes on the heap is not snapshot-safe and raises
  :class:`~repro.resilience.errors.SnapshotError`.
* **RNG streams** (:func:`snapshot_rng` / :func:`restore_rng`) — the
  exact bit-generator state of a :class:`numpy.random.Generator`, so a
  restored stream continues with the very next draw the original would
  have produced.
* **Fault schedules** (:func:`snapshot_schedule` /
  :func:`restore_schedule`) — the realized
  :class:`~repro.faults.schedule.FaultSchedule` timetable; restore
  re-arms the per-target window index (rebuilt by the schedule's own
  ``__post_init__``), so point queries behave identically after resume.
* **Observability** (:func:`snapshot_obs` / :func:`restore_obs`) — the
  counters/gauges/histograms, phase ledger and span buffer of an
  :class:`repro.obs.Obs` collector, so ledgers *continue* across a
  resume instead of restarting from zero.

Values carried by events must be JSON-able scalars or (possibly nested)
lists/tuples/dicts of them; tuples and exceptions are tagged so they
round-trip to the same Python types.
"""

from __future__ import annotations

import builtins
import math
from typing import Any, Dict, List

from repro.resilience.errors import SnapshotError
from repro.resilience.registry import encode_callback, resolve_callback

#: Bump on any structural change to the snapshot layout; restore refuses
#: (with both versions named) rather than guessing at stale layouts.
SNAPSHOT_VERSION = 1

_SCALARS = (type(None), bool, int, float, str)


# ---------------------------------------------------------------------------
# value encoding (JSON-able, type-exact round trip)
# ---------------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    """Encode an event value into a JSON-able form that round-trips exactly."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        if not all(isinstance(k, str) for k in value):
            raise SnapshotError("dict event values must have string keys to snapshot")
        return {"__dict__": {k: encode_value(v) for k, v in value.items()}}
    if isinstance(value, BaseException):
        return {
            "__exc__": type(value).__name__,
            "module": type(value).__module__,
            "args": [encode_value(a) for a in value.args],
        }
    raise SnapshotError(
        f"event value {value!r} of type {type(value).__name__} is not snapshot-safe "
        "(JSON scalars, lists/tuples/dicts of them, or exceptions only)"
    )


def _resolve_exc_type(name: str, module: str) -> type:
    if module in ("builtins", "exceptions"):
        cls = getattr(builtins, name, None)
    else:
        import importlib

        try:
            cls = getattr(importlib.import_module(module), name, None)
        except ImportError:
            cls = None
    if not (isinstance(cls, type) and issubclass(cls, BaseException)):
        raise SnapshotError(f"cannot restore exception type {module}.{name}")
    return cls


def decode_value(record: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(record, _SCALARS):
        return record
    if isinstance(record, list):
        return [decode_value(v) for v in record]
    if isinstance(record, dict):
        if "__tuple__" in record:
            return tuple(decode_value(v) for v in record["__tuple__"])
        if "__dict__" in record:
            return {k: decode_value(v) for k, v in record["__dict__"].items()}
        if "__exc__" in record:
            cls = _resolve_exc_type(record["__exc__"], record.get("module", "builtins"))
            return cls(*[decode_value(a) for a in record.get("args", [])])
    raise SnapshotError(f"unrecognized value record {record!r}")


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


def _encode_event(event) -> Dict[str, Any]:
    from repro.des.engine import Event, Timeout

    kind = "timeout" if type(event) is Timeout else "event"
    if kind == "event" and type(event) is not Event:
        raise SnapshotError(
            f"cannot snapshot event subclass {type(event).__name__}: only plain "
            "Event/Timeout instances (processes must be quiesced first)"
        )
    if event._ok is None:
        raise SnapshotError("a scheduled event must be triggered; heap is inconsistent")
    return {
        "kind": kind,
        "ok": bool(event._ok),
        "value": encode_value(event._value),
        "cancelled": bool(event._cancelled),
        "defused": bool(event._defused),
        "callbacks": [encode_callback(cb) for cb in event.callbacks],
    }


def _decode_event(record: Dict[str, Any], engine):
    from repro.des.engine import Event, Timeout

    cls = Timeout if record["kind"] == "timeout" else Event
    ev = cls.__new__(cls)
    ev.engine = engine
    ev.callbacks = [resolve_callback(cb) for cb in record.get("callbacks", [])]
    ev._value = decode_value(record["value"])
    ev._ok = bool(record["ok"])
    ev._scheduled = True
    ev._fired = False
    ev._defused = bool(record["defused"])
    ev._cancelled = bool(record["cancelled"])
    return ev


def _dead_timeout(engine):
    """A recycled-slab placeholder: a fired Timeout awaiting ``_rearm``."""
    from repro.des.engine import Timeout

    ev = Timeout.__new__(Timeout)
    ev.engine = engine
    ev.callbacks = []
    ev._value = None
    ev._ok = True
    ev._scheduled = True
    ev._fired = True
    ev._defused = False
    ev._cancelled = False
    return ev


def snapshot_engine(engine) -> Dict[str, Any]:
    """Freeze the complete scheduling state of ``engine``.

    Raises :class:`SnapshotError` if any scheduled event is not
    deterministically serializable (unregistered callbacks, process
    events, non-JSON-able values).
    """
    heap: List[Dict[str, Any]] = []
    for time_, priority, seq, event in engine.pending_entries():
        if not math.isfinite(time_):
            raise SnapshotError(f"non-finite event time {time_} on the heap")
        heap.append(
            {
                "time": float(time_),
                "priority": int(priority),
                "seq": int(seq),
                "event": _encode_event(event),
            }
        )
    return {
        "version": SNAPSHOT_VERSION,
        "kind": "engine",
        "now": float(engine._now),
        "counter": int(engine._counter),
        "active": int(engine._active),
        "events_fired": int(engine.events_fired),
        "pool_timeouts": bool(engine._pool_timeouts),
        "pool_cap": int(engine._pool_cap),
        "check_clock": bool(engine._check_clock),
        "pool_len": len(engine._pool),
        "queue": engine.queue_kind,
        "heap": heap,
    }


def check_snapshot(snap: Dict[str, Any], kind: str) -> None:
    """Schema gate shared by every restore path."""
    if not isinstance(snap, dict):
        raise SnapshotError(f"snapshot must be a dict, got {type(snap).__name__}")
    version = snap.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version!r} is not supported by this code "
            f"(expects {SNAPSHOT_VERSION}); re-create the snapshot"
        )
    if snap.get("kind") != kind:
        raise SnapshotError(f"expected a {kind!r} snapshot, got {snap.get('kind')!r}")


def restore_engine(snap: Dict[str, Any]):
    """Rebuild an :class:`~repro.des.engine.Engine` from a snapshot.

    The restored engine fires the exact same events at the exact same
    times in the exact same order as the original would have — including
    tie-breaks at equal timestamps, which ride on the serialized
    insertion counter.
    """
    from repro.des.engine import Engine

    check_snapshot(snap, "engine")
    engine = Engine(
        start_time=snap["now"],
        pool_timeouts=snap["pool_timeouts"],
        pool_cap=snap["pool_cap"],
        check_clock=snap["check_clock"],
        queue=snap.get("queue", "heap"),
    )
    engine._counter = int(snap["counter"])
    engine._active = int(snap["active"])
    engine.events_fired = int(snap["events_fired"])
    entries = [
        (rec["time"], rec["priority"], rec["seq"], _decode_event(rec["event"], engine))
        for rec in snap["heap"]
    ]
    if engine.queue_kind == "wheel":
        for entry in entries:
            engine._queue.push(entry)
    else:
        # Entries were captured in internal heap order, so the restored list
        # is already a valid binary heap: no re-heapify, no reordering of
        # equal keys.  (A wheel snapshot's entries come fully sorted, which
        # is also a valid heap — the two backends' snapshots interchange.)
        engine._queue = entries
    engine._pool = [_dead_timeout(engine) for _ in range(int(snap["pool_len"]))]
    return engine


# ---------------------------------------------------------------------------
# RNG streams
# ---------------------------------------------------------------------------


def snapshot_rng(rng) -> Dict[str, Any]:
    """Freeze the exact state of a :class:`numpy.random.Generator`."""
    state = rng.bit_generator.state
    return {
        "version": SNAPSHOT_VERSION,
        "kind": "rng",
        "state": _jsonify(state),
    }


def restore_rng(snap: Dict[str, Any]):
    """Rebuild a generator that continues the snapshotted stream exactly."""
    import numpy as np

    check_snapshot(snap, "rng")
    state = snap["state"]
    name = state.get("bit_generator")
    cls = getattr(np.random, name, None)
    if cls is None:
        raise SnapshotError(f"unknown bit generator {name!r} in RNG snapshot")
    bg = cls()
    bg.state = state
    return np.random.Generator(bg)


def _jsonify(obj: Any) -> Any:
    """Deep-copy numpy scalars/arrays inside a bit-generator state to JSON types."""
    import numpy as np

    if isinstance(obj, dict):
        return {k: _jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonify(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return [_jsonify(v) for v in obj.tolist()]
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    return obj


# ---------------------------------------------------------------------------
# fault schedules
# ---------------------------------------------------------------------------


def snapshot_schedule(schedule) -> Dict[str, Any]:
    """Freeze a realized :class:`~repro.faults.schedule.FaultSchedule`."""
    return {
        "version": SNAPSHOT_VERSION,
        "kind": "fault-schedule",
        "horizon_s": float(schedule.horizon_s),
        "windows": [
            {
                "start": float(w.start),
                "end": float(w.end),
                "fault": w.kind,
                "target": int(w.target),
                "severity": float(w.severity),
            }
            for w in schedule.windows
        ],
    }


def restore_schedule(snap: Dict[str, Any]):
    """Rebuild the timetable; the query index re-arms in ``__post_init__``."""
    from repro.faults.schedule import FaultSchedule
    from repro.faults.spec import FaultWindow

    check_snapshot(snap, "fault-schedule")
    windows = tuple(
        FaultWindow(
            start=w["start"],
            end=w["end"],
            kind=w["fault"],
            target=w["target"],
            severity=w.get("severity", 1.0),
        )
        for w in snap["windows"]
    )
    return FaultSchedule(horizon_s=snap["horizon_s"], windows=windows)


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------


def snapshot_obs(obs) -> Dict[str, Any]:
    """Freeze an :class:`repro.obs.Obs` collector for ledger continuity."""
    metrics = []
    for name in obs.metrics.names():
        inst = obs.metrics._instruments[name]
        rec = {"name": name, **inst.to_dict()}
        if rec["type"] == "histogram":
            rec["min"] = None if rec["min"] is None else float(rec["min"])
        metrics.append(rec)
    return {
        "version": SNAPSHOT_VERSION,
        "kind": "obs",
        "metrics": metrics,
        "ledger": {
            "energy": dict(obs.ledger._energy),
            "time": dict(obs.ledger._time),
            "expected_total": obs.ledger._expected_total,
        },
        "trace": {
            "dropped": obs.trace.dropped,
            "max_spans": obs.trace._max_spans,
            "spans": [s.to_dict() for s in obs.trace.spans],
        },
    }


def restore_obs(snap: Dict[str, Any]):
    """Rebuild a collector whose ledgers continue from the snapshot."""
    from repro.obs import Obs
    from repro.obs.trace import Span

    check_snapshot(snap, "obs")
    obs = Obs(max_spans=snap["trace"]["max_spans"])
    for rec in snap["metrics"]:
        name, mtype = rec["name"], rec["type"]
        if mtype == "counter":
            obs.metrics.counter(name).value = float(rec["value"])
        elif mtype == "gauge":
            if rec["value"] is not None:
                obs.metrics.gauge(name).set(rec["value"])
            else:
                obs.metrics.gauge(name)
        elif mtype == "histogram":
            h = obs.metrics.histogram(name)
            h.count = int(rec["count"])
            h.total = float(rec["total"])
            h.min = math.inf if rec["min"] is None else float(rec["min"])
            h.max = -math.inf if rec["max"] is None else float(rec["max"])
            h._buckets = {int(k): int(v) for k, v in rec["buckets"].items()}
        else:
            raise SnapshotError(f"unknown metric type {mtype!r} in obs snapshot")
    for phase, e in snap["ledger"]["energy"].items():
        obs.ledger.add(phase, e, snap["ledger"]["time"].get(phase, 0.0))
    if snap["ledger"]["expected_total"] is not None:
        obs.ledger.note_total(snap["ledger"]["expected_total"])
    obs.trace.dropped = int(snap["trace"]["dropped"])
    for s in snap["trace"]["spans"]:
        span = Span(
            name=s["name"],
            start=s["start"],
            end=s["end"],
            parent=s.get("parent"),
            attrs=dict(s.get("attrs", {})),
        )
        obs.trace._spans.append(span)
    return obs


__all__ = [
    "SNAPSHOT_VERSION",
    "check_snapshot",
    "encode_value",
    "decode_value",
    "snapshot_engine",
    "restore_engine",
    "snapshot_rng",
    "restore_rng",
    "snapshot_schedule",
    "restore_schedule",
    "snapshot_obs",
    "restore_obs",
]
