"""Supervised, checkpointed parallel execution.

:func:`supervised_map` is ``[fn(x) for x in items]`` fanned out over
worker processes with a supervisor watching every chunk:

* **Crash detection.**  A worker that dies (SIGKILL, OOM) breaks the
  whole ``ProcessPoolExecutor``; the supervisor samples which chunks were
  *running* at each heartbeat tick, rebuilds a fresh pool, and resubmits
  the unfinished chunks — charging a retry only to the chunks that were
  actually in flight when the pool broke.
* **Hang detection.**  A chunk whose *running* time exceeds its
  wall-clock deadline is treated as hung: the pool is torn down (a
  running future cannot be cancelled), the overdue chunk is charged a
  retry, and everything unfinished is resubmitted on a fresh pool.  The
  deadline clock starts when the heartbeat first observes the chunk
  running — time spent queued behind other chunks is never charged.
* **Determinism.**  A retried chunk re-runs the *identical* item slice,
  and every stochastic item carries its own derived seed
  (:func:`repro.util.rng.derive_seed`), so serial == parallel == resumed
  == retried, bit for bit.
* **Bounded failure.**  A chunk that exhausts ``max_retries`` raises a
  structured :class:`~repro.resilience.errors.SupervisionError` naming
  every failed chunk, its attempt count and last error — never a silent
  hang, never a bare ``BrokenProcessPool``.
* **Durability.**  With a checkpoint attached, each completed chunk is
  recorded together with its ``(lo, hi)`` item bounds (and persisted per
  the cadence policy); on resume, a durable chunk is served without
  re-execution only if its bounds match the current chunking exactly —
  a checkpoint written under a different chunksize (resuming with a
  different ``--workers`` is legal) re-executes instead of splicing a
  same-index, same-length chunk that covers different items.
* **Interruptibility.**  Ctrl-C tears the pool down cleanly (terminate,
  join, kill-if-stubborn — no orphaned workers), flushes the checkpoint,
  and raises :class:`~repro.resilience.errors.InterruptedRun` carrying
  the last checkpoint path.

Exceptions raised by ``fn`` itself are *not* retried — they are
deterministic under the seed-stability contract, so a retry would fail
identically; they propagate exactly as in a list comprehension.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.resilience.errors import InterruptedRun, SupervisionError

#: Supervisor liveness tick: how often (seconds) running chunks are sampled
#: for the crash-attribution set and checked against their deadlines.
HEARTBEAT_S = 0.2

#: Per-chunk retry budget after crashes/hangs before structured failure.
DEFAULT_MAX_RETRIES = 2


def _run_chunk(fn: Callable, chunk: Sequence) -> List:
    """Worker-side chunk body (module-level: picklable by qualified name)."""
    return [fn(x) for x in chunk]


def _kill_pool(ex) -> None:
    """Tear an executor down without leaving orphaned workers behind.

    ``shutdown(wait=False, cancel_futures=True)`` stops new dispatch, then
    the worker processes are terminated, joined briefly, and killed if
    they ignore SIGTERM.  Safe on an already-broken pool.
    """
    procs = list((getattr(ex, "_processes", None) or {}).values())
    try:
        ex.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for p in procs:
        try:
            p.terminate()
        except Exception:
            pass
    for p in procs:
        try:
            p.join(timeout=2.0)
            if p.is_alive():
                p.kill()
                p.join(timeout=1.0)
        except Exception:
            pass


def make_chunks(n_items: int, chunksize: int) -> List[Tuple[int, int]]:
    """Half-open ``(start, stop)`` chunk bounds covering ``range(n_items)``."""
    if chunksize < 1:
        raise ValueError("chunksize must be >= 1")
    return [(lo, min(lo + chunksize, n_items)) for lo in range(0, n_items, chunksize)]


def supervised_map(
    fn: Callable,
    items: Sequence,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    deadline_s: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    heartbeat_s: float = HEARTBEAT_S,
    checkpoint=None,
) -> List:
    """Order-preserving supervised map (see module docstring).

    ``checkpoint`` is a :class:`~repro.resilience.checkpoint.StageCheckpoint`
    (or anything with ``completed() -> {chunk_index: entry}``,
    ``record(chunk_index, entry, units)``, ``flush()`` and ``path``);
    ``None`` disables durability but keeps supervision.  Each stored entry
    is ``{"lo": lo, "hi": hi, "results": [...]}`` so resume can verify the
    chunk covers the same item slice under the current chunking.
    """
    work = list(items)
    n = len(work)
    if chunksize is None:
        from repro.core.parallel import auto_chunksize

        chunksize = auto_chunksize(n, workers or 1)
    bounds = make_chunks(n, chunksize) if n else []
    results: Dict[int, List] = {}

    ckpt_path = getattr(checkpoint, "path", None)
    if checkpoint is not None:
        # A stored entry is served only if its (lo, hi) bounds match the
        # current chunking exactly.  Chunk boundaries depend on chunksize,
        # and a resume may legally use a different --workers: without the
        # bounds check, a same-index, same-length chunk from a different
        # chunking would be silently spliced over the wrong items.
        for idx, entry in checkpoint.completed().items():
            if not isinstance(entry, dict) or not (0 <= idx < len(bounds)):
                continue
            lo, hi = bounds[idx]
            res = entry.get("results")
            if (
                entry.get("lo") == lo
                and entry.get("hi") == hi
                and isinstance(res, list)
                and len(res) == hi - lo
            ):
                results[idx] = list(res)

    pending = [i for i in range(len(bounds)) if i not in results]

    def _items_done() -> int:
        return sum(bounds[i][1] - bounds[i][0] for i in results)

    def _interrupted(ex=None) -> InterruptedRun:
        if ex is not None:
            _kill_pool(ex)
        if checkpoint is not None:
            try:
                checkpoint.flush()
            except InterruptedRun:
                pass  # chaos abort hook fired during the interrupt flush
        return InterruptedRun(
            "interrupted by user: workers terminated cleanly, completed chunks are durable",
            checkpoint_path=ckpt_path,
            completed=_items_done(),
            total=n,
        )

    def _record(idx: int, chunk_res: List, lo: int, hi: int) -> None:
        """Record one durable chunk; enrich a chaos-hook interrupt with the
        real progress counts before it propagates."""
        if checkpoint is None:
            return
        try:
            checkpoint.record(
                idx, {"lo": lo, "hi": hi, "results": chunk_res}, units=hi - lo
            )
        except InterruptedRun as exc:
            raise InterruptedRun(
                str(exc),
                checkpoint_path=exc.checkpoint_path or ckpt_path,
                completed=_items_done(),
                total=n,
            ) from None

    # -- serial path (no pool; still chunked for checkpoint granularity) ----
    if workers is None or workers <= 1 or n <= 1:
        try:
            for idx in pending:
                lo, hi = bounds[idx]
                chunk_res = _run_chunk(fn, work[lo:hi])
                results[idx] = chunk_res
                _record(idx, chunk_res, lo, hi)
        except KeyboardInterrupt:
            raise _interrupted() from None
        return [r for idx in range(len(bounds)) for r in results[idx]]

    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    attempts: Dict[int, int] = {i: 0 for i in pending}
    failures: List[Dict[str, Any]] = []

    def _fail(idx: int, kind: str, error: str) -> None:
        failures.append(
            {"chunk": idx, "attempts": attempts[idx] + 1, "kind": kind, "error": error}
        )

    ex = None
    try:
        while pending:
            try:
                ex = ProcessPoolExecutor(max_workers=workers)
            except (OSError, PermissionError):
                # No usable multiprocessing here — same answer, one process.
                ex = None
                for idx in list(pending):
                    lo, hi = bounds[idx]
                    results[idx] = _run_chunk(fn, work[lo:hi])
                    _record(idx, results[idx], lo, hi)
                    pending.remove(idx)
                break

            futures = {}
            started_at: Dict[int, float] = {}
            for idx in pending:
                lo, hi = bounds[idx]
                futures[ex.submit(_run_chunk, fn, work[lo:hi])] = idx
            last_running: set = set()
            rebuild = False

            while futures and not rebuild:
                done, _ = wait(set(futures), timeout=heartbeat_s, return_when=FIRST_COMPLETED)
                now = time.monotonic()
                # Heartbeat: sample which chunks are in flight right now, so a
                # pool breakage can be attributed to them and not to chunks
                # still sitting in the queue.  This is also where a chunk's
                # deadline clock starts: with more chunks than workers, time
                # spent queued in the executor must not count against it.
                running_now = {idx for fut, idx in futures.items() if fut.running()}
                if running_now:
                    last_running = running_now
                    for idx in running_now:
                        started_at.setdefault(idx, now)
                for fut in done:
                    idx = futures.pop(fut)
                    try:
                        chunk_res = fut.result()
                    except BrokenProcessPool:
                        # A worker died (SIGKILL/OOM): the whole pool is
                        # poisoned and every unfinished future fails.  Charge a
                        # retry to the chunks the heartbeat saw in flight (the
                        # queued ones were innocent) and rebuild.
                        victims = ((last_running or {idx}) | {idx}) & set(pending)
                        futures.clear()
                        for v in victims:
                            if attempts[v] + 1 > max_retries:
                                _fail(v, "crash", "worker process died (broken pool)")
                            attempts[v] += 1
                        if failures:
                            raise SupervisionError(
                                f"{len(failures)} chunk(s) exhausted their retry budget "
                                f"({max_retries}) after worker crashes",
                                failures=failures,
                            )
                        rebuild = True
                        break
                    except Exception:
                        # The work function itself raised: deterministic under
                        # seed stability, so a retry would fail identically —
                        # propagate exactly like a list comprehension.
                        _kill_pool(ex)
                        ex = None
                        raise
                    else:
                        results[idx] = chunk_res
                        pending.remove(idx)
                        lo, hi = bounds[idx]
                        _record(idx, chunk_res, lo, hi)
                if rebuild:
                    break
                # Deadline sweep: any chunk whose observed running time is
                # past its wall budget is hung; a running future cannot be
                # cancelled, so the pool is torn down and everything
                # unfinished is retried afresh.
                if deadline_s is not None:
                    overdue = [
                        idx
                        for fut, idx in futures.items()
                        if fut.running()
                        and idx in started_at
                        and now - started_at[idx] > deadline_s
                    ]
                    if overdue:
                        for idx in overdue:
                            if attempts[idx] + 1 > max_retries:
                                _fail(idx, "deadline", f"chunk exceeded deadline of {deadline_s}s")
                            attempts[idx] += 1
                        if failures:
                            _kill_pool(ex)
                            ex = None
                            raise SupervisionError(
                                f"{len(failures)} chunk(s) exhausted their retry budget "
                                f"({max_retries}) after deadline overruns",
                                failures=failures,
                            )
                        rebuild = True

            _kill_pool(ex)
            ex = None
        return [r for idx in range(len(bounds)) for r in results[idx]]
    except KeyboardInterrupt:
        raise _interrupted(ex) from None
    finally:
        if ex is not None:
            _kill_pool(ex)


__all__ = ["supervised_map", "make_chunks", "HEARTBEAT_S", "DEFAULT_MAX_RETRIES"]
