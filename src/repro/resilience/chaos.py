"""``repro-chaos`` — executable crash-safety scenarios.

Each scenario *injects* a real failure (SIGKILL, an infinite hang, file
truncation, a stale schema) and asserts the structured recovery the
resilience layer promises.  They run as a CLI (``repro-chaos --list``)
and are also driven by ``tests/chaos/`` in CI, so the guarantees in
``docs/RESILIENCE.md`` stay executable rather than aspirational:

``kill-worker``
    A worker SIGKILLs itself mid-chunk; :func:`~repro.resilience.
    supervisor.supervised_map` must detect the broken pool, retry the
    chunk on a fresh worker, and still return the exact serial result.
``hang-worker``
    A worker sleeps far past the chunk deadline; the supervisor must tear
    the pool down, retry, and return the exact serial result.
``truncate-checkpoint``
    Every prefix of a checkpoint file must either load the complete
    payload (when only trailing whitespace was lost) or raise
    :class:`~repro.resilience.errors.CheckpointCorrupt` — never garbage.
``stale-schema``
    A checkpoint from another schema generation must be refused with a
    :class:`~repro.resilience.errors.CheckpointSchemaMismatch` naming
    both versions.
``kill-resume``
    A checkpointing run in a subprocess is SIGKILLed mid-run (no cleanup
    of any kind runs); resuming from its checkpoint must produce results
    bit-identical to an uninterrupted run.
``link-outage-resume``
    A checkpointed ``ext-outage`` sweep (link-outage schedules, buffered
    degraded-mode fleets) is SIGKILLed mid-grid in a subprocess; the
    resumed run's fingerprint must match the committed golden pin in
    ``tests/golden/ext-outage.json`` — crash-safety composed with the
    intermittent-connectivity subsystem.
``kill-serve-resume``
    A live ``repro-serve`` (fault injection, shedding and checkpointing
    all on) is SIGKILLed **twice** mid-replay; each reboot ``--resume``\\ s
    from its checkpoint and the reconnecting load generator continues from
    the ``offered`` count ``/v1/health`` reports.  The final flushed
    placement trace must be SHA-256 bit-identical to one uninterrupted
    in-process run of the same load — the serving tentpole's end-to-end
    guarantee.

Workers communicate "I already crashed once" through marker files in a
scratch directory, so every injected failure happens exactly once and the
retry path is exercised deterministically.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.util.rng import derive_seed

#: Wall-clock ceiling for the hang scenario's stuck worker (far above the
#: deadline handed to the supervisor, far below any CI timeout).
_HANG_SLEEP_S = 60.0


# ---------------------------------------------------------------------------
# chaotic work functions (module-level: picklable by qualified name)
# ---------------------------------------------------------------------------


def _value(item: int) -> int:
    """The deterministic ground truth every scenario compares against."""
    return derive_seed(item, "chaos") % 1_000_003


def _kill_once(args: Tuple[int, str]) -> int:
    """SIGKILL the worker process on first contact with item 5."""
    item, scratch = args
    marker = Path(scratch) / "killed"
    if item == 5 and not marker.exists():
        marker.touch()
        os.kill(os.getpid(), signal.SIGKILL)
    return _value(item)


def _hang_once(args: Tuple[int, str]) -> int:
    """Sleep far past the chunk deadline on first contact with item 5."""
    item, scratch = args
    marker = Path(scratch) / "hung"
    if item == 5 and not marker.exists():
        marker.touch()
        time.sleep(_HANG_SLEEP_S)
    return _value(item)


def _slow_value(item: int) -> int:
    """Ground-truth value, paced so a run spans many checkpoint saves."""
    time.sleep(0.05)
    return _value(item)


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------


def scenario_kill_worker() -> str:
    """SIGKILLed worker → chunk retried on a fresh pool, results exact."""
    from repro.resilience.supervisor import supervised_map

    items = list(range(12))
    expected = [_value(i) for i in items]
    with tempfile.TemporaryDirectory() as scratch:
        got = supervised_map(
            _kill_once, [(i, scratch) for i in items], workers=2, chunksize=2
        )
        if not (Path(scratch) / "killed").exists():
            raise AssertionError("kill marker missing: the fault was never injected")
    if got != expected:
        raise AssertionError(f"retried results diverged: {got} != {expected}")
    return "worker SIGKILLed mid-chunk; chunk retried on a fresh pool, results exact"


def scenario_hang_worker() -> str:
    """Hung worker → deadline fires, pool torn down, retried, results exact."""
    from repro.resilience.supervisor import supervised_map

    items = list(range(12))
    expected = [_value(i) for i in items]
    t0 = time.monotonic()
    with tempfile.TemporaryDirectory() as scratch:
        got = supervised_map(
            _hang_once,
            [(i, scratch) for i in items],
            workers=2,
            chunksize=2,
            deadline_s=2.0,
        )
        if not (Path(scratch) / "hung").exists():
            raise AssertionError("hang marker missing: the fault was never injected")
    elapsed = time.monotonic() - t0
    if elapsed >= _HANG_SLEEP_S:
        raise AssertionError(f"deadline never fired ({elapsed:.0f}s elapsed)")
    if got != expected:
        raise AssertionError(f"retried results diverged: {got} != {expected}")
    return f"hung worker reaped after the 2s deadline ({elapsed:.1f}s total), results exact"


def scenario_truncate_checkpoint() -> str:
    """Every truncation → full payload or CheckpointCorrupt, never garbage."""
    from repro.resilience.checkpoint import load_checkpoint, write_checkpoint
    from repro.resilience.errors import CheckpointCorrupt

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ck.json"
        payload = {"stages": {"s": {str(i): [i * i] for i in range(8)}}}
        write_checkpoint(path, payload, kind="run")
        data = path.read_bytes()
        good = load_checkpoint(path)
        cut_path = Path(tmp) / "cut.json"
        corrupt = 0
        for cut in range(len(data) + 1):
            cut_path.write_bytes(data[:cut])
            try:
                loaded = load_checkpoint(cut_path)
            except CheckpointCorrupt:
                corrupt += 1
            else:
                if loaded != good:
                    raise AssertionError(f"cut at {cut} loaded garbage")
        if corrupt < len(data) - 2:
            raise AssertionError(f"only {corrupt}/{len(data) + 1} cuts were rejected")
    return (
        f"{corrupt} content-removing truncations all raised CheckpointCorrupt; "
        "whitespace-only cuts loaded the intact payload"
    )


def scenario_stale_schema() -> str:
    """Foreign schema generation → refused with both versions named."""
    from repro.resilience.checkpoint import (
        CHECKPOINT_SCHEMA,
        load_checkpoint,
        write_checkpoint,
    )
    from repro.resilience.errors import CheckpointSchemaMismatch

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ck.json"
        write_checkpoint(path, {"x": 1}, kind="run")
        envelope = json.loads(path.read_text())
        envelope["schema"] = CHECKPOINT_SCHEMA + 1
        path.write_text(json.dumps(envelope))
        try:
            load_checkpoint(path)
        except CheckpointSchemaMismatch as exc:
            if exc.found != CHECKPOINT_SCHEMA + 1 or exc.expected != CHECKPOINT_SCHEMA:
                raise AssertionError(f"schema versions not carried: {exc.found}/{exc.expected}")
            return f"stale schema refused: found {exc.found}, expected {exc.expected}"
        raise AssertionError("stale schema was accepted")


def _driver(ckpt: str, out: str, n_items: int) -> int:
    """Subprocess body for ``kill-resume``: a slow checkpointing run."""
    from repro.resilience.checkpoint import RunCheckpoint, run_key
    from repro.resilience.supervisor import supervised_map

    rc = RunCheckpoint(ckpt, run_key=run_key("chaos-driver", n_items), resume=True)
    results = supervised_map(
        _slow_value, list(range(n_items)), chunksize=1, checkpoint=rc.stage("main")
    )
    Path(out).write_text(json.dumps(results))
    return 0


#: The reduced ext-outage configuration shared with the golden case — the
#: resumed fingerprint is diffed against ``tests/golden/ext-outage.json``.
_OUTAGE_KWARGS = dict(
    n_clients=70, n_cycles=12, crossover_sizes=(350, 650, 150), seed=0
)


def _outage_driver(ckpt: str, out: str, mode: str) -> int:
    """Subprocess body for ``link-outage-resume``.

    ``mode='crash'`` arms the checkpointer's deterministic chaos hook and
    escalates the interrupt into a real SIGKILL of this process, so no
    atexit/finally/flush path runs — the durable saves alone must carry
    the run.  ``mode='resume'`` completes from the checkpoint and writes
    the result fingerprint.
    """
    from repro.experiments.registry import run_experiment
    from repro.resilience.checkpoint import RunCheckpoint, run_key
    from repro.resilience.errors import InterruptedRun

    rc = RunCheckpoint(
        ckpt,
        run_key=run_key("ext-outage", _OUTAGE_KWARGS["seed"]),
        resume=(mode == "resume"),
        abort_after_saves=2 if mode == "crash" else None,
    )
    try:
        fp = run_experiment("ext-outage", checkpoint=rc, **_OUTAGE_KWARGS).fingerprint()
    except InterruptedRun:
        os.kill(os.getpid(), signal.SIGKILL)
    Path(out).write_text(json.dumps(fp, sort_keys=True))
    return 0


def _child_env() -> Dict[str, str]:
    """Subprocess env importing repro from wherever *this* process did,
    regardless of the caller's cwd or (relative) PYTHONPATH."""
    env = dict(os.environ)
    src_dir = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH")) if p
    )
    return env


def scenario_kill_resume() -> str:
    """SIGKILL a checkpointing run mid-flight; resume must be bit-identical."""
    expected = [_value(i) for i in range(40)]
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = str(Path(tmp) / "ck.json")
        out = str(Path(tmp) / "out.json")
        cmd = [sys.executable, "-m", "repro.resilience.chaos", "--_driver", ckpt, out, "40"]
        env = _child_env()
        proc = subprocess.Popen(cmd, env=env)
        # SIGKILL the run once its checkpoint holds some (but not all) chunks:
        # no atexit, no finally, no flush runs — the crash-only protocol alone
        # must leave a loadable file behind.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                raise AssertionError("driver finished before it could be killed")
            if Path(ckpt).exists() and Path(ckpt).stat().st_size > 0:
                time.sleep(0.3)  # let a few more chunks land mid-file
                break
            time.sleep(0.01)
        proc.kill()
        proc.wait()
        if Path(out).exists():
            raise AssertionError("driver wrote its output despite the SIGKILL")

        from repro.resilience.checkpoint import RunCheckpoint, run_key

        rc = RunCheckpoint(ckpt, run_key=run_key("chaos-driver", 40), resume=True)
        durable = len(rc.completed("main"))
        if not rc.resumed or durable == 0:
            raise AssertionError("no durable chunks survived the SIGKILL")
        rerun = subprocess.run(cmd, env=env, timeout=60)
        if rerun.returncode != 0:
            raise AssertionError(f"resumed driver failed (exit {rerun.returncode})")
        results = json.loads(Path(out).read_text())
    if results != expected:
        raise AssertionError("resumed results diverged from the uninterrupted ground truth")
    return (
        f"run SIGKILLed with {durable}/40 chunks durable; resume completed "
        "bit-identical to the uninterrupted ground truth"
    )


def scenario_link_outage_resume() -> str:
    """SIGKILL a checkpointed outage sweep mid-grid; resume matches golden."""
    from repro.resilience.checkpoint import RunCheckpoint, run_key
    from repro.validate.golden import diff_fingerprints, load_golden

    try:
        golden = load_golden("ext-outage")
    except FileNotFoundError:
        raise AssertionError(
            "tests/golden/ext-outage.json is missing — regenerate with "
            "repro-golden --update --only ext-outage"
        )
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = str(Path(tmp) / "ck.json")
        out = str(Path(tmp) / "fingerprint.json")
        base = [sys.executable, "-m", "repro.resilience.chaos", "--_outage_driver", ckpt, out]
        env = _child_env()
        crashed = subprocess.run(base + ["crash"], env=env, timeout=300)
        if crashed.returncode != -signal.SIGKILL:
            raise AssertionError(
                f"crash driver exited {crashed.returncode}, expected SIGKILL"
            )
        if Path(out).exists():
            raise AssertionError("driver wrote its fingerprint despite the SIGKILL")
        rc = RunCheckpoint(ckpt, run_key=run_key("ext-outage", 0), resume=True)
        durable = len(rc.completed("outage-grid"))
        if not rc.resumed or durable == 0:
            raise AssertionError("no durable outage-grid chunks survived the SIGKILL")
        resumed = subprocess.run(base + ["resume"], env=env, timeout=300)
        if resumed.returncode != 0:
            raise AssertionError(f"resumed driver failed (exit {resumed.returncode})")
        fingerprint = json.loads(Path(out).read_text())
    drifts = diff_fingerprints(golden["fingerprint"], fingerprint)
    if drifts:
        raise AssertionError(
            f"resumed outage sweep drifted from the golden pin: {drifts[:3]}"
        )
    return (
        f"outage sweep SIGKILLed with {durable} grid chunk(s) durable; "
        "resume matched the committed golden fingerprint"
    )


#: Serving twin of the chaos suite: one fault-injected, shedding,
#: checkpointing serve run.  The CLI flags and this config MUST stay in
#: lockstep — the scenario's in-process reference uses the config, the
#: subprocess uses the flags.
_SERVE_FLAGS = [
    "--policy", "best-fit", "--queue-bound", "8",
    "--server-mtbf", "150", "--server-repair", "60", "--fault-servers", "3",
    "--dark-mtbf", "200", "--dark-repair", "60", "--fault-hives", "6",
    "--fault-horizon", "600", "--fault-seed", "7",
]


def _serve_chaos_config():
    """The in-process ``ServeConfig`` twin of :data:`_SERVE_FLAGS`."""
    from repro.serve.engine import ServeConfig
    from repro.serve.faults import ServeFaultSpec

    return ServeConfig(
        policy="best-fit",
        queue_bound=8,
        faults=ServeFaultSpec(
            server_mtbf_s=150.0, server_repair_s=60.0, fault_servers=3,
            dark_mtbf_s=200.0, dark_repair_s=60.0, fault_hives=6,
            horizon_s=600.0, seed=7,
        ),
    )


def _serve_chaos_spec():
    """The load every serve-chaos participant replays (open loop)."""
    from repro.loadgen.arrivals import LoadSpec

    return LoadSpec(
        n_hives=16, rate_hz=0.05, horizon_s=600.0,
        telemetry_fraction=0.5, payload_bytes=1024,
        seed=0xC0FFEE, mode="open",
    )


def _boot_serve(tmp: str, ckpt: str, trace_out: str) -> Tuple[subprocess.Popen, str]:
    """Start ``repro-serve`` with checkpoint+resume; wait for its port."""
    port_file = Path(tmp) / "port"
    if port_file.exists():
        port_file.unlink()
    cmd = [
        sys.executable, "-m", "repro.serve.cli",
        "--host", "127.0.0.1", "--port", "0", "--port-file", str(port_file),
        *_SERVE_FLAGS,
        "--checkpoint", ckpt, "--checkpoint-every", "20", "--resume",
        "--trace-out", trace_out,
    ]
    proc = subprocess.Popen(
        cmd, env=_child_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if port_file.exists():
            text = port_file.read_text().strip()
            if text:
                return proc, f"http://127.0.0.1:{int(text)}"
        if proc.poll() is not None:
            raise AssertionError(f"serve exited {proc.returncode} during boot")
        time.sleep(0.01)
    proc.kill()
    raise AssertionError("serve did not announce a port within 30s")


def scenario_kill_serve_resume() -> str:
    """SIGKILL a live serve twice mid-replay; resumed trace bit-identical."""
    from repro.loadgen.arrivals import arrival_to_request, merged_stream
    from repro.loadgen.replay import HttpTransport
    from repro.serve.engine import OrchestrationEngine

    spec = _serve_chaos_spec()
    requests = [arrival_to_request(a) for a in merged_stream(spec)]
    if len(requests) < 60:
        raise AssertionError(f"chaos load too small to be interesting: {len(requests)}")

    # Ground truth: one uninterrupted in-process fold over the same load.
    reference = OrchestrationEngine(_serve_chaos_config())
    for request in requests:
        reference.handle(dict(request))
    expected_sha = reference.trace.fingerprint()
    expected_events = reference.trace.n_events

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = str(Path(tmp) / "serve-ck.json")
        trace_out = str(Path(tmp) / "trace.json")
        sent = 0
        # Two kill points: the first exercises kill-serve (fresh boot →
        # SIGKILL), the second kill-resume (resumed boot → SIGKILL again).
        for cut in (len(requests) // 3, (2 * len(requests)) // 3):
            proc, base_url = _boot_serve(tmp, ckpt, trace_out)
            transport = HttpTransport(base_url)
            offered = int(transport.health().get("offered", 0))
            if offered > sent:
                raise AssertionError(
                    f"resumed serve claims {offered} offered > {sent} actually sent"
                )
            for request in requests[offered:cut]:
                response = transport.send(dict(request))
                if response.get("error_class"):
                    raise AssertionError(f"transport failure mid-replay: {response}")
            sent = cut
            proc.kill()  # SIGKILL: no drain, no flush, no atexit
            proc.wait()
        if not Path(ckpt).exists():
            raise AssertionError("no serve checkpoint survived the SIGKILLs")

        proc, base_url = _boot_serve(tmp, ckpt, trace_out)
        transport = HttpTransport(base_url)
        offered = int(transport.health().get("offered", 0))
        if offered == 0:
            raise AssertionError("second resume lost the whole run (offered=0)")
        for request in requests[offered:]:
            response = transport.send(dict(request))
            if response.get("error_class"):
                raise AssertionError(f"transport failure mid-replay: {response}")
        proc.send_signal(signal.SIGTERM)
        if proc.wait(timeout=30) != 0:
            raise AssertionError(f"serve exited {proc.returncode} on SIGTERM")
        trace = json.loads(Path(trace_out).read_text())

    if trace["sha256"] != expected_sha or trace["n_events"] != expected_events:
        raise AssertionError(
            f"resumed serve trace diverged: {trace['n_events']} events, "
            f"sha {trace['sha256'][:12]}… vs expected {expected_events} "
            f"events, sha {expected_sha[:12]}…"
        )
    return (
        f"serve SIGKILLed twice mid-replay; resumed+reconnected trace "
        f"bit-identical ({expected_events} events, sha {expected_sha[:12]}…)"
    )


SCENARIOS: Dict[str, Tuple[Callable[[], str], str]] = {
    "kill-worker": (scenario_kill_worker, "SIGKILL a pool worker mid-chunk"),
    "hang-worker": (scenario_hang_worker, "hang a worker past its chunk deadline"),
    "truncate-checkpoint": (scenario_truncate_checkpoint, "truncate a checkpoint at every offset"),
    "stale-schema": (scenario_stale_schema, "age a checkpoint's schema version"),
    "kill-resume": (scenario_kill_resume, "SIGKILL a checkpointing run, then resume it"),
    "link-outage-resume": (
        scenario_link_outage_resume,
        "SIGKILL a checkpointed link-outage sweep, resume against the golden",
    ),
    "kill-serve-resume": (
        scenario_kill_serve_resume,
        "SIGKILL a live serve twice mid-replay, resume + reconnect, trace bit-identical",
    ),
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="Inject real failures and assert the documented structured recovery.",
    )
    parser.add_argument("scenarios", nargs="*", help="scenario ids (default: all; see --list)")
    parser.add_argument("--list", action="store_true", help="list scenarios")
    parser.add_argument("--_driver", nargs=3, metavar=("CKPT", "OUT", "N"),
                        help=argparse.SUPPRESS)
    parser.add_argument("--_outage_driver", nargs=3, metavar=("CKPT", "OUT", "MODE"),
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args._driver:
        ckpt, out, n = args._driver
        return _driver(ckpt, out, int(n))
    if args._outage_driver:
        return _outage_driver(*args._outage_driver)
    if args.list:
        for name, (_fn, desc) in SCENARIOS.items():
            print(f"{name:22s} {desc}")
        return 0
    ids = args.scenarios or list(SCENARIOS)
    unknown = [i for i in ids if i not in SCENARIOS]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    failed = 0
    for name in ids:
        fn, _desc = SCENARIOS[name]
        try:
            detail = fn()
        except Exception as exc:
            failed += 1
            print(f"FAIL {name}: {exc}")
        else:
            print(f"ok   {name}: {detail}")
    if failed:
        print(f"{failed}/{len(ids)} scenario(s) failed", file=sys.stderr)
        return 1
    print(f"all {len(ids)} chaos scenario(s) survived")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
