"""Seeded, deterministic load generation for the orchestration service.

``repro.loadgen`` replays N simulated hives' telemetry/inference arrivals
against a serving target — the in-process engine or a live ``repro-serve``
over HTTP — reproducibly from a seed.  Per-hive arrival streams are
independent RNG streams (fleet-size- and chunking-independent, same
discipline as the fault schedules), so a load run is pinned by its
:class:`~repro.loadgen.arrivals.LoadSpec` alone and the resulting
placement trace can be checked against the batch simulator.

See ``docs/SERVING.md`` for usage and the open- vs closed-loop semantics.
"""

from repro.loadgen.arrivals import Arrival, LoadSpec, hive_stream, merged_stream
from repro.loadgen.replay import (
    HttpTransport,
    InProcessTransport,
    ReplayReport,
    replay,
    replay_in_process,
)

__all__ = [
    "Arrival",
    "LoadSpec",
    "hive_stream",
    "merged_stream",
    "HttpTransport",
    "InProcessTransport",
    "ReplayReport",
    "replay",
    "replay_in_process",
]
