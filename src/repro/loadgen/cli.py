"""``repro-loadgen``: replay a seeded hive fleet against a serving target.

Examples
--------
Replay an hour of 32 hives against a live server::

    repro-loadgen --target http://127.0.0.1:8037 --hives 32 --horizon 3600

Same load, no server needed (in-process engine), JSON report to a file::

    repro-loadgen --in-process --hives 32 --horizon 3600 --json report.json

The report includes a ``response_sha256`` fingerprint: two runs with the
same spec against the same server configuration produce the same digest,
which is how the integration tests assert end-to-end determinism.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.loadgen.arrivals import LoadSpec
from repro.loadgen.replay import ERROR_CLASSES, HttpTransport, InProcessTransport, replay
from repro.util.atomic import atomic_write_json
from repro.util.rng import DEFAULT_SEED


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description="Replay seeded hive telemetry/inference load on repro-serve.",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--target", help="base URL of a running repro-serve")
    target.add_argument("--in-process", action="store_true",
                        help="drive a fresh in-process engine instead of HTTP")
    parser.add_argument("--hives", type=int, default=16)
    parser.add_argument("--rate", type=float, default=1.0 / 300.0,
                        help="per-hive request rate in Hz (default: 1 per cycle)")
    parser.add_argument("--horizon", type=float, default=3600.0,
                        help="simulated seconds of load (default: %(default)s)")
    parser.add_argument("--telemetry-fraction", type=float, default=0.5)
    parser.add_argument("--payload-bytes", type=int, default=1024)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--mode", choices=("open", "closed"), default="open")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="also write the report to this file atomically")
    parser.add_argument("--expect-zero-errors", action="store_true",
                        help="exit 1 unless every response was ok (CI smoke)")
    parser.add_argument(
        "--allow-errors", default=None, metavar="CLASSES",
        help="comma-separated failure classes that are expected (e.g. "
        f"'shed'); any other class exits 1. Known: {', '.join(ERROR_CLASSES)}",
    )
    parser.add_argument("--skip", type=int, default=0,
                        help="skip the first N arrivals (reconnect primitive)")
    parser.add_argument(
        "--resume-from-target", action="store_true",
        help="ask the target's /v1/health how many requests it already "
        "offered and skip that many — reconnect after a serve --resume",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        spec = LoadSpec(
            n_hives=args.hives,
            rate_hz=args.rate,
            horizon_s=args.horizon,
            telemetry_fraction=args.telemetry_fraction,
            payload_bytes=args.payload_bytes,
            seed=args.seed,
            mode=args.mode,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    allowed = []
    if args.allow_errors:
        allowed = [c.strip() for c in args.allow_errors.split(",") if c.strip()]
        unknown = [c for c in allowed if c not in ERROR_CLASSES]
        if unknown:
            print(f"error: unknown error classes: {', '.join(unknown)} "
                  f"(known: {', '.join(ERROR_CLASSES)})", file=sys.stderr)
            return 2
    if args.resume_from_target and args.in_process:
        print("error: --resume-from-target needs an HTTP --target", file=sys.stderr)
        return 2
    if args.in_process:
        from repro.serve.engine import OrchestrationEngine

        transport = InProcessTransport(OrchestrationEngine())
    else:
        transport = HttpTransport(args.target)
    skip = args.skip
    if args.resume_from_target:
        try:
            health = transport.health()
        except OSError as exc:
            print(f"error: cannot reach target for resume: {exc}", file=sys.stderr)
            return 1
        skip = max(skip, int(health.get("offered", 0)))
        print(f"resuming: target already offered {health.get('offered', 0)} "
              f"requests, skipping to arrival {skip}", file=sys.stderr)
    report = replay(spec, transport, skip=skip)
    payload = {"spec": spec.describe(), "report": report.to_dict(), "skip": skip}
    if args.json_out:
        atomic_write_json(args.json_out, payload, sort_keys=True)
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    if report.by_class:
        classes = ", ".join(f"{c}={n}" for c, n in sorted(report.by_class.items()))
        print(f"failure classes: {classes}", file=sys.stderr)
    if args.expect_zero_errors and report.n_errors:
        print(f"error: {report.n_errors} failed responses", file=sys.stderr)
        return 1
    unexpected = report.unexpected_classes(allowed)
    if args.allow_errors is not None and unexpected:
        detail = ", ".join(f"{c}={n}" for c, n in unexpected.items())
        print(f"error: unexpected failure classes: {detail}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
