"""Replay a load spec against a serving target, open- or closed-loop.

The transport is pluggable so the *same* replay drives both the in-process
engine (experiments, golden case — zero copies, fast) and a real
``repro-serve`` subprocess over HTTP (integration tests, CI smoke).  The
report folds a canonical SHA-256 over every response, so "two replays saw
identical outcomes" is one string comparison — the client-side twin of the
server's placement-trace fingerprint.

Open loop sends every arrival at its scheduled sim time regardless of how
the service is keeping up (the saturation-knee probe).  Closed loop gates
each hive on its previous inference's ``done_t`` — a hive does not offer
its next request while the last one is in flight, the classic
think-time/feedback load model.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import socket
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Protocol

from repro.loadgen.arrivals import Arrival, LoadSpec, arrival_to_request, hive_stream, merged_stream
from repro.serve.engine import OrchestrationEngine
from repro.serve.trace import render_event
from repro.util.rng import derive_seed, make_rng

#: Structured failure classes a replay distinguishes in its report.
SHED = "shed"                            # deterministic 503 overload rejection
ENGINE_ERROR = "engine"                  # structured engine error (422 / ok=False)
CONNECTION_REFUSED = "connection-refused"  # nothing listening / reset
TIMEOUT = "timeout"                      # request exceeded the client budget
HTTP_ERROR = "http"                      # non-JSON HTTP failure (4xx/5xx)

ERROR_CLASSES = (SHED, ENGINE_ERROR, CONNECTION_REFUSED, TIMEOUT, HTTP_ERROR)


def classify_response(response: Dict[str, Any]) -> Optional[str]:
    """The failure class of one response dict (``None`` for a success).

    Shed responses are classified first (they carry ``ok=False`` *and*
    ``shed=True``); transport-synthesized failures tag themselves with
    ``error_class``; any other ``ok=False`` is a structured engine error.
    """
    if response.get("shed"):
        return SHED
    if response.get("ok"):
        return None
    return response.get("error_class") or ENGINE_ERROR


class Transport(Protocol):
    """Anything that can answer one request dict with a response dict."""

    def send(self, request: Dict[str, Any]) -> Dict[str, Any]: ...


class InProcessTransport:
    """Call the engine directly (no serialization, fully deterministic)."""

    def __init__(self, engine: OrchestrationEngine) -> None:
        self.engine = engine

    def send(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self.engine.handle(dict(request))


class HttpTransport:
    """POST each request to a running ``repro-serve`` over HTTP.

    Transport-level failures never raise: refused connections and timeouts
    are retried up to ``max_attempts`` with seeded-jitter exponential
    backoff (wall-clock; the *sim* clock is untouched), then surfaced as a
    synthetic ``ok=False`` response tagged with ``error_class`` so the
    replay report can bucket them.  HTTP errors that carry a JSON body
    (422 engine errors, 503 sheds) pass through as that body — the same
    dict the in-process transport would have returned.
    """

    def __init__(self, base_url: str, timeout_s: float = 10.0,
                 max_attempts: int = 3, backoff_s: float = 0.2,
                 seed: int = 0) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self._rng = make_rng(derive_seed(seed, "loadgen", "transport"))

    def _post_once(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        body = {k: v for k, v in request.items() if k != "op"}
        req = urllib.request.Request(
            f"{self.base_url}/v1/{op}",
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
            return json.loads(resp.read())

    def _backoff(self, attempt: int) -> None:
        jitter = 1.0 + 0.25 * float(self._rng.uniform(-1.0, 1.0))
        time.sleep(self.backoff_s * (2.0 ** attempt) * jitter)

    def send(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request["op"]
        failure: Dict[str, Any] = {}
        for attempt in range(self.max_attempts):
            try:
                return self._post_once(op, request)
            except urllib.error.HTTPError as exc:
                # The server answered — never retry.  Engine-level failures
                # (422) and sheds (503) come back as the same JSON body the
                # in-process transport would return.
                payload = exc.read()
                try:
                    return json.loads(payload)
                except (ValueError, UnicodeDecodeError):
                    return {
                        "ok": False, "op": op,
                        "error": f"HTTP {exc.code}: {payload[:200]!r}",
                        "error_class": HTTP_ERROR,
                    }
            except (socket.timeout, TimeoutError) as exc:
                failure = {
                    "ok": False, "op": op,
                    "error": f"timeout after {self.timeout_s}s: {exc}",
                    "error_class": TIMEOUT,
                }
            except (urllib.error.URLError, ConnectionError, OSError) as exc:
                reason = getattr(exc, "reason", exc)
                if isinstance(reason, (socket.timeout, TimeoutError)):
                    failure = {
                        "ok": False, "op": op,
                        "error": f"timeout after {self.timeout_s}s: {reason}",
                        "error_class": TIMEOUT,
                    }
                else:
                    failure = {
                        "ok": False, "op": op,
                        "error": f"connection failed: {reason}",
                        "error_class": CONNECTION_REFUSED,
                    }
            if attempt + 1 < self.max_attempts:
                self._backoff(attempt)
        return failure

    def health(self) -> Dict[str, Any]:
        with urllib.request.urlopen(
            f"{self.base_url}/v1/health", timeout=self.timeout_s
        ) as resp:
            return json.loads(resp.read())


@dataclass
class ReplayReport:
    """Client-side outcome of one replay."""

    n_requests: int = 0
    n_errors: int = 0
    by_op: Dict[str, int] = field(default_factory=dict)
    by_class: Dict[str, int] = field(default_factory=dict)
    placements: Dict[str, int] = field(default_factory=dict)
    last_t: float = 0.0
    response_sha256: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_requests": self.n_requests,
            "n_errors": self.n_errors,
            "by_op": dict(sorted(self.by_op.items())),
            "by_class": dict(sorted(self.by_class.items())),
            "placements": dict(sorted(self.placements.items())),
            "last_t": self.last_t,
            "response_sha256": self.response_sha256,
        }

    def unexpected_classes(self, allowed: Iterable[str] = ()) -> Dict[str, int]:
        """Failure classes seen beyond the caller's allow-list."""
        allow = set(allowed)
        return {c: n for c, n in sorted(self.by_class.items()) if c not in allow}


def _fold(report: ReplayReport, digest: "hashlib._Hash",
          arrival: Arrival, issued_t: float, response: Dict[str, Any]) -> None:
    report.n_requests += 1
    report.by_op[arrival.op] = report.by_op.get(arrival.op, 0) + 1
    # the *issued* time, not the scheduled one: closed-loop gating pushes
    # arrivals back, and last_t must report the offered horizon the engine
    # actually saw (rps derived from a smaller horizon overstates load).
    report.last_t = max(report.last_t, issued_t)
    failure_class = classify_response(response)
    if failure_class is not None:
        report.n_errors += 1
        report.by_class[failure_class] = report.by_class.get(failure_class, 0) + 1
    where = response.get("placement")
    if where:
        report.placements[where] = report.placements.get(where, 0) + 1
    digest.update(render_event(response).encode("utf-8"))
    digest.update(b"\n")


def replay(spec: LoadSpec, transport: Transport, skip: int = 0) -> ReplayReport:
    """Send the spec's arrivals through ``transport``; returns the report.

    ``skip`` drops the first N arrivals of the (deterministic) open-loop
    stream before sending — the reconnect primitive: a resumed server's
    ``/v1/health`` reports how many requests it has already ``offered``,
    and a loadgen restarted with that skip continues the replay exactly
    where the checkpoint left it.  The report (and its response digest)
    covers only the tail actually sent.
    """
    if skip < 0:
        raise ValueError(f"skip must be >= 0, got {skip}")
    if skip and spec.mode != "open":
        raise ValueError("skip/reconnect is only supported for open-loop replay")
    report = ReplayReport()
    digest = hashlib.sha256()
    if spec.mode == "open":
        _replay_open(spec, transport, report, digest, skip)
    else:
        _replay_closed(spec, transport, report, digest)
    report.response_sha256 = digest.hexdigest()
    return report


def _replay_open(spec: LoadSpec, transport: Transport,
                 report: ReplayReport, digest: "hashlib._Hash",
                 skip: int = 0) -> None:
    for index, arrival in enumerate(merged_stream(spec)):
        if index < skip:
            continue
        _fold(report, digest, arrival, arrival.t,
              transport.send(arrival_to_request(arrival)))


def _replay_closed(spec: LoadSpec, transport: Transport,
                   report: ReplayReport, digest: "hashlib._Hash") -> None:
    """Per-hive feedback gating, still in one deterministic global order.

    Each hive's pending arrival is keyed by its *issue* time — the later of
    its scheduled time and the hive's previous completion (``done_t``).
    A heap over (issue_t, hive, seq) serializes the fleet; deferred
    arrivals re-enter the heap with their pushed-back issue time, keeping
    the engine's request clock monotonic.
    """
    streams = {h: iter(hive_stream(spec, h)) for h in range(spec.n_hives)}
    ready: Dict[int, float] = {h: 0.0 for h in streams}  # hive -> earliest issue
    heap = []
    for hive, stream in streams.items():
        first = next(stream, None)
        if first is not None:
            heapq.heappush(heap, (first.t, hive, first.seq, first))
    while heap:
        issue_t, hive, _seq, arrival = heapq.heappop(heap)
        gate = ready[hive]
        if issue_t < gate:
            heapq.heappush(heap, (gate, hive, arrival.seq, arrival))
            continue
        request = arrival_to_request(arrival)
        request["t"] = issue_t
        response = transport.send(request)
        _fold(report, digest, arrival, issue_t, response)
        done = response.get("done_t")
        if done is not None:
            ready[hive] = float(done)
        nxt = next(streams[hive], None)
        if nxt is not None:
            heapq.heappush(heap, (max(nxt.t, ready[hive]), hive, nxt.seq, nxt))


def replay_in_process(
    spec: LoadSpec, engine: Optional[OrchestrationEngine] = None
) -> tuple:
    """Convenience: replay against a fresh (or given) in-process engine.

    Returns ``(engine, report)`` so callers can inspect the server-side
    trace alongside the client-side report.
    """
    engine = engine or OrchestrationEngine()
    report = replay(spec, InProcessTransport(engine))
    return engine, report


def iter_requests(spec: LoadSpec) -> Iterable[Dict[str, Any]]:
    """The open-loop request dicts of a spec (for tooling and tests)."""
    return (arrival_to_request(a) for a in merged_stream(spec))


__all__ = [
    "SHED",
    "ENGINE_ERROR",
    "CONNECTION_REFUSED",
    "TIMEOUT",
    "HTTP_ERROR",
    "ERROR_CLASSES",
    "classify_response",
    "Transport",
    "InProcessTransport",
    "HttpTransport",
    "ReplayReport",
    "replay",
    "replay_in_process",
    "iter_requests",
]
