"""Seeded arrival processes: N hives' telemetry/inference request streams.

Each hive is an independent Poisson source (exponential inter-arrivals at
``rate_hz``) whose RNG stream is derived as
``derive_seed(seed, "loadgen", "hive", hive)`` — the same per-entity
derivation discipline as the fault and outage schedules, so a hive's
arrivals are a function of ``(seed, hive)`` alone.  Consequences the test
suite pins:

* **fleet-size independence** — adding hives (or generating hives in any
  chunking) never perturbs an existing hive's stream;
* **replay identity** — the same spec yields the same merged stream,
  request for request;
* **rate stationarity** — mean inter-arrival converges to ``1/rate_hz``.

A stream opens with one ``admit`` arrival (uniform in the admit window, so
a fleet does not stampede the service at t=0) followed by the hive's
telemetry/inference mix until the horizon.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, List

from repro.util.rng import DEFAULT_SEED, derive_seed, make_rng


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: sort key is (t, hive, seq)."""

    t: float
    hive: int
    seq: int
    op: str  # "admit" | "telemetry" | "inference"
    payload_bytes: int = 0

    @property
    def sort_key(self):
        return (self.t, self.hive, self.seq)


@dataclass(frozen=True)
class LoadSpec:
    """Everything that pins a load run (and thus the server's trace)."""

    n_hives: int = 16
    rate_hz: float = 1.0 / 300.0  # one request per paper cycle per hive
    horizon_s: float = 3600.0
    telemetry_fraction: float = 0.5
    payload_bytes: int = 1024
    admit_window_s: float = 60.0
    seed: int = DEFAULT_SEED
    mode: str = "open"  # "open" (fire at schedule) | "closed" (wait for done)

    def __post_init__(self) -> None:
        if self.n_hives < 0:
            raise ValueError(f"n_hives must be >= 0, got {self.n_hives}")
        if self.rate_hz <= 0:
            raise ValueError(f"rate_hz must be > 0, got {self.rate_hz}")
        if self.horizon_s < 0:
            raise ValueError(f"horizon_s must be >= 0, got {self.horizon_s}")
        if not 0.0 <= self.telemetry_fraction <= 1.0:
            raise ValueError(
                f"telemetry_fraction must be in [0, 1], got {self.telemetry_fraction}"
            )
        if self.mode not in ("open", "closed"):
            raise ValueError(f"mode must be 'open' or 'closed', got {self.mode!r}")

    def describe(self) -> dict:
        return {
            "n_hives": self.n_hives,
            "rate_hz": self.rate_hz,
            "horizon_s": self.horizon_s,
            "telemetry_fraction": self.telemetry_fraction,
            "payload_bytes": self.payload_bytes,
            "admit_window_s": self.admit_window_s,
            "seed": self.seed,
            "mode": self.mode,
        }


def hive_stream(spec: LoadSpec, hive: int) -> List[Arrival]:
    """One hive's full arrival list, a function of ``(spec.seed, hive)`` only."""
    rng = make_rng(derive_seed(spec.seed, "loadgen", "hive", hive))
    window = min(spec.admit_window_s, spec.horizon_s)
    t = float(rng.uniform(0.0, window)) if window > 0 else 0.0
    if t > spec.horizon_s:
        return []
    arrivals = [Arrival(t, hive, 0, "admit")]
    seq = 1
    while True:
        t += float(rng.exponential(1.0 / spec.rate_hz))
        if t > spec.horizon_s:
            return arrivals
        op = "telemetry" if float(rng.random()) < spec.telemetry_fraction else "inference"
        arrivals.append(
            Arrival(t, hive, seq, op, spec.payload_bytes if op == "telemetry" else 0)
        )
        seq += 1


def merged_stream(spec: LoadSpec) -> Iterator[Arrival]:
    """All hives' arrivals in global time order (ties broken by hive, seq)."""
    return heapq.merge(
        *(hive_stream(spec, hive) for hive in range(spec.n_hives)),
        key=lambda a: a.sort_key,
    )


def arrival_to_request(arrival: Arrival) -> dict:
    """The engine/HTTP request dict for one arrival."""
    request = {"op": arrival.op, "hive": arrival.hive, "t": arrival.t}
    if arrival.op == "telemetry":
        request["bytes"] = arrival.payload_bytes
    return request


__all__ = ["Arrival", "LoadSpec", "hive_stream", "merged_stream", "arrival_to_request"]
