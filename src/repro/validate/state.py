"""Process-wide validation switch and check counters.

A dependency leaf (imports nothing from the package), so the simulation
modules can consult :func:`validation_enabled` at module-import time without
touching the checker layer.  The switch is what ``repro-exp --validate``
flips: every simulation path whose ``validate=`` argument is left at its
``None`` default then runs its invariant checkers.

The counters exist so a validated run can *prove* it checked something:
``repro-exp fig7 --validate`` reports how many checker invocations ran and
that zero violations were raised, instead of silently doing nothing.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

_enabled: bool = False
_checks_run: int = 0


def validation_enabled() -> bool:
    """True while global invariant checking is switched on."""
    return _enabled


def set_validation(enabled: bool) -> None:
    """Switch global invariant checking on or off."""
    global _enabled
    _enabled = bool(enabled)


@contextmanager
def validation(enabled: bool = True) -> Iterator[None]:
    """Scoped switch: enable (or disable) validation inside a ``with`` block."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    try:
        yield
    finally:
        _enabled = previous


def resolve(validate: Optional[bool]) -> bool:
    """Effective setting for a ``validate=`` keyword: explicit wins, else global."""
    return _enabled if validate is None else bool(validate)


def note_check(n: int = 1) -> None:
    """Record that ``n`` checker invocations ran (telemetry for --validate)."""
    global _checks_run
    _checks_run += n


def checks_run() -> int:
    """Total checker invocations since the last :func:`reset_check_count`."""
    return _checks_run


def reset_check_count() -> None:
    global _checks_run
    _checks_run = 0


__all__ = [
    "validation_enabled",
    "set_validation",
    "validation",
    "resolve",
    "note_check",
    "checks_run",
    "reset_check_count",
]
