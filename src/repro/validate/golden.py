"""Golden-trace regression harness (``repro-golden``).

Records canonical *fingerprints* of the paper's tables/figures and of the
fault/cohort/parallel simulation paths into versioned JSON files under
``tests/golden/``, and diffs fresh runs against them field by field.  A
fingerprint is deliberately small — rounded scalar summaries plus SHA-256
hashes of the full series/event traces — so drift is caught without
committing megabytes of arrays, and the differ can say *which* quantity
moved and by how much.

Workflow
--------
``repro-golden --check``
    Re-run every case and diff against the committed goldens; exit 1 and
    print a per-field drift report on any mismatch (``--report out.json``
    also writes the report as machine-readable JSON — CI uploads it as an
    artifact).
``repro-golden --update``
    Regenerate the golden files after an *intentional* model change.  The
    diff of ``tests/golden/*.json`` then documents exactly what moved, and
    the PR review answers whether the drift is legitimate (see
    ``docs/TESTING.md``).
``repro-golden --list`` / ``--only case1,case2``
    Enumerate or restrict cases.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import sys
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Bump when the fingerprint *structure* changes (not when values drift).
FINGERPRINT_VERSION = 1

#: Default location of the committed goldens (repo layout: src/repro/validate/).
GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"

#: Relative tolerance when diffing stored vs fresh scalars.  Fingerprint
#: scalars are canonically rounded to 10 significant digits, so same-machine
#: reruns match exactly; the band absorbs cross-platform libm noise while
#: still flagging any real drift (perturbations land at 1e-3 and above).
DIFF_RTOL = 1e-6
DIFF_ATOL = 1e-9


# ---------------------------------------------------------------------------
# canonicalization
# ---------------------------------------------------------------------------


def round_sig(value: float, sig: int = 10) -> float:
    """Round to ``sig`` significant digits (canonical fingerprint scalar)."""
    if not math.isfinite(value):
        return value
    return float(f"{value:.{sig}g}")


def hash_floats(values, sig: int = 6) -> str:
    """SHA-256 over ``sig``-significant-digit renderings of ``values``.

    The coarse rendering makes the hash stable across platforms' last-ulp
    differences while still changing for any perturbation above ~1e-5
    relative.
    """
    joined = ",".join(f"{float(v):.{sig}g}" for v in values)
    return hashlib.sha256(joined.encode()).hexdigest()


def hash_lines(lines) -> str:
    """SHA-256 over newline-joined canonical event/trace lines."""
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def account_fingerprint(account) -> Dict[str, Any]:
    """Canonical form of one :class:`~repro.energy.account.EnergyAccount`."""
    return {
        "total_j": round_sig(account.total),
        "categories": {k: round_sig(v) for k, v in sorted(account.breakdown().items())},
    }


def timeline_trace(device) -> List[str]:
    """Canonical per-segment lines of a device's state timeline."""
    return [
        f"{t0:.6g} {t1:.6g} {state}"
        for t0, t1, state in device.timeline.segments()
    ]


def event_trace(log) -> List[str]:
    """Canonical lines of a :class:`~repro.des.monitor.EventLog`."""
    lines = []
    for ev in log:
        detail = " ".join(f"{k}={ev.detail[k]}" for k in sorted(ev.detail))
        lines.append(f"{ev.time:.6g} {ev.kind} {detail}".rstrip())
    return lines


# ---------------------------------------------------------------------------
# case fingerprints
# ---------------------------------------------------------------------------


def _experiment_fingerprint(experiment_id: str, **kwargs) -> Dict[str, Any]:
    from repro.experiments.registry import run_experiment

    return run_experiment(experiment_id, **kwargs).fingerprint()


def _des_common(res) -> Dict[str, Any]:
    from repro.energy.account import EnergyAccount

    fleet = EnergyAccount.sum(res.client_accounts, owner="clients")
    return {
        "n_clients": res.n_clients,
        "n_cycles": res.n_cycles,
        "edge_energy_j": round_sig(res.edge_energy_j),
        "server_energy_j": round_sig(res.server_energy_j),
        "total_energy_j": round_sig(res.total_energy_j),
        "edge_per_client_cycle_j": round_sig(res.edge_energy_per_client_cycle),
        "client_categories": account_fingerprint(fleet)["categories"],
        "n_client_accounts": len(res.client_accounts),
        "n_server_accounts": len(res.server_accounts),
    }


def _case_des_ideal() -> Dict[str, Any]:
    from repro.core.dessim import run_des_fleet
    from repro.core.routines import EDGE_CLOUD_SVM

    res = run_des_fleet(37, EDGE_CLOUD_SVM, n_cycles=2, validate=True)
    fp = _des_common(res)
    fp["client0"] = account_fingerprint(res.client_accounts[0])
    fp["server0"] = account_fingerprint(res.server_accounts[0])
    return fp


def _case_des_cohort() -> Dict[str, Any]:
    from repro.core.dessim import run_des_fleet
    from repro.core.routines import EDGE_CLOUD_SVM

    res = run_des_fleet(200, EDGE_CLOUD_SVM, n_cycles=2, cohort=True, validate=True)
    fp = _des_common(res)
    fp["multiplicities"] = list(res.client_multiplicities)
    fp["server_multiplicities"] = list(res.server_multiplicities)
    fp["cohort_layout_sha256"] = hash_lines(
        [",".join(map(str, ids)) for ids in res.client_cohorts]
    )
    return fp


def _golden_faults():
    from repro.faults.config import FaultConfig
    from repro.faults.spec import ClientCrash, LinkBlackout, ServerOutage

    return FaultConfig(
        server_outage=ServerOutage(mtbf_s=900.0, repair_s=240.0),
        link_blackout=LinkBlackout(mtbf_s=2400.0, repair_s=60.0),
        client_crash=ClientCrash(mtbf_s=6000.0, repair_s=0.0),
    )


def _faulty_common(res) -> Dict[str, Any]:
    report = res.report
    return {
        "availability": round_sig(report.availability),
        "cloud_availability": round_sig(report.cloud_availability),
        "cycles": {
            "expected": report.cycles_expected,
            "ok": report.cycles_ok,
            "retried": report.cycles_retried,
            "failover": report.cycles_failover,
            "fallback": report.cycles_fallback,
            "missed": report.cycles_missed,
        },
        "retry_energy_j": round_sig(report.retry_energy_j),
        "failover_energy_j": round_sig(report.failover_energy_j),
        "fallback_energy_j": round_sig(report.fallback_energy_j),
        "degradation_energy_j": round_sig(report.degradation_energy_j),
        "n_fault_events": report.n_fault_events,
    }


def _case_des_faulty(cohort: bool = False) -> Dict[str, Any]:
    from repro.core.routines import make_scenario
    from repro.faults.desfaults import run_des_faulty_fleet

    scenario = make_scenario("edge+cloud", "svm", max_parallel=10)
    res = run_des_faulty_fleet(
        60, scenario, faults=_golden_faults(), n_cycles=4, seed=7, cohort=cohort,
        validate=True,
    )
    fp = _faulty_common(res)
    fp.update(
        {
            "n_clients": res.n_clients,
            "n_cycles": res.n_cycles,
            "edge_energy_j": round_sig(res.edge_energy_j),
            "server_energy_j": round_sig(res.server_energy_j),
            "total_energy_j": round_sig(res.total_energy_j),
            "event_trace_sha256": hash_lines(event_trace(res.monitor.log)),
            "n_schedule_windows": len(res.schedule.windows),
        }
    )
    if cohort:
        fp["multiplicities_sha256"] = hash_lines(
            [",".join(map(str, ids)) for ids in res.client_cohorts]
        )
        fp["n_client_accounts"] = len(res.client_accounts)
    return fp


def _case_faulty_analytic() -> Dict[str, Any]:
    from repro.core.routines import make_scenario
    from repro.faults.fleetsim import run_faulty_fleet

    scenario = make_scenario("edge+cloud", "svm", max_parallel=10)
    res = run_faulty_fleet(
        80, scenario, faults=_golden_faults(), n_cycles=6, seed=3, validate=True
    )
    fp = _faulty_common(res)
    fp.update(
        {
            "n_clients": res.n_clients,
            "n_cycles": res.n_cycles,
            "total_energy_j": round_sig(res.total_energy_j),
            "mean_total_per_client_cycle_j": round_sig(res.mean_total_per_client_cycle),
            "edge_series_sha256": hash_floats(res.edge_energy_j),
            "server_series_sha256": hash_floats(res.server_energy_j),
            "n_active_series": [int(v) for v in res.n_active],
            "n_servers_down_series": [int(v) for v in res.n_servers_down],
        }
    )
    return fp


def _case_des_array() -> Dict[str, Any]:
    """The SoA per-client kernel and the calendar-queue engine must both be
    bit-identical to the heap-engine scalar DES before anything is pinned."""
    from repro.core.dessim import run_des_fleet
    from repro.core.dessim_array import run_des_fleet_array
    from repro.core.routines import EDGE_CLOUD_SVM

    scalar = run_des_fleet(37, EDGE_CLOUD_SVM, n_cycles=2, validate=True)
    wheel = run_des_fleet(
        37, EDGE_CLOUD_SVM, n_cycles=2, validate=True, engine_queue="wheel"
    )
    array = run_des_fleet_array(37, EDGE_CLOUD_SVM, n_cycles=2, validate=True)
    for other, name in ((wheel, "wheel"), (array, "array")):
        if (
            other.edge_energy_j != scalar.edge_energy_j
            or other.server_energy_j != scalar.server_energy_j
        ):
            raise RuntimeError(f"{name} DES kernel energies diverged from heap scalar")
        for a, b in zip(scalar.client_accounts, other.client_accounts):
            if a._totals != b._totals or a._durations != b._durations:
                raise RuntimeError(f"{name} DES kernel client ledgers diverged")
        for a, b in zip(scalar.server_accounts, other.server_accounts):
            if a._totals != b._totals:
                raise RuntimeError(f"{name} DES kernel server ledgers diverged")
    fp = _des_common(array)
    fp["client0"] = account_fingerprint(array.client_accounts[0])
    fp["server0"] = account_fingerprint(array.server_accounts[0])
    return fp


def _case_faulty_array() -> Dict[str, Any]:
    """The closed-form faulty kernel must match the scalar reference exactly
    (ledgers, monitor report and buffer ledger) before its pin is taken."""
    import numpy as np

    from repro.core.routines import make_scenario
    from repro.faults.config import FaultConfig
    from repro.faults.fleetsim import run_faulty_fleet
    from repro.faults.spec import ClientCrash, LinkBlackout, ServerOutage
    from repro.network.buffer import BufferSpec
    from repro.network.outage import OutagePattern

    scenario = make_scenario("edge+cloud", "svm", max_parallel=10)
    faults = FaultConfig(
        server_outage=ServerOutage(mtbf_s=900.0, repair_s=240.0),
        link_blackout=LinkBlackout(mtbf_s=2400.0, repair_s=60.0),
        client_crash=ClientCrash(mtbf_s=6000.0, repair_s=0.0),
        link_outage=OutagePattern.duty_cycle(4 * 3600.0, 2 * 3600.0),
        buffer=BufferSpec.for_cycles(4),
    )
    kwargs = dict(faults=faults, n_cycles=24, seed=9, validate=True)
    scalar = run_faulty_fleet(60, scenario, kernel="scalar", **kwargs)
    array = run_faulty_fleet(60, scenario, kernel="array", **kwargs)
    for field in (
        "edge_energy_j", "server_energy_j", "retry_energy_j", "failover_energy_j",
        "fallback_energy_j", "degradation_energy_j", "buffered_energy_j",
        "drain_energy_j", "n_active", "n_servers_down",
    ):
        if not np.array_equal(getattr(array, field), getattr(scalar, field)):
            raise RuntimeError(f"array faulty kernel diverged from scalar on {field}")
    if array.report != scalar.report or array.buffer_report != scalar.buffer_report:
        raise RuntimeError("array faulty kernel report diverged from scalar")
    fp = _faulty_common(array)
    fp.update(
        {
            "n_clients": array.n_clients,
            "n_cycles": array.n_cycles,
            "total_energy_j": round_sig(array.total_energy_j),
            "edge_series_sha256": hash_floats(array.edge_energy_j),
            "server_series_sha256": hash_floats(array.server_energy_j),
            "drain_series_sha256": hash_floats(array.drain_energy_j),
            "delivered_data_fraction": round_sig(array.delivered_data_fraction),
            "buffer_delivered": array.buffer_report.delivered_payloads,
            "buffer_dropped": array.buffer_report.dropped_payloads,
        }
    )
    return fp


def _case_parallel_crossover() -> Dict[str, Any]:
    """The chunked parallel runner must be bit-identical to a serial run."""
    from repro.experiments.registry import run_experiment

    kwargs = dict(n_clients=70, n_cycles=12, crossover_sizes=(350, 650, 150), seed=0)
    serial = run_experiment("ext-faults", **kwargs).fingerprint()
    parallel = run_experiment("ext-faults", workers=2, **kwargs).fingerprint()
    if serial != parallel:
        raise RuntimeError("parallel ext-faults fingerprint diverged from serial run")
    return serial


def _case_checkpoint_resume() -> Dict[str, Any]:
    """An interrupted-then-resumed run must be bit-identical to a fresh one.

    The run is interrupted *deterministically* — the checkpointer's chaos
    hook raises :class:`~repro.resilience.errors.InterruptedRun` right
    after the second durable save — then resumed from the checkpoint file.
    The resumed fingerprint must equal the uninterrupted fingerprint, which
    is the whole crash-safety contract (docs/RESILIENCE.md).
    """
    import tempfile
    from pathlib import Path

    from repro.experiments.registry import run_experiment
    from repro.resilience.checkpoint import RunCheckpoint, run_key
    from repro.resilience.errors import InterruptedRun

    kwargs = dict(n_clients=70, n_cycles=12, crossover_sizes=(350, 650, 150), seed=0)
    fresh = run_experiment("ext-faults", **kwargs).fingerprint()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ext-faults.ckpt.json"
        key = run_key("ext-faults", kwargs["seed"])
        try:
            run_experiment(
                "ext-faults",
                checkpoint=RunCheckpoint(path, run_key=key, abort_after_saves=2),
                **kwargs,
            )
        except InterruptedRun:
            pass
        else:
            raise RuntimeError("chaos hook did not interrupt the checkpointed run")
        resumed = run_experiment(
            "ext-faults",
            checkpoint=RunCheckpoint(path, run_key=key, resume=True),
            **kwargs,
        ).fingerprint()
    if fresh != resumed:
        raise RuntimeError("resumed ext-faults fingerprint diverged from fresh run")
    return fresh


def _case_serve_trace() -> Dict[str, Any]:
    """Canonical serve-under-load replay (see :mod:`repro.serve.smoke`).

    The builder itself refuses to fingerprint if the replay errors or the
    steady-state live allocation diverges from the batch allocate fold.
    """
    from repro.serve.smoke import smoke_fingerprint

    return smoke_fingerprint()


def _build_cases() -> Dict[str, Tuple[Callable[[], Dict[str, Any]], str]]:
    def fig5_case() -> Dict[str, Any]:
        from repro.audio.dataset import DatasetSpec

        return _experiment_fingerprint(
            "fig5",
            sizes=(20, 60, 100),
            dataset_spec=DatasetSpec.small(n_samples=120, clip_duration=2.0, seed=5),
        )

    return {
        "table1": (lambda: _experiment_fingerprint("table1"), "Table I per-task edge energies"),
        "table2": (lambda: _experiment_fingerprint("table2"), "Table II edge+cloud energies"),
        "fig3": (lambda: _experiment_fingerprint("fig3"), "Fig 3 average power vs wake-up period"),
        "fig5": (fig5_case, "Fig 5 CNN energy/accuracy vs image size (reduced corpus)"),
        "fig7": (lambda: _experiment_fingerprint("fig7"), "Fig 7 edge vs edge+cloud crossover"),
        "fig8": (lambda: _experiment_fingerprint("fig8", seed=42), "Fig 8 loss models A/B/C"),
        "fig9": (lambda: _experiment_fingerprint("fig9", seed=42), "Fig 9 crossover under losses"),
        "des-ideal": (_case_des_ideal, "Per-client DES ledgers, ideal edge+cloud fleet"),
        "des-cohort": (_case_des_cohort, "Cohort-aggregated DES ledgers (exact collapse)"),
        "des-faulty": (lambda: _case_des_faulty(False), "Event-driven faulty fleet + event trace"),
        "des-faulty-cohort": (
            lambda: _case_des_faulty(True),
            "Cohort-aggregated faulty DES (statically-quiet collapse)",
        ),
        "faulty-analytic": (_case_faulty_analytic, "Cycle-level faulty fleet arrays"),
        "des-array": (
            _case_des_array,
            "SoA per-client DES kernel + wheel engine (bit-identical to heap scalar)",
        ),
        "faulty-array": (
            _case_faulty_array,
            "Closed-form faulty kernel vs scalar reference (bit-identical)",
        ),
        "ext-outage": (
            lambda: _experiment_fingerprint(
                "ext-outage",
                n_clients=70,
                n_cycles=12,
                crossover_sizes=(350, 650, 150),
                seed=0,
            ),
            "Intermittent-connectivity sweep (reduced grid): outage schedules, "
            "store-and-forward buffering, crossover shift",
        ),
        "ext-policies": (
            lambda: _experiment_fingerprint(
                "ext-policies",
                fleet_sizes=(100, 350),
                seed=0,
            ),
            "Placement-policy sweep (reduced grid): energy and solar "
            "alignment per policy, online == batch pins",
        ),
        "parallel-crossover": (
            _case_parallel_crossover,
            "ext-faults via the chunked parallel runner (serial == parallel)",
        ),
        "checkpoint-resume": (
            _case_checkpoint_resume,
            "ext-faults interrupted at a checkpoint and resumed (resume == fresh)",
        ),
        "serve-trace": (
            _case_serve_trace,
            "Canonical serve-under-load replay: placement trace, response "
            "hashes, steady state == batch fold",
        ),
        "ext-serve-faults": (
            lambda: _experiment_fingerprint(
                "ext-serve-faults",
                policies=("first-fit",),
                fault_levels=(0.0, 3.0),
                queue_bounds=(None, 8),
                n_hives=12,
                horizon_cycles=4,
            ),
            "Fault-injected serving sweep (reduced grid): availability, "
            "shedding, retry energy, zero-fault bit-identity pin",
        ),
    }


def case_ids() -> List[str]:
    return list(_build_cases())


def compute_fingerprint(case_id: str) -> Dict[str, Any]:
    """Run one case and return its canonical fingerprint."""
    cases = _build_cases()
    if case_id not in cases:
        raise KeyError(f"unknown golden case {case_id!r} (known: {', '.join(cases)})")
    builder, _description = cases[case_id]
    return builder()


# ---------------------------------------------------------------------------
# differ
# ---------------------------------------------------------------------------


def diff_fingerprints(
    expected: Any, actual: Any, path: str = "", rtol: float = DIFF_RTOL, atol: float = DIFF_ATOL
) -> List[Dict[str, Any]]:
    """Recursive per-field drift report between two fingerprints.

    Returns a list of drift records ``{field, kind, expected, actual,
    rel_err}``; empty means the fingerprints agree within tolerance.
    """
    drifts: List[Dict[str, Any]] = []

    def visit(exp: Any, act: Any, where: str) -> None:
        if isinstance(exp, dict) and isinstance(act, dict):
            for key in exp:
                if key not in act:
                    drifts.append({"field": f"{where}.{key}".lstrip("."), "kind": "missing",
                                   "expected": exp[key], "actual": None})
                else:
                    visit(exp[key], act[key], f"{where}.{key}")
            for key in act:
                if key not in exp:
                    drifts.append({"field": f"{where}.{key}".lstrip("."), "kind": "extra",
                                   "expected": None, "actual": act[key]})
            return
        if isinstance(exp, list) and isinstance(act, list):
            if len(exp) != len(act):
                drifts.append({"field": where.lstrip("."), "kind": "length",
                               "expected": len(exp), "actual": len(act)})
                return
            for i, (e, a) in enumerate(zip(exp, act)):
                visit(e, a, f"{where}[{i}]")
            return
        if isinstance(exp, bool) or isinstance(act, bool) or isinstance(exp, str) or isinstance(act, str):
            # bool-vs-number counts as drift even though True == 1 in Python.
            if exp != act or isinstance(exp, bool) != isinstance(act, bool):
                drifts.append({"field": where.lstrip("."), "kind": "value-drift",
                               "expected": exp, "actual": act})
            return
        if isinstance(exp, (int, float)) and isinstance(act, (int, float)):
            e, a = float(exp), float(act)
            if math.isfinite(e) and math.isfinite(a):
                err = abs(a - e)
                scale = max(abs(e), abs(a))
                if err > atol + rtol * scale:
                    drifts.append({
                        "field": where.lstrip("."), "kind": "value-drift",
                        "expected": exp, "actual": act,
                        "rel_err": err / scale if scale else math.inf,
                    })
            elif e != a and not (math.isnan(e) and math.isnan(a)):
                drifts.append({"field": where.lstrip("."), "kind": "value-drift",
                               "expected": exp, "actual": act})
            return
        if exp != act:
            drifts.append({"field": where.lstrip("."), "kind": "type",
                           "expected": exp, "actual": act})

    visit(expected, actual, path)
    return drifts


def _drift_severity(drift: Dict[str, Any]) -> float:
    """Ordering key for drift records: numeric drifts rank by relative error;
    structural drifts (missing/extra/length/type) always outrank them."""
    if drift["kind"] != "value-drift":
        return math.inf
    return drift.get("rel_err", math.inf)


def worst_offender(drifts: List[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """The most severe drift record of a case, or ``None`` if it is clean."""
    if not drifts:
        return None
    return max(drifts, key=_drift_severity)


def render_drift_report(report: Dict[str, List[Dict[str, Any]]]) -> str:
    """Human-readable drift report: one block per drifted case, fields
    ordered worst-first, with the worst offender named up front."""
    lines: List[str] = []
    for case_id, drifts in report.items():
        if not drifts:
            continue
        worst = worst_offender(drifts)
        lines.append(
            f"case {case_id}: {len(drifts)} drifted field(s), "
            f"worst: {worst['field']}"
        )
        for d in sorted(drifts, key=_drift_severity, reverse=True):
            rel = f"  rel_err={d['rel_err']:.3g}" if "rel_err" in d else ""
            lines.append(
                f"  [{d['kind']}] {d['field']}: expected={d['expected']!r} "
                f"actual={d['actual']!r}{rel}"
            )
    return "\n".join(lines) if lines else "all golden fingerprints match"


# ---------------------------------------------------------------------------
# storage + CLI
# ---------------------------------------------------------------------------


def golden_path(case_id: str, directory: Optional[Path] = None) -> Path:
    return Path(directory or GOLDEN_DIR) / f"{case_id.replace('/', '_')}.json"


def load_golden(case_id: str, directory: Optional[Path] = None) -> Dict[str, Any]:
    path = golden_path(case_id, directory)
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("version") != FINGERPRINT_VERSION:
        raise ValueError(
            f"golden {case_id!r} has fingerprint version {payload.get('version')!r}, "
            f"this code expects {FINGERPRINT_VERSION} — regenerate with repro-golden --update"
        )
    return payload


def save_golden(case_id: str, fingerprint: Dict[str, Any], directory: Optional[Path] = None) -> Path:
    from repro.util.atomic import atomic_write_json

    cases = _build_cases()
    path = golden_path(case_id, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "case": case_id,
        "version": FINGERPRINT_VERSION,
        "description": cases[case_id][1],
        "fingerprint": fingerprint,
    }
    atomic_write_json(path, payload, sort_keys=True)
    return path


def check_cases(
    only: Optional[List[str]] = None, directory: Optional[Path] = None
) -> Dict[str, List[Dict[str, Any]]]:
    """Run cases and diff against stored goldens; ``{case: drift-list}``.

    A missing golden file is reported as a single ``missing-golden`` drift.
    """
    report: Dict[str, List[Dict[str, Any]]] = {}
    for case_id in only or case_ids():
        try:
            stored = load_golden(case_id, directory)
        except FileNotFoundError:
            report[case_id] = [{
                "field": "<file>", "kind": "missing-golden",
                "expected": str(golden_path(case_id, directory)), "actual": None,
            }]
            continue
        fresh = compute_fingerprint(case_id)
        report[case_id] = diff_fingerprints(stored["fingerprint"], fresh)
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-golden",
        description="Golden-trace regression harness: record and diff canonical "
        "fingerprints of every simulation path.",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--check", action="store_true", help="diff fresh runs against stored goldens (default)")
    mode.add_argument("--update", action="store_true", help="regenerate the stored goldens")
    mode.add_argument("--list", action="store_true", help="list golden case ids")
    parser.add_argument("--only", default=None, help="comma-separated subset of case ids")
    parser.add_argument("--dir", default=None, help=f"golden directory (default: {GOLDEN_DIR})")
    parser.add_argument("--report", default=None, help="with --check: also write the drift report as JSON")
    args = parser.parse_args(argv)

    cases = _build_cases()
    if args.list:
        for case_id, (_builder, description) in cases.items():
            print(f"{case_id:22s} {description}")
        return 0

    only = None
    if args.only:
        only = [c.strip() for c in args.only.split(",") if c.strip()]
        unknown = [c for c in only if c not in cases]
        if unknown:
            print(f"unknown case ids: {', '.join(unknown)}", file=sys.stderr)
            return 2

    directory = Path(args.dir) if args.dir else None
    if args.update:
        for case_id in only or case_ids():
            path = save_golden(case_id, compute_fingerprint(case_id), directory)
            print(f"updated {path}")
        return 0

    report = check_cases(only, directory)
    drifted = {k: v for k, v in report.items() if v}
    print(render_drift_report(report))
    clean = [k for k in report if k not in drifted]
    if clean:
        print(f"ok: {', '.join(clean)}")
    if args.report:
        from repro.util.atomic import atomic_write_json

        atomic_write_json(
            args.report,
            {
                "version": FINGERPRINT_VERSION,
                "cases": report,
                "drifted": sorted(drifted),
                "worst_offenders": {
                    k: worst_offender(v)["field"] for k, v in drifted.items()
                },
            },
            sort_keys=True,
        )
        print(f"drift report written to {args.report}")
    return 1 if drifted else 0


if __name__ == "__main__":
    raise SystemExit(main())
