"""Schema validation for experiment ``--json`` output.

Every experiment's :meth:`~repro.experiments.report.ExperimentResult.to_dict`
payload must survive a JSON round trip and satisfy one shared shape
contract: known keys, correct types, finite numbers.  The contract lives
here — next to the invariant layer, raising the same structured
:class:`~repro.validate.errors.InvariantViolation` — so both the CLI's
``--validate`` path and the round-trip test suite enforce the exact same
rules.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict

from repro.validate.errors import InvariantViolation
from repro.validate.state import note_check

#: Top-level keys of an experiment dict and their required types.
TOP_LEVEL_KEYS: Dict[str, type] = {
    "experiment_id": str,
    "title": str,
    "description": str,
    "comparisons": list,
    "notes": list,
}

#: Keys of one comparison entry.
COMPARISON_KEYS = ("quantity", "paper", "measured", "deviation_pct", "within_tolerance")


def _fail(message: str, experiment_id: str, **context: Any) -> InvariantViolation:
    ctx = {"experiment_id": experiment_id}
    ctx.update(context)
    return InvariantViolation("json-schema", message, ctx)


def check_experiment_dict(payload: Dict[str, Any], experiment_id: str = "?") -> None:
    """Validate one ``ExperimentResult.to_dict`` payload; raise on violation.

    ``deviation_pct`` may be infinite only when the paper value is zero (the
    comparison is then a pure regression pin, not a relative check); every
    other number in the payload must be finite.
    """
    note_check()
    for key, expected_type in TOP_LEVEL_KEYS.items():
        if key not in payload:
            raise _fail(f"missing top-level key {key!r}", experiment_id)
        if not isinstance(payload[key], expected_type):
            raise _fail(
                f"key {key!r} is {type(payload[key]).__name__}, expected {expected_type.__name__}",
                experiment_id,
            )
    known = set(TOP_LEVEL_KEYS) | {"series"}
    unknown = set(payload) - known
    if unknown:
        raise _fail(f"unknown top-level keys {sorted(unknown)}", experiment_id)

    for i, comparison in enumerate(payload["comparisons"]):
        if not isinstance(comparison, dict):
            raise _fail(f"comparison #{i} is not an object", experiment_id)
        if set(comparison) != set(COMPARISON_KEYS):
            raise _fail(
                f"comparison #{i} keys {sorted(comparison)} != {sorted(COMPARISON_KEYS)}",
                experiment_id,
            )
        if not isinstance(comparison["quantity"], str):
            raise _fail(f"comparison #{i} quantity is not a string", experiment_id)
        for field in ("paper", "measured"):
            value = comparison[field]
            if not isinstance(value, (int, float)) or isinstance(value, bool) or not math.isfinite(value):
                raise _fail(
                    f"comparison {comparison['quantity']!r}: {field} is {value!r}", experiment_id
                )
        deviation = comparison["deviation_pct"]
        if not isinstance(deviation, (int, float)) or isinstance(deviation, bool):
            raise _fail(
                f"comparison {comparison['quantity']!r}: deviation_pct is {deviation!r}",
                experiment_id,
            )
        if not math.isfinite(deviation) and comparison["paper"] != 0:
            raise _fail(
                f"comparison {comparison['quantity']!r}: non-finite deviation with paper != 0",
                experiment_id,
            )
        if comparison["within_tolerance"] not in (True, False, None):
            raise _fail(
                f"comparison {comparison['quantity']!r}: within_tolerance is "
                f"{comparison['within_tolerance']!r}",
                experiment_id,
            )

    for i, note in enumerate(payload["notes"]):
        if not isinstance(note, str):
            raise _fail(f"note #{i} is not a string", experiment_id)

    if "series" in payload:
        series = payload["series"]
        if not isinstance(series, dict):
            raise _fail("series is not an object", experiment_id)
        for name, values in series.items():
            if not isinstance(name, str):
                raise _fail(f"series name {name!r} is not a string", experiment_id)
            if not isinstance(values, list):
                raise _fail(f"series {name!r} is not a list", experiment_id)
            _check_series_values(values, name, experiment_id)


def _check_series_values(values: Any, name: str, experiment_id: str, depth: int = 0) -> None:
    if depth > 2:
        raise _fail(f"series {name!r} nests deeper than 2 levels", experiment_id)
    for value in values:
        if isinstance(value, list):
            _check_series_values(value, name, experiment_id, depth + 1)
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            raise _fail(f"series {name!r} holds non-numeric value {value!r}", experiment_id)
        elif not math.isfinite(value):
            raise _fail(f"series {name!r} holds non-finite value {value!r}", experiment_id)


def check_experiment_result(result, include_series: bool = True) -> Dict[str, Any]:
    """Round-trip ``result`` through JSON and validate the decoded payload.

    Returns the decoded dict so callers can reuse it (e.g. for golden
    fingerprints) without serializing twice.
    """
    payload = result.to_dict(include_series=include_series)
    try:
        decoded = json.loads(json.dumps(payload))
    except (TypeError, ValueError) as exc:
        raise _fail(f"payload is not JSON-serializable: {exc}", result.experiment_id) from exc
    check_experiment_dict(decoded, result.experiment_id)
    return decoded


__all__ = [
    "check_experiment_dict",
    "check_experiment_result",
    "TOP_LEVEL_KEYS",
    "COMPARISON_KEYS",
]
