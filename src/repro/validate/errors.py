"""Structured invariant-violation errors.

This module is a dependency leaf: it imports nothing from the rest of the
package, so low-level modules (:mod:`repro.core.allocator`, the DES kernel)
can raise :class:`InvariantViolation` without creating import cycles with
the checker layer in :mod:`repro.validate.invariants`.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional


class InvariantViolation(ValueError):
    """A simulation invariant did not hold.

    Subclasses :class:`ValueError` so call sites that predate the validation
    subsystem (e.g. ``Allocation.validate`` callers catching ``ValueError``)
    keep working unchanged.

    Attributes
    ----------
    invariant:
        Short kebab-case name of the violated invariant (e.g.
        ``"energy-conservation"``, ``"slot-occupancy"``).
    context:
        Structured run context — fleet size, scenario name, seed, the
        offending values — for post-mortem without re-running.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        context: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.invariant = str(invariant)
        self.context: Dict[str, Any] = dict(context or {})
        detail = ""
        if self.context:
            pairs = ", ".join(f"{k}={v!r}" for k, v in sorted(self.context.items()))
            detail = f" [{pairs}]"
        super().__init__(f"invariant {self.invariant!r} violated: {message}{detail}")
        self.message = message

    def with_context(self, **extra: Any) -> "InvariantViolation":
        """A copy of this violation with additional context merged in."""
        merged = dict(self.context)
        merged.update(extra)
        return InvariantViolation(self.invariant, self.message, merged)


__all__ = ["InvariantViolation"]
