"""Runtime invariant checking and golden-trace regression (``repro.validate``).

Two halves:

* **Invariants** (:mod:`repro.validate.invariants`) — composable
  :class:`~repro.validate.invariants.Checker` objects that recompute
  conservation laws (energy-ledger totals vs battery delta, slot occupancy
  vs ``max_parallel``, cohort partitions vs fleet size, DES clock
  monotonicity, availability bounds) from independent derivations and raise
  structured :class:`InvariantViolation` errors.  Every simulation path
  takes ``validate=`` (tri-state: ``None`` defers to the global switch),
  and ``repro-exp <id> --validate`` flips the switch for a whole run.
* **Goldens** (:mod:`repro.validate.golden`, CLI ``repro-golden``) —
  canonical fingerprints of the paper's tables/figures and the
  fault/cohort/parallel simulation paths, committed under ``tests/golden/``
  and diffed field-by-field against fresh runs.

See ``docs/TESTING.md`` for the invariant catalog and the golden
regeneration workflow.
"""

from repro.validate.errors import InvariantViolation
from repro.validate.invariants import (
    Checker,
    ServeConservation,
    battery_delta,
    check_monotone_nonincreasing,
    default_checkers,
    run_checkers,
    validate_des_faulty_run,
    validate_des_run,
    validate_faulty_fleet_result,
    validate_fleet_result,
    validate_sweep_result,
)
from repro.validate.schema import check_experiment_dict, check_experiment_result
from repro.validate.state import (
    checks_run,
    reset_check_count,
    resolve,
    set_validation,
    validation,
    validation_enabled,
)

__all__ = [
    "InvariantViolation",
    "Checker",
    "ServeConservation",
    "battery_delta",
    "check_monotone_nonincreasing",
    "default_checkers",
    "run_checkers",
    "validate_des_faulty_run",
    "validate_des_run",
    "validate_faulty_fleet_result",
    "validate_fleet_result",
    "validate_sweep_result",
    "check_experiment_dict",
    "check_experiment_result",
    "checks_run",
    "reset_check_count",
    "resolve",
    "set_validation",
    "validation",
    "validation_enabled",
]
