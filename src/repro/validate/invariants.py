"""Composable runtime invariant checkers for every simulation path.

Each :class:`Checker` encodes one contract the energy bookkeeping must
honour — ledger conservation, slot-occupancy bounds, availability bounds,
cohort-partition exactness, DES clock monotonicity — and raises a
structured :class:`~repro.validate.errors.InvariantViolation` carrying the
run context when the contract breaks.

The per-path entry points (:func:`validate_fleet_result`,
:func:`validate_des_run`, :func:`validate_faulty_fleet_result`,
:func:`validate_des_faulty_run`, :func:`validate_sweep_result`) compose the
applicable checkers and are what the simulators call when their
``validate=`` flag resolves true (see :mod:`repro.validate.state`).  They
are deliberately *recomputing* validators: wherever a quantity has two
independent derivations (event-driven ledger vs closed-form slot energy,
per-cycle array vs monitor counter, cohort-weighted sum vs per-member sum),
both are evaluated and reconciled, so silent drift in either implementation
trips a violation instead of skewing a figure.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Optional, Sequence

import numpy as np

from repro.energy.account import EnergyAccount
from repro.energy.battery import Battery
from repro.validate.errors import InvariantViolation
from repro.validate.state import note_check

#: Relative tolerance used when reconciling two float derivations of the
#: same quantity.  The DES and analytic paths agree to ~1e-12 in practice;
#: 1e-9 leaves headroom for long accumulation chains without letting any
#: real modelling drift (which shows up at 1e-3 and above) through.
REL_TOL = 1e-9


def _close(a: float, b: float, rel: float = REL_TOL) -> bool:
    return math.isclose(a, b, rel_tol=rel, abs_tol=1e-9)


class Checker:
    """One invariant contract.  Subclasses implement :meth:`check`."""

    #: Kebab-case invariant name used in violations and the docs catalog.
    name: str = "checker"
    #: One-line contract statement (rendered into docs/TESTING.md's catalog).
    contract: str = ""

    def check(self, subject: Any, context: Dict[str, Any]) -> None:
        raise NotImplementedError

    def violation(self, message: str, context: Dict[str, Any], **extra: Any) -> InvariantViolation:
        merged = dict(context)
        merged.update(extra)
        return InvariantViolation(self.name, message, merged)


def run_checkers(subject: Any, checkers: Iterable[Checker], context: Optional[Dict[str, Any]] = None) -> None:
    """Run every checker against ``subject``; first violation propagates."""
    ctx = dict(context or {})
    for checker in checkers:
        note_check()
        checker.check(subject, ctx)


# ---------------------------------------------------------------------------
# ledger-level checkers
# ---------------------------------------------------------------------------


class LedgerConservation(Checker):
    """Energy-ledger conservation over a set of :class:`EnergyAccount`\\ s.

    Three-way reconciliation per account: the grand total must equal the sum
    of per-category (per-task) joules, every category must be finite and
    non-negative, and replaying the ledger against a lossless
    :class:`~repro.energy.battery.Battery` must drain exactly the total —
    the paper's "what the tasks spent is what the battery lost" identity.
    """

    name = "energy-conservation"
    contract = "sum of per-task joules == ledger total == lossless battery delta"

    def __init__(self, accounts_attr: str = "client_accounts") -> None:
        self.accounts_attr = accounts_attr

    def check(self, subject: Any, context: Dict[str, Any]) -> None:
        accounts: Sequence[EnergyAccount] = getattr(subject, self.accounts_attr)
        for i, account in enumerate(accounts):
            breakdown = account.breakdown()
            for category, joules in breakdown.items():
                if not math.isfinite(joules) or joules < 0:
                    raise self.violation(
                        f"category {category!r} of {account.owner!r} is {joules!r}",
                        context, account_index=i,
                    )
            category_sum = sum(breakdown.values())
            total = account.total
            if not _close(category_sum, total):
                raise self.violation(
                    f"{account.owner!r}: category sum {category_sum!r} != total {total!r}",
                    context, account_index=i,
                )
            if not _close(battery_delta(account), total):
                raise self.violation(
                    f"{account.owner!r}: lossless battery delta {battery_delta(account)!r} "
                    f"!= ledger total {total!r}",
                    context, account_index=i,
                )


def battery_delta(account: EnergyAccount) -> float:
    """Joules a lossless battery loses when the ledger is replayed onto it."""
    total = account.total
    capacity = max(2.0 * total, 1.0)
    battery = Battery(
        capacity_joules=capacity,
        soc=1.0,
        charge_efficiency=1.0,
        discharge_efficiency=1.0,
        cutoff_soc=0.0,
        recovery_soc=0.0,
    )
    for joules in account.breakdown().values():
        battery.discharge(joules)
    return capacity - battery.stored


class EdgeLedgerMatchesClient(Checker):
    """Ideal DES runs: each client ledger equals the closed-form cycle energy."""

    name = "edge-ledger-vs-analytic"
    contract = "per-client DES ledger total == n_cycles x analytic client cycle energy"

    def check(self, subject: Any, context: Dict[str, Any]) -> None:
        scenario = context.get("scenario")
        if scenario is None:
            return
        expected = subject.n_cycles * scenario.client.cycle_energy
        for i, account in enumerate(subject.client_accounts):
            if not _close(account.total, expected):
                raise self.violation(
                    f"client ledger {account.owner!r} holds {account.total!r} J, "
                    f"analytic model says {expected!r} J",
                    context, account_index=i,
                )


class ServerLedgerMatchesAnalytic(Checker):
    """Ideal DES runs: server ledgers reconcile with the closed-form slot math."""

    name = "server-ledger-vs-analytic"
    contract = "DES server energy == n_cycles x analytic server_cycle_energy over the allocation"

    def check(self, subject: Any, context: Dict[str, Any]) -> None:
        allocation = context.get("allocation")
        scenario = context.get("scenario")
        if allocation is None or scenario is None or scenario.server is None:
            return
        from repro.core.simulate import server_cycle_energy

        losses = context.get("losses")
        sizing_extra = context.get("sizing_extra_s", 0.0)
        analytic = subject.n_cycles * sum(
            server_cycle_energy(
                scenario.server,
                srv.occupancies,
                period=subject.period,
                sizing_extra_s=sizing_extra,
                losses=losses,
            )
            for srv in allocation.servers
        )
        measured = subject.server_energy_j
        if not _close(measured, analytic, rel=1e-8):
            raise self.violation(
                f"DES server energy {measured!r} J != analytic {analytic!r} J",
                context,
            )


# ---------------------------------------------------------------------------
# structural checkers
# ---------------------------------------------------------------------------


class SlotOccupancyBound(Checker):
    """No slot may exceed ``max_parallel``; no server may exceed its slot plan."""

    name = "slot-occupancy"
    contract = "every slot holds <= max_parallel clients; every server <= slots_per_cycle slots"

    def check(self, subject: Any, context: Dict[str, Any]) -> None:
        allocation = context.get("allocation")
        if allocation is None:
            return
        allocation.validate()  # raises InvariantViolation("slot-occupancy") itself
        expected = context.get("n_allocated")
        if expected is not None and allocation.n_clients != expected:
            raise self.violation(
                f"allocation places {allocation.n_clients} clients, expected {expected}",
                context,
            )


class CohortPartition(Checker):
    """Cohorts must partition the fleet and multiplicities must sum to it."""

    name = "cohort-partition"
    contract = "cohort member ids partition [0, n); multiplicities sum to the fleet size"

    def check(self, subject: Any, context: Dict[str, Any]) -> None:
        from repro.core.cohort import check_partition

        multiplicities = getattr(subject, "client_multiplicities", ())
        cohorts = getattr(subject, "client_cohorts", ())
        if not cohorts:
            n_accounts = len(subject.client_accounts)
            if n_accounts != subject.n_clients:
                raise self.violation(
                    f"per-client run has {n_accounts} ledgers for {subject.n_clients} clients",
                    context,
                )
            return
        if len(multiplicities) != len(cohorts):
            raise self.violation(
                f"{len(multiplicities)} multiplicities for {len(cohorts)} cohorts",
                context,
            )
        for mult, members in zip(multiplicities, cohorts):
            if mult != len(members):
                raise self.violation(
                    f"cohort {members[:3]}... has multiplicity {mult} but {len(members)} members",
                    context,
                )
        if sum(multiplicities) != subject.n_clients:
            raise self.violation(
                f"multiplicities sum to {sum(multiplicities)}, fleet size is {subject.n_clients}",
                context,
            )
        try:
            check_partition(cohorts, subject.n_clients)
        except ValueError as exc:
            raise self.violation(str(exc), context) from exc


class ClockMonotonicity(Checker):
    """The DES must drain its queue and every timeline must move forward."""

    name = "clock-monotonicity"
    contract = "event queue drained; per-device timelines strictly ordered in time"

    def check(self, subject: Any, context: Dict[str, Any]) -> None:
        engine = context.get("engine")
        if engine is not None:
            if not engine.drained:
                raise self.violation(
                    f"event queue still holds events (next at t={engine.peek()!r})",
                    context,
                )
            if engine.now < 0:
                raise self.violation(f"engine clock is negative ({engine.now!r})", context)
        for device in context.get("devices", ()):
            previous = -math.inf
            for t_start, t_end, state in device.timeline.segments():
                if t_end < t_start or t_start < previous:
                    raise self.violation(
                        f"device {device.name!r} timeline goes backwards at "
                        f"({t_start!r}, {t_end!r}, {state!r})",
                        context,
                    )
                previous = t_end


# ---------------------------------------------------------------------------
# resilience / availability checkers
# ---------------------------------------------------------------------------


class AvailabilityBounds(Checker):
    """Availability is a fraction of expected cycles, fully accounted for."""

    name = "availability-bounds"
    contract = "availability in [0, 1]; detected + missed cycles == expected cycles"

    def check(self, subject: Any, context: Dict[str, Any]) -> None:
        report = subject.report
        for label, value in (
            ("availability", report.availability),
            ("cloud_availability", report.cloud_availability),
        ):
            if not (0.0 <= value <= 1.0) or not math.isfinite(value):
                raise self.violation(f"{label} is {value!r}, outside [0, 1]", context)
        accounted = report.cycles_detected + report.cycles_missed
        if accounted != report.cycles_expected:
            raise self.violation(
                f"outcomes account for {accounted} cycles, {report.cycles_expected} expected",
                context,
            )
        expected = context.get("expected_cycles")
        if expected is not None and report.cycles_expected != expected:
            raise self.violation(
                f"monitor expected {report.cycles_expected} cycles, run implies {expected}",
                context,
            )
        itemized = (
            report.retry_energy_j
            + report.failover_energy_j
            + report.fallback_energy_j
            + report.degradation_energy_j
            + report.buffered_energy_j
            + report.drain_energy_j
        )
        if not _close(itemized, report.resilience_energy_j):
            raise self.violation(
                f"itemized overheads {itemized!r} J != resilience total "
                f"{report.resilience_energy_j!r} J",
                context,
            )


class FaultyArraysConsistent(Checker):
    """Per-cycle arrays of the analytic faulty path reconcile with the monitor."""

    name = "faulty-array-accounting"
    contract = "per-cycle overhead arrays are finite, non-negative, and sum to the monitor's totals"

    def check(self, subject: Any, context: Dict[str, Any]) -> None:
        arrays = {
            "edge_energy_j": subject.edge_energy_j,
            "server_energy_j": subject.server_energy_j,
            "retry_energy_j": subject.retry_energy_j,
            "failover_energy_j": subject.failover_energy_j,
            "fallback_energy_j": subject.fallback_energy_j,
            "degradation_energy_j": subject.degradation_energy_j,
        }
        if subject.buffered_energy_j is not None:
            arrays["buffered_energy_j"] = subject.buffered_energy_j
        if subject.drain_energy_j is not None:
            arrays["drain_energy_j"] = subject.drain_energy_j
        for label, arr in arrays.items():
            arr = np.asarray(arr)
            if arr.shape != (subject.n_cycles,):
                raise self.violation(
                    f"{label} has shape {arr.shape}, expected ({subject.n_cycles},)", context
                )
            if not np.all(np.isfinite(arr)) or np.any(arr < 0):
                raise self.violation(f"{label} holds non-finite or negative entries", context)
        overheads = (
            subject.retry_energy_j
            + subject.failover_energy_j
            + subject.fallback_energy_j
            + subject.degradation_energy_j
        )
        if subject.buffered_energy_j is not None:
            overheads = overheads + subject.buffered_energy_j
        if subject.drain_energy_j is not None:
            overheads = overheads + subject.drain_energy_j
        if np.any(subject.edge_energy_j + 1e-9 < overheads):
            raise self.violation(
                "a cycle's edge energy is below its itemized resilience overhead", context
            )
        report = subject.report
        itemized_pairs = [
            ("retry", subject.retry_energy_j, report.retry_energy_j),
            ("failover", subject.failover_energy_j, report.failover_energy_j),
            ("fallback", subject.fallback_energy_j, report.fallback_energy_j),
            ("degradation", subject.degradation_energy_j, report.degradation_energy_j),
        ]
        if subject.buffered_energy_j is not None:
            itemized_pairs.append(
                ("buffered", subject.buffered_energy_j, report.buffered_energy_j)
            )
        if subject.drain_energy_j is not None:
            itemized_pairs.append(("drain", subject.drain_energy_j, report.drain_energy_j))
        for label, arr, total in itemized_pairs:
            if not _close(float(arr.sum()), total):
                raise self.violation(
                    f"{label} array sums to {float(arr.sum())!r} J, monitor charged {total!r} J",
                    context,
                )
        if np.any(subject.n_active > subject.n_clients) or np.any(subject.n_active < 0):
            raise self.violation("n_active outside [0, n_clients]", context)
        if np.any(subject.n_servers_down < 0):
            raise self.violation("n_servers_down is negative", context)


class BufferConservation(Checker):
    """Store-and-forward buffers never create or lose bytes.

    The tentpole invariant of the intermittent-connectivity subsystem: every
    byte ever offered to an edge buffer is delivered, dropped, or still
    resident — checked with exact integer arithmetic, never a tolerance.
    Runs pass trivially when the result carries no ``buffer_report`` (no
    outage schedule configured).
    """

    name = "buffer-conservation"
    contract = "offered bytes == delivered + dropped + resident (exact integers)"

    _COUNTERS = (
        "offered_bytes",
        "delivered_bytes",
        "dropped_bytes",
        "resident_bytes",
        "offered_payloads",
        "delivered_payloads",
        "dropped_payloads",
        "resident_payloads",
        "blocked_payloads",
    )

    def check(self, subject: Any, context: Dict[str, Any]) -> None:
        report = getattr(subject, "buffer_report", None)
        if report is None:
            return
        for label in self._COUNTERS:
            value = getattr(report, label)
            if value < 0:
                raise self.violation(f"{label} is negative ({value})", context)
        if not report.conserves:
            raise self.violation(
                f"offered {report.offered_bytes} B != delivered {report.delivered_bytes}"
                f" + dropped {report.dropped_bytes}"
                f" + resident {report.resident_bytes} B",
                context,
            )
        partition = (
            report.delivered_payloads + report.dropped_payloads + report.resident_payloads
        )
        if report.offered_payloads != partition:
            raise self.violation(
                f"payload counters partition to {partition}, "
                f"{report.offered_payloads} offered",
                context,
            )
        if report.blocked_payloads > report.dropped_payloads:
            raise self.violation(
                f"blocked payloads ({report.blocked_payloads}) exceed dropped "
                f"({report.dropped_payloads}) — blocked must count as dropped",
                context,
            )
        if len(report.delays_s) != report.delivered_payloads:
            raise self.violation(
                f"{len(report.delays_s)} recorded delays for "
                f"{report.delivered_payloads} delivered payloads",
                context,
            )
        for delay in report.delays_s:
            if not math.isfinite(delay) or delay < 0:
                raise self.violation(
                    f"store-and-forward delay {delay!r} is negative or non-finite",
                    context,
                )


class ServeConservation(Checker):
    """The serving layer's request partition: nothing offered is lost.

    Every non-health request an :class:`~repro.serve.engine.
    OrchestrationEngine` accepts lands in exactly one of three ledgers —
    served (an ``ok`` response), shed (deterministic overload rejection,
    503 over HTTP) or errored (a structured engine error) — checked with
    exact integer arithmetic.  The subject is anything exposing the four
    counters (the engine itself, or a report-shaped stand-in).
    """

    name = "serve-conservation"
    contract = "offered requests == served + shed + errored (exact integers)"

    def check(self, subject: Any, context: Dict[str, Any]) -> None:
        offered = int(getattr(subject, "n_offered"))
        served = int(getattr(subject, "n_served"))
        shed = int(getattr(subject, "n_shed"))
        errored = int(getattr(subject, "n_errored"))
        for label, value in (
            ("n_offered", offered), ("n_served", served),
            ("n_shed", shed), ("n_errored", errored),
        ):
            if value < 0:
                raise self.violation(f"{label} is negative ({value})", context)
        if offered != served + shed + errored:
            raise self.violation(
                f"offered {offered} != served {served} + shed {shed} "
                f"+ errored {errored}",
                context,
                n_offered=offered, n_served=served, n_shed=shed, n_errored=errored,
            )


class FleetCountsConsistent(Checker):
    """Scalar sanity for the analytic single-cycle result."""

    name = "fleet-counts"
    contract = "0 <= active <= initial clients; energies finite and non-negative"

    def check(self, subject: Any, context: Dict[str, Any]) -> None:
        if not 0 <= subject.n_clients_active <= subject.n_clients_initial:
            raise self.violation(
                f"active clients {subject.n_clients_active} outside "
                f"[0, {subject.n_clients_initial}]",
                context,
            )
        for label in ("edge_energy_j", "server_energy_j", "total_energy_j"):
            value = getattr(subject, label)
            if not math.isfinite(value) or value < 0:
                raise self.violation(f"{label} is {value!r}", context)
        scenario = context.get("scenario")
        if scenario is not None:
            expected_edge = subject.n_clients_active * scenario.client.cycle_energy
            if not _close(subject.edge_energy_j, expected_edge):
                raise self.violation(
                    f"edge energy {subject.edge_energy_j!r} J != active clients x cycle "
                    f"energy {expected_edge!r} J",
                    context,
                )


#: Catalog rendered into docs/TESTING.md — every checker the subsystem ships.
def default_checkers() -> Dict[str, Checker]:
    """name -> checker instance, for introspection and documentation."""
    checkers = [
        LedgerConservation(),
        EdgeLedgerMatchesClient(),
        ServerLedgerMatchesAnalytic(),
        SlotOccupancyBound(),
        CohortPartition(),
        ClockMonotonicity(),
        AvailabilityBounds(),
        FaultyArraysConsistent(),
        BufferConservation(),
        FleetCountsConsistent(),
    ]
    return {c.name: c for c in checkers}


# ---------------------------------------------------------------------------
# per-path entry points (what the simulators call under validate=True)
# ---------------------------------------------------------------------------


def validate_fleet_result(result, scenario=None, allocation=None, context=None) -> None:
    """Invariants of one analytic :func:`repro.core.simulate.simulate_fleet` cycle."""
    ctx = {"path": "simulate_fleet", "n_clients": result.n_clients_initial}
    ctx.update(context or {})
    ctx.setdefault("scenario", scenario)
    ctx.setdefault("allocation", allocation)
    ctx.setdefault("n_allocated", result.n_clients_active if allocation is not None else None)
    run_checkers(result, [FleetCountsConsistent(), SlotOccupancyBound()], ctx)


def validate_des_run(
    result,
    scenario=None,
    engine=None,
    allocation=None,
    devices=(),
    losses=None,
    sizing_extra_s: float = 0.0,
    context=None,
) -> None:
    """Invariants of an ideal :func:`repro.core.dessim.run_des_fleet` run."""
    ctx = {"path": "run_des_fleet", "n_clients": result.n_clients, "n_cycles": result.n_cycles}
    ctx.update(context or {})
    ctx.setdefault("scenario", scenario)
    ctx.setdefault("engine", engine)
    ctx.setdefault("allocation", allocation)
    ctx.setdefault("devices", tuple(devices))
    ctx.setdefault("losses", losses)
    ctx.setdefault("sizing_extra_s", sizing_extra_s)
    ctx.setdefault("n_allocated", result.n_clients if allocation is not None else None)
    checkers = [
        ClockMonotonicity(),
        LedgerConservation("client_accounts"),
        LedgerConservation("server_accounts"),
        CohortPartition(),
        SlotOccupancyBound(),
        EdgeLedgerMatchesClient(),
        ServerLedgerMatchesAnalytic(),
    ]
    run_checkers(result, checkers, ctx)


def validate_faulty_fleet_result(result, context=None) -> None:
    """Invariants of an analytic :func:`repro.faults.fleetsim.run_faulty_fleet` run."""
    ctx = {
        "path": "run_faulty_fleet",
        "n_clients": result.n_clients,
        "n_cycles": result.n_cycles,
        "expected_cycles": result.n_clients * result.n_cycles,
    }
    ctx.update(context or {})
    run_checkers(
        result, [FaultyArraysConsistent(), AvailabilityBounds(), BufferConservation()], ctx
    )


def validate_des_faulty_run(result, engine=None, allocation=None, devices=(), context=None) -> None:
    """Invariants of a :func:`repro.faults.desfaults.run_des_faulty_fleet` run."""
    ctx = {
        "path": "run_des_faulty_fleet",
        "n_clients": result.n_clients,
        "n_cycles": result.n_cycles,
        "expected_cycles": result.n_clients * result.n_cycles,
    }
    ctx.update(context or {})
    ctx.setdefault("engine", engine)
    ctx.setdefault("allocation", allocation)
    ctx.setdefault("devices", tuple(devices))
    ctx.setdefault("n_allocated", result.n_clients if allocation is not None else None)
    checkers = [
        ClockMonotonicity(),
        LedgerConservation("client_accounts"),
        LedgerConservation("server_accounts"),
        CohortPartition(),
        SlotOccupancyBound(),
        AvailabilityBounds(),
        BufferConservation(),
    ]
    run_checkers(result, checkers, ctx)


def validate_sweep_result(
    sweep,
    scenario,
    period,
    losses=None,
    max_parallel=None,
    n_samples: int = 5,
    context=None,
) -> None:
    """Invariants of a vectorized sweep, cross-checked against the simulator.

    Array-level sanity always runs; when the sweep is deterministic (no loss
    model C) a handful of grid points are replayed through
    :func:`repro.core.simulate.simulate_fleet` and reconciled exactly —
    the closed-form fast path may never drift from the object-level model.
    """
    from repro.core.simulate import simulate_fleet

    ctx = {"path": "sweep_clients", "scenario": scenario.name}
    ctx.update(context or {})
    note_check()
    n = np.asarray(sweep.n_clients)
    for label in ("edge_energy_j", "server_energy_j", "n_active", "n_servers"):
        arr = np.asarray(getattr(sweep, label), dtype=float)
        if not np.all(np.isfinite(arr)) or np.any(arr < 0):
            raise InvariantViolation(
                "sweep-sanity", f"{label} holds non-finite or negative entries", ctx
            )
    if np.any(np.asarray(sweep.n_active) > n):
        raise InvariantViolation("sweep-sanity", "n_active exceeds n_clients", ctx)

    stochastic = losses is not None and losses.client_loss is not None
    if stochastic or len(n) == 0:
        return
    note_check()
    indices = sorted({0, len(n) - 1, len(n) // 2, len(n) // 4, (3 * len(n)) // 4})[:n_samples]
    for i in indices:
        point = simulate_fleet(
            int(n[i]), scenario, period=period, losses=losses, max_parallel=max_parallel
        )
        for label, measured in (
            ("edge_energy_j", float(sweep.edge_energy_j[i])),
            ("server_energy_j", float(sweep.server_energy_j[i])),
        ):
            expected = getattr(point, label)
            if not _close(measured, expected):
                raise InvariantViolation(
                    "sweep-cross-check",
                    f"{label} at n={int(n[i])}: sweep says {measured!r} J, "
                    f"simulate_fleet says {expected!r} J",
                    ctx,
                )
        if int(sweep.n_servers[i]) != point.n_servers:
            raise InvariantViolation(
                "sweep-cross-check",
                f"n_servers at n={int(n[i])}: sweep says {int(sweep.n_servers[i])}, "
                f"simulate_fleet says {point.n_servers}",
                ctx,
            )


def check_monotone_nonincreasing(values, invariant: str = "monotone-availability", context=None) -> None:
    """Raise unless ``values`` is non-increasing (e.g. availability vs fault rate)."""
    arr = np.asarray(list(values), dtype=float)
    note_check()
    if np.any(np.diff(arr) > 1e-12):
        i = int(np.argmax(np.diff(arr) > 1e-12))
        raise InvariantViolation(
            invariant,
            f"sequence increases at index {i}: {arr[i]!r} -> {arr[i + 1]!r}",
            dict(context or {}),
        )


__all__ = [
    "Checker",
    "run_checkers",
    "default_checkers",
    "battery_delta",
    "LedgerConservation",
    "EdgeLedgerMatchesClient",
    "ServerLedgerMatchesAnalytic",
    "SlotOccupancyBound",
    "CohortPartition",
    "ClockMonotonicity",
    "AvailabilityBounds",
    "FaultyArraysConsistent",
    "ServeConservation",
    "FleetCountsConsistent",
    "validate_fleet_result",
    "validate_des_run",
    "validate_faulty_fleet_result",
    "validate_des_faulty_run",
    "validate_sweep_result",
    "check_monotone_nonincreasing",
    "REL_TOL",
]
