"""Command-line entry point: ``repro-exp [ids...]`` runs experiments.

Examples
--------
``repro-exp --list``            list experiment ids
``repro-exp fig3 table1``       run two experiments
``repro-exp --all``             run everything (fig5 uses the fast backend)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.registry import experiment_ids, run_experiment

#: Experiments that accept a ``seed`` keyword.
_SEEDABLE = {
    "fig2", "fig5", "fig8", "fig9",
    "ext-adaptive", "ext-contention", "ext-faults", "ext-outage", "ext-serve",
}

#: Experiments whose sweeps route through the chunked parallel runner
#: (:mod:`repro.core.parallel`) and accept a ``workers`` keyword.
_PARALLEL = {"fig7", "ext-contention", "ext-faults", "ext-outage"}

#: Experiments that accept a ``checkpoint`` keyword (a
#: :class:`repro.resilience.checkpoint.RunCheckpoint`): their sweeps record
#: completed chunks durably and ``--resume`` skips them bit-identically.
_CHECKPOINTABLE = {"fig7", "ext-contention", "ext-faults", "ext-outage"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description="Reproduce tables and figures of the energy-aware precision-beekeeping paper.",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (see --list)")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument("--all", action="store_true", help="run every paper experiment")
    parser.add_argument(
        "--extensions", action="store_true",
        help="with --list/--all: include the future-work extension experiments",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the RNG seed where applicable")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for parallelizable sweeps (default: serial; "
        "results are seed-stable — identical for any worker count)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of tables; stdout carries "
        "only the JSON document (charts and diagnostics go to stderr)",
    )
    parser.add_argument(
        "--json-out", metavar="FILE", default=None,
        help="write the JSON document to FILE via a crash-safe atomic "
        "replace (tmp + fsync + rename) instead of stdout; implies --json",
    )
    parser.add_argument("--plot", action="store_true", help="also draw the figure's curves as an ASCII chart")
    parser.add_argument(
        "--metrics", action="store_true",
        help="collect observability metrics and the per-phase energy ledger "
        "during the runs (see docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="collect sim-clock spans during the runs (see docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--obs-out", metavar="FILE", default=None,
        help="write the versioned observability snapshot to FILE "
        "(default: stderr); implies --metrics --trace",
    )
    parser.add_argument(
        "--no-series", action="store_true", help="with --json: omit the (large) series arrays"
    )
    parser.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="persist sweep progress to FILE (atomic, digest-protected; see "
        "docs/RESILIENCE.md); requires exactly one checkpointable experiment "
        f"id ({', '.join(sorted(_CHECKPOINTABLE))})",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, metavar="N", default=1,
        help="persist after every N completed sweep chunks (default: 1)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="with --checkpoint: load FILE and skip every chunk already "
        "recorded there; the resumed run is bit-identical to an "
        "uninterrupted one (stale schema or foreign run_key is refused)",
    )
    parser.add_argument(
        "--chaos-abort-after-saves", type=int, metavar="N", default=None,
        help="chaos hook: simulate a crash immediately after the N-th "
        "checkpoint save (used by repro-chaos and the resume golden case)",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="run every simulation invariant checker during the experiments "
        "and validate the output schema (see docs/TESTING.md); "
        "reports the number of checks that ran",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.json_out is not None:
        args.json = True
    if args.list:
        for eid in experiment_ids(include_extensions=args.extensions):
            print(eid)
        return 0
    ids = experiment_ids(include_extensions=args.extensions) if args.all else args.ids
    if not ids:
        build_parser().print_help()
        return 2
    known = set(experiment_ids(include_extensions=True))
    unknown = [i for i in ids if i not in known]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.resume and args.checkpoint is None:
        print("--resume requires --checkpoint FILE", file=sys.stderr)
        return 2
    if args.checkpoint_every < 1:
        print("--checkpoint-every must be >= 1", file=sys.stderr)
        return 2
    if args.checkpoint is not None:
        ckpt_ids = [i for i in ids if i in _CHECKPOINTABLE]
        if len(ids) != 1 or not ckpt_ids:
            print(
                "--checkpoint requires exactly one checkpointable experiment id "
                f"({', '.join(sorted(_CHECKPOINTABLE))}); got: {', '.join(ids)}",
                file=sys.stderr,
            )
            return 2
    from contextlib import ExitStack

    stack = ExitStack()
    if args.validate:
        from repro.validate import (
            check_experiment_result,
            checks_run,
            reset_check_count,
            validation,
        )

        stack.enter_context(validation(True))
        reset_check_count()
    obs = None
    if args.metrics or args.trace or args.obs_out is not None:
        from repro.obs import Obs, dump_snapshot, observing

        obs = Obs()
        stack.enter_context(observing(obs))
    from repro.resilience.errors import CheckpointError, InterruptedRun

    json_out = []
    for eid in ids:
        kwargs = {}
        if args.seed is not None and eid in _SEEDABLE:
            kwargs["seed"] = args.seed
        if args.workers is not None and eid in _PARALLEL:
            kwargs["workers"] = args.workers
        if args.checkpoint is not None and eid in _CHECKPOINTABLE:
            from repro.resilience.checkpoint import (
                CheckpointPolicy,
                RunCheckpoint,
                run_key,
            )

            # The run key binds the checkpoint to the experiment identity:
            # id + seed (never worker count — results are seed-stable, so a
            # resume may legally use a different --workers).
            key = run_key(eid, kwargs.get("seed"))
            try:
                kwargs["checkpoint"] = RunCheckpoint(
                    args.checkpoint,
                    run_key=key,
                    policy=CheckpointPolicy(every_units=args.checkpoint_every),
                    resume=args.resume,
                    abort_after_saves=args.chaos_abort_after_saves,
                )
            except CheckpointError as exc:
                print(f"checkpoint error: {exc}", file=sys.stderr)
                return 3
            if args.resume and kwargs["checkpoint"].resumed:
                print(f"resuming from checkpoint {args.checkpoint}", file=sys.stderr)
        try:
            result = run_experiment(eid, **kwargs)
        except InterruptedRun as exc:
            print(f"interrupted: {exc}", file=sys.stderr)
            print(exc.resume_hint(), file=sys.stderr)
            return 130
        except CheckpointError as exc:
            print(f"checkpoint error: {exc}", file=sys.stderr)
            return 3
        if args.validate:
            check_experiment_result(result, include_series=not args.no_series)
        chart = None
        if args.plot:
            from repro.util.asciiplot import plot_experiment

            chart = plot_experiment(result)
        if args.json:
            json_out.append(result.to_dict(include_series=not args.no_series))
            # --json wins: stdout stays a single parseable JSON document,
            # so the chart goes to stderr instead of interleaving.
            if chart:
                print(chart, file=sys.stderr)
                print(file=sys.stderr)
        else:
            print(result.render())
            if chart:
                print()
                print(chart)
            print()
    if args.json:
        import json

        if args.json_out is not None:
            from repro.util.atomic import atomic_write_json

            atomic_write_json(args.json_out, json_out)
            print(f"JSON results written to {args.json_out}", file=sys.stderr)
        else:
            print(json.dumps(json_out, indent=2))
    stack.close()
    if obs is not None:
        extra = {"ids": list(ids)}
        if args.seed is not None:
            extra["seed"] = args.seed
        if args.obs_out is not None:
            from repro.util.atomic import atomic_writer

            with atomic_writer(args.obs_out) as fh:
                dump_snapshot(obs, fh, extra)
            print(f"observability snapshot written to {args.obs_out}", file=sys.stderr)
        else:
            dump_snapshot(obs, sys.stderr, extra)
    if args.validate:
        n = checks_run()
        # Parallel worker processes run their own checkers but cannot report
        # into this process's counter (documented in docs/TESTING.md).
        print(f"validation: {n} invariant check(s) ran, 0 violations", file=sys.stderr)
        if n == 0:
            print("validation: WARNING — no checkers ran", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
