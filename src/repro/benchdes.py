"""``bench-desscale``: DES fleet-scaling benchmark (per-client vs cohort).

Times the event-driven fleet simulator at increasing fleet sizes on three
paths — the per-client replay (one generator per client), the exact
cohort-aggregated fast path (one process per distinct deterministic
context), and the SoA array kernel (:mod:`repro.core.dessim_array`, whole
wake-cohorts per NumPy step) — and writes a machine-readable report to
``BENCH_desscale.json``.

The committed ``BENCH_desscale.json`` at the repository root is the
acceptance artifact for the fast paths: it must show the cohort run of a
10 000-client edge+cloud fleet over 5 cycles at least 10× faster than the
per-client run, the array kernel at least 20× faster than per-client at
100 000 clients, and ``edge_energy_rel_diff == 0.0`` (bit-identity) on
every row.  ``docs/PERFORMANCE.md`` explains how to read the fields.

Usage::

    bench-desscale                      # defaults: 1k/10k/100k/1M, 5 cycles
    bench-desscale --sizes 1000,1000000 --out /tmp/bench.json
    python -m repro.benchdes --repeats 5
"""

from __future__ import annotations

import argparse
import platform
import sys
import time
from typing import List, Optional

from repro.core.dessim import run_des_fleet
from repro.core.dessim_array import run_des_fleet_array
from repro.core.routines import EDGE_CLOUD_SVM
from repro.core.simulate import simulate_fleet

#: Fleet sizes above this are timed on the cohort/array paths only: the
#: per-client path is O(clients) generators and would dominate the
#: benchmark's runtime without adding information (its per-client cost is
#: ~flat).  Capped rows carry ``"per_client_s": null, "capped": true`` so
#: downstream tooling need not infer the cap from the sizes.
PER_CLIENT_CAP = 100_000


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_size(n_clients: int, n_cycles: int, repeats: int) -> dict:
    """Time both DES paths at one fleet size and cross-check their energies."""
    scenario = EDGE_CLOUD_SVM
    row: dict = {"n_clients": n_clients, "n_cycles": n_cycles}

    cohort_res = run_des_fleet(n_clients, scenario, n_cycles=n_cycles, cohort=True)
    row["cohort_s"] = _best_of(
        lambda: run_des_fleet(n_clients, scenario, n_cycles=n_cycles, cohort=True), repeats
    )
    row["n_client_cohorts"] = len(cohort_res.client_accounts)
    row["n_server_cohorts"] = len(cohort_res.server_accounts)

    array_res = run_des_fleet_array(n_clients, scenario, n_cycles=n_cycles)
    row["per_client_array_s"] = _best_of(
        lambda: run_des_fleet_array(n_clients, scenario, n_cycles=n_cycles), repeats
    )

    if n_clients <= PER_CLIENT_CAP:
        per_res = run_des_fleet(n_clients, scenario, n_cycles=n_cycles, cohort=False)
        row["per_client_s"] = _best_of(
            lambda: run_des_fleet(n_clients, scenario, n_cycles=n_cycles, cohort=False),
            repeats,
        )
        row["capped"] = False
        row["speedup"] = row["per_client_s"] / row["cohort_s"]
        row["array_speedup"] = row["per_client_s"] / row["per_client_array_s"]
        per_edge = per_res.edge_energy_j
    else:
        row["per_client_s"] = None
        row["capped"] = True
        row["speedup"] = None
        row["array_speedup"] = None
        # Above the cap the per-client reference is reconstructed from the
        # cohort run: summing the expanded per-member view accumulates in
        # client-id order, exactly like the per-client result's
        # ``edge_energy_j``, so bit-identity stays checkable at every size.
        per_edge = sum(acc.total for acc in cohort_res.expand_client_accounts())

    denom = per_edge or 1.0
    row["edge_energy_rel_diff"] = abs(per_edge - cohort_res.edge_energy_j) / denom
    row["array_edge_rel_diff"] = abs(array_res.edge_energy_j - per_edge) / denom

    analytic = simulate_fleet(n_clients, scenario)
    row["edge_energy_j_cohort"] = cohort_res.edge_energy_j
    row["analytic_rel_diff"] = (
        abs(cohort_res.edge_energy_j / n_cycles - analytic.edge_energy_j)
        / analytic.edge_energy_j
    )
    return row


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bench-desscale",
        description="Benchmark the DES fleet simulator: per-client vs cohort fast path.",
    )
    parser.add_argument(
        "--sizes", default="1000,10000,100000,1000000",
        help="comma-separated fleet sizes (default: 1000,10000,100000,1000000)",
    )
    parser.add_argument("--cycles", type=int, default=5, help="simulated cycles per run (default 5)")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats, best-of (default 3)")
    parser.add_argument("--out", default="BENCH_desscale.json", help="output JSON path")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    results = []
    for n in sizes:
        row = bench_size(n, args.cycles, args.repeats)
        results.append(row)
        speed = f"{row['speedup']:.1f}x" if row["speedup"] is not None else "n/a"
        aspeed = f"{row['array_speedup']:.1f}x" if row["array_speedup"] is not None else "n/a"
        per = f"{row['per_client_s']:.3f}s" if row["per_client_s"] is not None else "capped"
        print(
            f"n={n:>8}: per-client {per:>9}  cohort {row['cohort_s']:.4f}s ({speed:>7})  "
            f"array {row['per_client_array_s']:.4f}s ({aspeed:>7})  "
            f"cohorts {row['n_client_cohorts']}+{row['n_server_cohorts']}"
        )
    report = {
        "benchmark": "des-scale",
        "scenario": "edge+cloud svm (paper §VI-B fleet)",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "per_client_cap": PER_CLIENT_CAP,
        "results": results,
    }
    from repro.util.atomic import atomic_write_json

    atomic_write_json(args.out, report)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
