"""Task sequences — ordered lists of (duration, power) steps.

A :class:`TaskSequence` is how routines move through the system: the edge
client's per-cycle actions, the server's per-slot actions.  It knows its
total duration/energy and renders itself as a paper-style table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.energy.power import TaskPower
from repro.util.tabulate import render_table

# Re-export: a Task *is* a TaskPower; the alias keeps core-level call sites
# readable without duplicating the class.
Task = TaskPower


@dataclass(frozen=True)
class TaskSequence:
    """Immutable ordered sequence of tasks."""

    name: str
    tasks: Tuple[TaskPower, ...]

    def __init__(self, name: str, tasks: Iterable[TaskPower]) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "tasks", tuple(tasks))
        if not self.tasks:
            raise ValueError(f"task sequence {name!r} is empty")

    def __iter__(self) -> Iterator[TaskPower]:
        return iter(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def total_duration(self) -> float:
        """Seconds across all tasks."""
        return sum(t.duration for t in self.tasks)

    @property
    def total_energy(self) -> float:
        """Joules across all tasks."""
        return sum(t.energy for t in self.tasks)

    def without(self, *names: str) -> "TaskSequence":
        """Copy omitting the named tasks."""
        keep = [t for t in self.tasks if t.name not in names]
        return TaskSequence(self.name, keep)

    def replace_task(self, name: str, new: TaskPower) -> "TaskSequence":
        """Copy with the named task swapped out."""
        found = False
        out: List[TaskPower] = []
        for t in self.tasks:
            if t.name == name:
                out.append(new)
                found = True
            else:
                out.append(t)
        if not found:
            known = ", ".join(t.name for t in self.tasks)
            raise KeyError(f"no task {name!r} in sequence {self.name!r} (tasks: {known})")
        return TaskSequence(self.name, out)

    def get(self, name: str) -> TaskPower:
        for t in self.tasks:
            if t.name == name:
                return t
        known = ", ".join(t.name for t in self.tasks)
        raise KeyError(f"no task {name!r} in sequence {self.name!r} (tasks: {known})")

    def render(self) -> str:
        """Paper-style table: task, energy, time."""
        rows = [(t.name, t.energy, t.duration) for t in self.tasks]
        rows.append(("Total", self.total_energy, self.total_duration))
        return render_table(
            ["Task", "Energy (J)", "Time (s)"],
            rows,
            formats=[None, ".1f", ".1f"],
            title=f"Scenario: {self.name}",
        )
