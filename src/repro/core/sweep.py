"""Vectorized fleet-size sweeps.

The figures of §VI evaluate hundreds of fleet sizes; doing that through
:func:`repro.core.simulate.simulate_fleet` would rebuild an allocation per
point.  For the paper's first-fit policy the occupancy profile of ``N``
clients is closed-form (``N // p`` full slots plus one remainder slot), so
the whole sweep reduces to NumPy array arithmetic with a ``p``-entry
marginal-energy lookup table.  A regression test pins this against the
object-level simulator point by point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.calibration import CYCLE_SECONDS
from repro.core.losses import LossConfig
from repro.core.routines import Scenario
from repro.core.simulate import occupied_slot_energy
from repro.util.rng import SeedLike, make_rng


@dataclass(frozen=True)
class SweepResult:
    """Array-valued outcome of a fleet-size sweep (aligned on ``n_clients``)."""

    scenario_name: str
    n_clients: np.ndarray  # initial fleet sizes
    n_active: np.ndarray
    n_servers: np.ndarray
    edge_energy_j: np.ndarray  # totals per cycle
    server_energy_j: np.ndarray
    slots_per_server: int
    max_parallel: int
    losses_description: str = "no loss"

    @property
    def n_lost(self) -> np.ndarray:
        return self.n_clients - self.n_active

    @property
    def total_energy_j(self) -> np.ndarray:
        return self.edge_energy_j + self.server_energy_j

    @property
    def edge_energy_per_client(self) -> np.ndarray:
        return _safe_div(self.edge_energy_j, self.n_clients)

    @property
    def server_energy_per_client(self) -> np.ndarray:
        return _safe_div(self.server_energy_j, self.n_clients)

    @property
    def total_energy_per_client(self) -> np.ndarray:
        return _safe_div(self.total_energy_j, self.n_clients)

    @property
    def server_capacity(self) -> int:
        return self.slots_per_server * self.max_parallel


def _safe_div(num: np.ndarray, den: np.ndarray) -> np.ndarray:
    den = np.asarray(den, dtype=float)
    out = np.zeros_like(np.asarray(num, dtype=float))
    mask = den > 0
    out[mask] = np.asarray(num, dtype=float)[mask] / den[mask]
    return out


def sweep_clients(
    n_clients,
    scenario: Scenario,
    period: float = CYCLE_SECONDS,
    losses: Optional[LossConfig] = None,
    max_parallel: Optional[int] = None,
    seed: SeedLike = None,
    validate: Optional[bool] = None,
    obs=None,
) -> SweepResult:
    """Evaluate ``scenario`` for every fleet size in ``n_clients``.

    Semantics match :func:`repro.core.simulate.simulate_fleet` with the
    default first-fit policy; loss model C draws one loss per fleet size
    from a single seeded stream.

    ``validate=True`` (or the global ``--validate`` switch when left at
    ``None``) checks array sanity and, for deterministic sweeps, replays
    sampled grid points through the object-level simulator and reconciles
    the energies exactly — the vectorized fast path may never drift from
    :func:`~repro.core.simulate.simulate_fleet`.

    ``obs=`` (or the ambient collector; see :mod:`repro.obs`) attributes the
    whole sweep's energy per phase — vectorized, via occupancy counts rather
    than per-point replay — and records one span with per-phase children.
    """
    n = np.asarray(n_clients, dtype=np.int64)
    if n.ndim != 1:
        raise ValueError(f"n_clients must be 1-D, got shape {np.shape(n_clients)}")
    if np.any(n < 0):
        raise ValueError("fleet sizes must be >= 0")
    losses = losses or LossConfig.none()
    if max_parallel is not None and not scenario.is_edge_only:
        scenario = scenario.with_max_parallel(max_parallel)

    # Client loss (C): draw in canonical (sorted-size) order and scatter
    # back, so each point's realized loss is a function of the seed and the
    # multiset of fleet sizes — permuting or reversing the grid yields the
    # same per-point energies.  Ascending grids (the common case) draw in
    # grid order, so their realizations are unchanged.
    if losses.client_loss is not None:
        rng = make_rng(seed)
        order = np.argsort(n, kind="stable")
        lost = np.empty_like(n)
        lost[order] = losses.client_loss.draw_lost_array(n[order], rng)
        active = n - lost
    else:
        active = n.copy()

    edge_energy = active.astype(float) * scenario.client.cycle_energy

    if scenario.is_edge_only:
        result = SweepResult(
            scenario_name=scenario.name,
            n_clients=n,
            n_active=active,
            n_servers=np.zeros_like(n),
            edge_energy_j=edge_energy,
            server_energy_j=np.zeros(n.shape, dtype=float),
            slots_per_server=0,
            max_parallel=0,
            losses_description=losses.describe(),
        )
    else:
        server = scenario.server
        assert server is not None
        p = server.max_parallel
        sizing_extra = losses.transfer.sizing_extra_s(p) if losses.transfer is not None else 0.0
        slots = server.slots_per_cycle(period, sizing_extra)
        capacity = slots * p
        slot_dur = server.slot_duration(sizing_extra)

        # Marginal energy lookup: marg[k] for occupancy k (index 0 unused).
        marg = np.zeros(p + 1)
        for k in range(1, p + 1):
            marg[k] = occupied_slot_energy(server, k, sizing_extra, losses) - server.idle_watts * slot_dur

        full_slots = active // p
        remainder = active % p
        servers = np.where(active > 0, -(-active // capacity), 0)  # ceil division

        server_energy = (
            servers.astype(float) * server.idle_watts * period
            + full_slots.astype(float) * marg[p]
            + marg[remainder]  # marg[0] == 0 covers the no-remainder case
        )
        result = SweepResult(
            scenario_name=scenario.name,
            n_clients=n,
            n_active=active,
            n_servers=servers,
            edge_energy_j=edge_energy,
            server_energy_j=server_energy,
            slots_per_server=slots,
            max_parallel=p,
            losses_description=losses.describe(),
        )

    from repro.obs.state import resolve as _resolve_obs

    obs_c = _resolve_obs(obs)
    if obs_c is not None:
        from repro.obs.attribution import (
            attribute_client_cycle,
            attribute_server_cycle,
            record_run,
        )
        from repro.obs.ledger import PhaseLedger

        obs_c.metrics.counter("sweep.points").inc(int(n.size))
        obs_c.metrics.counter("sweep.clients_active").inc(int(active.sum()))
        local = PhaseLedger()
        attribute_client_cycle(local, scenario.client, weight=float(active.sum()))
        if not scenario.is_edge_only:
            # Vectorized attribution: every occupied slot at occupancy k
            # contributes the same marginal split, so counting slots per
            # occupancy reproduces the sweep's server energy term by term.
            local.add(
                "idle",
                float(result.n_servers.sum()) * server.idle_watts * period,
                float(result.n_servers.sum()) * period,
            )
            occupancy_counts = np.bincount(remainder, minlength=p + 1).astype(float)
            occupancy_counts[p] += float(full_slots.sum())
            single = PhaseLedger()
            for k in range(1, p + 1):
                if occupancy_counts[k]:
                    attribute_server_cycle(
                        single, server, [k], period=0.0,
                        sizing_extra_s=sizing_extra, losses=losses,
                        weight=occupancy_counts[k],
                    )
            local.absorb(single)
        local.note_total(float(result.total_energy_j.sum()))
        record_run(
            obs_c, "sweep", 0.0, period, local,
            scenario=scenario.name, n_points=int(n.size),
            max_clients=int(n.max()) if n.size else 0,
        )

    from repro.validate.state import resolve

    if resolve(validate):
        from repro.validate.invariants import validate_sweep_result

        validate_sweep_result(
            result,
            scenario,
            period,
            losses=losses,
            max_parallel=max_parallel,
            context={"seed": seed},
        )
    return result
