"""Chunked parallel sweep runner with seed-stable work splitting.

Experiment sweeps are embarrassingly parallel — one fleet simulation per
grid point — but only if two invariants hold:

1. **Seed stability.**  Every stochastic grid point must own a seed that is
   a pure function of the *point's identity* (labels), never of execution
   order, worker count, or chunk boundaries.  Points that derive their seed
   via :func:`repro.util.rng.derive_seed` (or receive a pre-drawn seed)
   produce bit-identical results serial or parallel, 1 worker or 16.
2. **Picklability.**  Workers are spawned processes, so the callable must
   be a module-level function and its arguments plain picklable data.

:func:`parallel_map` enforces the ergonomics: order-preserving results,
chunked dispatch (so tiny grid points amortize IPC), and a transparent
serial fallback when no pool can be spawned (restricted environments) or
``workers`` requests serial execution.  Exceptions raised by the function
itself are *not* swallowed — they propagate, exactly as in a list
comprehension.

Two execution engines share this front door:

* the **plain pool** (default): one ``ProcessPoolExecutor.map`` pass,
  minimal overhead, serial fallback on pool failure;
* the **supervised engine** (``supervise=True``, or implied by passing
  ``checkpoint``/``deadline_s``): :func:`repro.resilience.supervisor.
  supervised_map`, which adds crash/hang detection with bounded retries
  and durable per-chunk checkpointing.  Seed stability makes the two
  engines bit-identical.

Both engines handle Ctrl-C the same way: the pool is torn down cleanly
(terminate + join + kill — no orphaned workers) and a structured
:class:`repro.resilience.errors.InterruptedRun` is raised carrying the
last checkpoint path (``None`` without a checkpoint).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.util.rng import derive_seed

_T = TypeVar("_T")
_R = TypeVar("_R")


def auto_chunksize(n_items: int, workers: int) -> int:
    """Chunk so each worker sees ~4 chunks (load balance vs IPC overhead)."""
    if n_items <= 0 or workers <= 0:
        return 1
    return max(1, n_items // (workers * 4))


def seed_table(base: int, labels: Sequence) -> List[int]:
    """Pre-derive one seed per labelled grid point (seed-stable splitting).

    ``seed_table(seed, ["a", "b"]) == [derive_seed(seed, "a"),
    derive_seed(seed, "b")]`` — each entry depends only on ``(base,
    label)``, so attaching these to work items *before* distributing them
    makes results independent of worker count and chunking.
    """
    return [derive_seed(base, label) for label in labels]


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    supervise: bool = False,
    deadline_s: Optional[float] = None,
    max_retries: Optional[int] = None,
    checkpoint=None,
) -> List[_R]:
    """``[fn(x) for x in items]``, optionally fanned out over processes.

    Parameters
    ----------
    fn:
        A **module-level** function (workers unpickle it by qualified name).
    items:
        The work list; results come back in the same order.
    workers:
        ``None`` or ``<= 1`` → run serially in-process (no pool, no pickling
        requirements).  ``>= 2`` → a ``ProcessPoolExecutor`` with that many
        workers.
    chunksize:
        Items per dispatch unit; default :func:`auto_chunksize`.
    supervise:
        Route through :func:`repro.resilience.supervisor.supervised_map`:
        crashed/hung workers are detected and their chunks retried on a
        fresh pool (same derived seeds → bit-identical), bounded by
        ``max_retries``.  Implied by ``checkpoint`` or ``deadline_s``.
    deadline_s:
        Wall-clock budget per chunk; a chunk past it is treated as hung
        (supervised engine only).
    max_retries:
        Per-chunk retry budget after crashes/hangs (supervised engine only;
        default :data:`repro.resilience.supervisor.DEFAULT_MAX_RETRIES`).
    checkpoint:
        A :class:`repro.resilience.checkpoint.StageCheckpoint`; completed
        chunks become durable and are skipped on resume.

    Falls back to the serial path if the pool cannot be spawned or dies
    before completing (sandboxed environments without ``fork``/semaphores) —
    correctness never depends on the pool, only wall-clock does.
    """
    if supervise or checkpoint is not None or deadline_s is not None:
        from repro.resilience.supervisor import DEFAULT_MAX_RETRIES, supervised_map

        return supervised_map(
            fn,
            items,
            workers=workers,
            chunksize=chunksize,
            deadline_s=deadline_s,
            max_retries=DEFAULT_MAX_RETRIES if max_retries is None else max_retries,
            checkpoint=checkpoint,
        )

    work = list(items)
    if workers is None or workers <= 1 or len(work) <= 1:
        try:
            return [fn(x) for x in work]
        except KeyboardInterrupt:
            from repro.resilience.errors import InterruptedRun

            raise InterruptedRun(
                "interrupted by user", completed=0, total=len(work)
            ) from None
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    if chunksize is None:
        chunksize = auto_chunksize(len(work), workers)
    try:
        ex = ProcessPoolExecutor(max_workers=workers)
    except (OSError, PermissionError):
        return [fn(x) for x in work]
    try:
        out = list(ex.map(fn, work, chunksize=chunksize))
        ex.shutdown(wait=True)
        return out
    except (OSError, PermissionError, BrokenProcessPool):
        # No usable multiprocessing here — same answer, one process.
        from repro.resilience.supervisor import _kill_pool

        _kill_pool(ex)
        return [fn(x) for x in work]
    except KeyboardInterrupt:
        # Ctrl-C: a bare `with` block would hang waiting on running futures
        # and could strand workers.  Tear the pool down hard and surface a
        # structured interrupt instead of a raw KeyboardInterrupt.
        from repro.resilience.errors import InterruptedRun
        from repro.resilience.supervisor import _kill_pool

        _kill_pool(ex)
        raise InterruptedRun(
            "interrupted by user: workers terminated cleanly",
            completed=0,
            total=len(work),
        ) from None
    except BaseException:
        from repro.resilience.supervisor import _kill_pool

        _kill_pool(ex)
        raise


__all__ = ["auto_chunksize", "parallel_map", "seed_table"]
