"""Chunked parallel sweep runner with seed-stable work splitting.

Experiment sweeps are embarrassingly parallel — one fleet simulation per
grid point — but only if two invariants hold:

1. **Seed stability.**  Every stochastic grid point must own a seed that is
   a pure function of the *point's identity* (labels), never of execution
   order, worker count, or chunk boundaries.  Points that derive their seed
   via :func:`repro.util.rng.derive_seed` (or receive a pre-drawn seed)
   produce bit-identical results serial or parallel, 1 worker or 16.
2. **Picklability.**  Workers are spawned processes, so the callable must
   be a module-level function and its arguments plain picklable data.

:func:`parallel_map` enforces the ergonomics: order-preserving results,
chunked dispatch (so tiny grid points amortize IPC), and a transparent
serial fallback when no pool can be spawned (restricted environments) or
``workers`` requests serial execution.  Exceptions raised by the function
itself are *not* swallowed — they propagate, exactly as in a list
comprehension.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.util.rng import derive_seed

_T = TypeVar("_T")
_R = TypeVar("_R")


def auto_chunksize(n_items: int, workers: int) -> int:
    """Chunk so each worker sees ~4 chunks (load balance vs IPC overhead)."""
    if n_items <= 0 or workers <= 0:
        return 1
    return max(1, n_items // (workers * 4))


def seed_table(base: int, labels: Sequence) -> List[int]:
    """Pre-derive one seed per labelled grid point (seed-stable splitting).

    ``seed_table(seed, ["a", "b"]) == [derive_seed(seed, "a"),
    derive_seed(seed, "b")]`` — each entry depends only on ``(base,
    label)``, so attaching these to work items *before* distributing them
    makes results independent of worker count and chunking.
    """
    return [derive_seed(base, label) for label in labels]


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List[_R]:
    """``[fn(x) for x in items]``, optionally fanned out over processes.

    Parameters
    ----------
    fn:
        A **module-level** function (workers unpickle it by qualified name).
    items:
        The work list; results come back in the same order.
    workers:
        ``None`` or ``<= 1`` → run serially in-process (no pool, no pickling
        requirements).  ``>= 2`` → a ``ProcessPoolExecutor`` with that many
        workers.
    chunksize:
        Items per dispatch unit; default :func:`auto_chunksize`.

    Falls back to the serial path if the pool cannot be spawned or dies
    before completing (sandboxed environments without ``fork``/semaphores) —
    correctness never depends on the pool, only wall-clock does.
    """
    work = list(items)
    if workers is None or workers <= 1 or len(work) <= 1:
        return [fn(x) for x in work]
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    if chunksize is None:
        chunksize = auto_chunksize(len(work), workers)
    try:
        with ProcessPoolExecutor(max_workers=workers) as ex:
            return list(ex.map(fn, work, chunksize=chunksize))
    except (OSError, PermissionError, BrokenProcessPool):
        # No usable multiprocessing here — same answer, one process.
        return [fn(x) for x in work]


__all__ = ["auto_chunksize", "parallel_map", "seed_table"]
