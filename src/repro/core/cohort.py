"""Exact cohort aggregation for the event-driven fleet simulators.

The per-client DES spawns one Python generator per client, which caps
interactive runs at a few thousand clients.  But a fleet is massively
redundant: two clients with identical deterministic context — the same
scenario, the same wake offset, the same (empty) fault timetable, and no
consumption of per-client randomness — execute *bit-for-bit identical*
trajectories on their own devices.  Their ledgers are therefore equal
float by float, and simulating one representative while carrying a
multiplicity count is exact, not an approximation.

This module holds the grouping/expansion plumbing shared by
:mod:`repro.core.dessim` (ideal path: cohorts keyed on the wake offset)
and :mod:`repro.faults.desfaults` (faulty path: cohorts additionally
require a statically quiet context — no fault window can touch the client
or its home server, hence no retry-jitter draw can ever occur).

Exactness argument, in two parts (see also ``docs/PERFORMANCE.md``):

1. *Ledger level* — every charge a member device records is a function of
   (scenario constants, wake offset, event times), all identical within a
   cohort, so each member's per-category totals equal the representative's
   exactly.  This is what the property tests assert with ``==``.
2. *Aggregate level* — fleet totals are reported as
   ``sum(multiplicity * representative_total)``; each product is a single
   correctly-rounded float operation.  An expansion view
   (:func:`expand_accounts`) reproduces the per-client summation order
   when bit-identical aggregate sums are needed (e.g. cross-validation on
   small fleets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

from repro.energy.account import EnergyAccount


@dataclass(frozen=True)
class Cohort:
    """A set of entity ids sharing one deterministic execution context."""

    key: tuple
    member_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.member_ids:
            raise ValueError("a cohort must have at least one member")
        if list(self.member_ids) != sorted(set(self.member_ids)):
            raise ValueError("member_ids must be strictly increasing")

    @property
    def multiplicity(self) -> int:
        return len(self.member_ids)

    @property
    def representative(self) -> int:
        """The member whose trajectory is actually simulated (lowest id)."""
        return self.member_ids[0]


def group_cohorts(key_of: Mapping[int, Hashable]) -> List[Cohort]:
    """Group entity ids by equal keys; cohorts ordered by first member id.

    Keys are compared with ``==`` on the exact values (for float keys this
    means bit-equality for normal numbers), so members are grouped only
    when their contexts are literally identical.
    """
    groups: Dict[Hashable, List[int]] = {}
    for eid in sorted(key_of):
        groups.setdefault(key_of[eid], []).append(eid)
    cohorts = [
        Cohort(key=(key,) if not isinstance(key, tuple) else key, member_ids=tuple(ids))
        for key, ids in groups.items()
    ]
    cohorts.sort(key=lambda c: c.member_ids[0])
    return cohorts


def scale_account(account: EnergyAccount, multiplicity: int) -> EnergyAccount:
    """A new ledger with every category total/duration scaled ``×multiplicity``.

    Each scaled total is one correctly-rounded multiplication of the
    representative's total (exact for power-of-two multiplicities).
    """
    if multiplicity < 1:
        raise ValueError("multiplicity must be >= 1")
    out = EnergyAccount(owner=account.owner)
    for category, energy in account.breakdown().items():
        out.charge(category, energy * multiplicity, account.category_duration(category) * multiplicity)
    return out


def expand_accounts(
    accounts: Sequence[EnergyAccount],
    cohorts: Sequence[Cohort],
    n_entities: int,
) -> Tuple[EnergyAccount, ...]:
    """Per-entity view of cohort ledgers: entity ``i`` → its cohort's account.

    The returned tuple shares the representative account objects (no
    copies), so iterating it in id order reproduces the per-client run's
    summation order exactly — the keystone of the bit-for-bit
    cross-validation tests.
    """
    if len(accounts) != len(cohorts):
        raise ValueError("accounts and cohorts must be parallel sequences")
    out: List[EnergyAccount] = [None] * n_entities  # type: ignore[list-item]
    for account, cohort in zip(accounts, cohorts):
        for eid in cohort.member_ids:
            if eid < 0 or eid >= n_entities:
                raise ValueError(f"member id {eid} outside 0..{n_entities - 1}")
            if out[eid] is not None:
                raise ValueError(f"entity {eid} appears in two cohorts")
            out[eid] = account
    missing = [i for i, acc in enumerate(out) if acc is None]
    if missing:
        raise ValueError(f"entities without a cohort: {missing[:5]}{'...' if len(missing) > 5 else ''}")
    return tuple(out)


def weighted_total(accounts: Sequence[EnergyAccount], multiplicities: Sequence[int]) -> float:
    """``sum(m × account.total)`` — the fast aggregate over cohort ledgers."""
    return sum(m * acc.total for m, acc in zip(multiplicities, accounts))


def check_partition(member_id_groups: Sequence[Sequence[int]], n_entities: int) -> None:
    """Raise ``ValueError`` unless the id groups partition ``range(n_entities)``.

    Pure structural check (no account objects needed) — the invariant layer
    uses it to assert cohort exactness preconditions on any result that
    carries ``client_cohorts``/``server_cohorts``.
    """
    seen = set()
    for group in member_id_groups:
        for eid in group:
            if eid < 0 or eid >= n_entities:
                raise ValueError(f"member id {eid} outside 0..{n_entities - 1}")
            if eid in seen:
                raise ValueError(f"entity {eid} appears in two cohorts")
            seen.add(eid)
    if len(seen) != n_entities:
        missing = [i for i in range(n_entities) if i not in seen]
        raise ValueError(
            f"entities without a cohort: {missing[:5]}{'...' if len(missing) > 5 else ''}"
        )


__all__ = [
    "Cohort",
    "group_cohorts",
    "scale_account",
    "expand_accounts",
    "weighted_total",
    "check_partition",
]
