"""Cycle-level fleet simulation (§VI).

:func:`simulate_fleet` evaluates one (scenario, fleet size, loss
configuration) point: it applies client loss, allocates the surviving
clients to servers/slots, and totals edge and server energy for one cycle.
The per-slot energy math lives in :func:`server_cycle_energy` so the
vectorized sweep (:mod:`repro.core.sweep`) and the DES cross-validator
(:mod:`repro.core.dessim`) share exactly the same formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.allocator import Allocation, Allocator, FillingPolicy
from repro.core.calibration import CYCLE_SECONDS
from repro.core.losses import LossConfig
from repro.core.routines import Scenario
from repro.core.server import ServerProfile
from repro.obs.state import resolve as _resolve_obs
from repro.util.rng import SeedLike, make_rng
from repro.validate.state import resolve as _resolve_validate


def occupied_slot_energy(
    server: ServerProfile,
    occupancy: int,
    sizing_extra_s: float = 0.0,
    losses: Optional[LossConfig] = None,
) -> float:
    """Energy of one occupied slot over its window, loss-aware (joules).

    The slot *window* is sized for the worst case (loss B stretches it by
    ``extra × max_parallel``); the receive phase actually lasts
    ``transfer + extra × occupancy``.  Service inferences pipeline with the
    slot timeline on the server's compute complex, contributing their
    marginal energy over idle (see :meth:`ServerProfile.slot_energy`).
    Loss A multiplies the whole slot energy once occupancy crosses the
    saturation threshold.
    """
    losses = losses or LossConfig.none()
    if not 0 < occupancy <= server.max_parallel:
        raise ValueError(f"occupancy {occupancy} outside (0, {server.max_parallel}]")
    slot_dur = server.slot_duration(sizing_extra_s)
    actual_extra = losses.transfer.actual_extra_s(occupancy) if losses.transfer else 0.0
    t_rx = server.transfer_s + actual_extra
    active = (
        (server.receive_watts - server.idle_watts) * t_rx
        + occupancy * (server.service.energy - server.idle_watts * server.service.duration)
    )
    energy = server.idle_watts * slot_dur + active
    if losses.saturation is not None:
        mult = losses.saturation.multiplier(occupancy, server.max_parallel)
        base = energy if losses.saturation.base == "slot" else active
        energy += (mult - 1.0) * base
    return energy


def server_cycle_energy(
    server: ServerProfile,
    occupancies: Sequence[int],
    period: float = CYCLE_SECONDS,
    sizing_extra_s: float = 0.0,
    losses: Optional[LossConfig] = None,
) -> float:
    """One server's energy over one cycle given per-slot occupancies."""
    slot_dur = server.slot_duration(sizing_extra_s)
    total = server.idle_watts * period
    for k in occupancies:
        k = int(k)
        if k == 0:
            continue
        total += occupied_slot_energy(server, k, sizing_extra_s, losses) - server.idle_watts * slot_dur
    return total


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one simulated cycle at fleet scale.

    Per-client figures default to *initial* clients (the paper's Figure 8c
    convention: the x-axis shows the initial fleet even when clients are
    lost).
    """

    scenario_name: str
    n_clients_initial: int
    n_clients_active: int
    n_servers: int
    slots_per_server: int
    max_parallel: int
    period: float
    edge_energy_j: float
    server_energy_j: float
    losses_description: str = "no loss"

    @property
    def n_clients_lost(self) -> int:
        return self.n_clients_initial - self.n_clients_active

    @property
    def total_energy_j(self) -> float:
        return self.edge_energy_j + self.server_energy_j

    @property
    def edge_energy_per_client(self) -> float:
        return self.edge_energy_j / self.n_clients_initial if self.n_clients_initial else 0.0

    @property
    def server_energy_per_client(self) -> float:
        return self.server_energy_j / self.n_clients_initial if self.n_clients_initial else 0.0

    @property
    def total_energy_per_client(self) -> float:
        return self.total_energy_j / self.n_clients_initial if self.n_clients_initial else 0.0

    @property
    def total_energy_per_active_client(self) -> float:
        return self.total_energy_j / self.n_clients_active if self.n_clients_active else 0.0


def simulate_fleet(
    n_clients: int,
    scenario: Scenario,
    period: float = CYCLE_SECONDS,
    losses: Optional[LossConfig] = None,
    max_parallel: Optional[int] = None,
    policy: Optional[FillingPolicy] = None,
    seed: SeedLike = None,
    n_active: Optional[int] = None,
    validate: Optional[bool] = None,
    obs=None,
) -> FleetResult:
    """Simulate one cycle of ``n_clients`` running ``scenario``.

    Parameters
    ----------
    n_clients:
        Initial fleet size.
    scenario:
        One of the :mod:`repro.core.routines` scenarios (edge or edge+cloud).
    losses:
        Loss configuration (default: ideal).
    max_parallel:
        Override the server's per-slot admission cap (Figure 7's parameter).
    policy:
        Slot-filling policy (default: the paper's first-fit).
    seed:
        RNG seed for loss model C.
    n_active:
        Explicit surviving-client count.  Overrides the loss-C draw — the
        extension point through which the fault subsystem
        (:mod:`repro.faults`) drives dropout from its own crash processes
        while reusing the allocation and energy math unchanged.
    validate:
        Run the invariant checkers on the result (``None`` defers to the
        global switch flipped by ``repro-exp --validate``; see
        :mod:`repro.validate`).
    obs:
        Observability collector (``None`` defers to the ambient collector
        installed by ``repro-exp --metrics/--trace``; see :mod:`repro.obs`).
        When resolved to a collector, the run's energy is attributed per
        phase and a span tree is recorded; when not, instrumentation costs
        one identity check.
    """
    if n_clients < 0:
        raise ValueError("n_clients must be >= 0")
    losses = losses or LossConfig.none()
    if max_parallel is not None and not scenario.is_edge_only:
        scenario = scenario.with_max_parallel(max_parallel)

    rng = make_rng(seed)
    if n_active is not None:
        if not 0 <= n_active <= n_clients:
            raise ValueError(f"n_active {n_active} outside [0, {n_clients}]")
        active = n_active
    else:
        active = n_clients
        if losses.client_loss is not None:
            active = n_clients - losses.client_loss.draw_lost(n_clients, rng)

    edge_energy = active * scenario.client.cycle_energy

    if scenario.is_edge_only:
        result = FleetResult(
            scenario_name=scenario.name,
            n_clients_initial=n_clients,
            n_clients_active=active,
            n_servers=0,
            slots_per_server=0,
            max_parallel=0,
            period=period,
            edge_energy_j=edge_energy,
            server_energy_j=0.0,
            losses_description=losses.describe(),
        )
        allocation = None
        sizing_extra = 0.0
    else:
        server = scenario.server
        assert server is not None
        allocator = Allocator(server, period=period, losses=losses, policy=policy)
        allocation = allocator.allocate(active)
        server_energy = sum(
            server_cycle_energy(
                server,
                assignment.occupancies,
                period=period,
                sizing_extra_s=allocator.sizing_extra_s,
                losses=losses,
            )
            for assignment in allocation.servers
        )
        result = FleetResult(
            scenario_name=scenario.name,
            n_clients_initial=n_clients,
            n_clients_active=active,
            n_servers=allocation.n_servers,
            slots_per_server=allocator.plan.slots_per_cycle,
            max_parallel=server.max_parallel,
            period=period,
            edge_energy_j=edge_energy,
            server_energy_j=server_energy,
            losses_description=losses.describe(),
        )
        sizing_extra = allocator.sizing_extra_s

    obs = _resolve_obs(obs)
    if obs is not None:
        from repro.obs.attribution import (
            attribute_client_cycle,
            attribute_server_cycle,
            record_run,
        )
        from repro.obs.ledger import PhaseLedger

        obs.metrics.counter("fleet.runs").inc()
        obs.metrics.counter("fleet.clients_active").inc(active)
        obs.metrics.counter("fleet.clients_lost").inc(n_clients - active)
        obs.metrics.gauge("fleet.n_servers").set(result.n_servers)
        local = PhaseLedger()
        attribute_client_cycle(local, scenario.client, weight=active)
        if allocation is not None:
            for assignment in allocation.servers:
                attribute_server_cycle(
                    local,
                    scenario.server,
                    assignment.occupancies,
                    period=period,
                    sizing_extra_s=sizing_extra,
                    losses=losses,
                )
        local.note_total(result.total_energy_j)
        record_run(
            obs, "fleet_cycle", 0.0, period, local,
            scenario=scenario.name, n_clients=n_clients, n_active=active,
        )

    if _resolve_validate(validate):
        from repro.validate.invariants import validate_fleet_result

        validate_fleet_result(
            result,
            scenario=scenario,
            allocation=allocation,
            context={"scenario_name": scenario.name, "seed": seed},
        )
    return result


def simulate_allocation_energy(
    allocation: Allocation,
    server: ServerProfile,
    period: float = CYCLE_SECONDS,
    sizing_extra_s: float = 0.0,
    losses: Optional[LossConfig] = None,
) -> float:
    """Server energy of an explicit :class:`Allocation` (used by ablations)."""
    return sum(
        server_cycle_energy(server, a.occupancies, period, sizing_extra_s, losses)
        for a in allocation.servers
    )
