"""Adaptive duty-cycle controller — the paper's future-work "intelligence".

The deployed system uses a fixed wake-up period; the paper's conclusion
proposes letting the beehive "tune its parameters and choose between a set
of scenarios".  :class:`AdaptiveDutyCycle` implements the natural controller:
pick, each cycle, the shortest wake-up period from an allowed menu whose
projected energy balance keeps the battery above a reserve, using a harvest
forecast and the §IV consumption model.

:func:`simulate_adaptive_week` runs the controller against the full energy
chain on synthetic weather and reports uptime/data-yield against fixed
schedules — the experiment behind ``examples/adaptive_hive.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.calibration import PAPER, PaperConstants
from repro.core.client import average_power_for_period
from repro.devices.specs import RASPBERRY_PI_ZERO_WH
from repro.energy.battery import Battery
from repro.energy.converter import DCDCConverter
from repro.energy.forecast import DiurnalProfileForecaster
from repro.energy.harvest import EnergyNode
from repro.energy.solar import SolarPanel
from repro.sensing.weather import WeatherModel
from repro.util.rng import SeedLike
from repro.util.units import DAY, HOUR
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class DutyCyclePolicy:
    """Controller configuration.

    Attributes
    ----------
    periods:
        Allowed wake-up periods (s), fastest first (the §IV menu by default).
    reserve_soc:
        The controller keeps the projected battery SoC above this reserve at
        the evaluation horizon.
    horizon_s:
        Look-ahead for the energy-balance projection (default: through the
        next night, 16 h).
    baseline_watts:
        Always-on draw besides the duty-cycled Pi (the Pi Zero monitor).
    """

    periods: Tuple[float, ...] = tuple(p for p in PAPER.wakeup_periods_s)
    reserve_soc: float = 0.15
    horizon_s: float = 16 * HOUR
    baseline_watts: float = RASPBERRY_PI_ZERO_WH.power["idle"]
    #: Fraction of the forecast harvest the controller trusts — EWMA profiles
    #: overestimate on sunny-to-overcast transitions, and an optimistic
    #: projection is what produces night outages.
    forecast_discount: float = 0.6

    def __post_init__(self) -> None:
        if not self.periods:
            raise ValueError("periods menu is empty")
        if sorted(self.periods) != list(self.periods):
            raise ValueError("periods must be sorted fastest (smallest) first")
        check_in_range(self.reserve_soc, "reserve_soc", 0.0, 1.0)
        check_positive(self.horizon_s, "horizon_s")
        check_in_range(self.forecast_discount, "forecast_discount", 0.0, 1.0)


class AdaptiveDutyCycle:
    """Energy-aware wake-up period selector.

    Each decision: project the stored-energy *trajectory* over the horizon
    (hourly checkpoints, discounted forecast harvest minus demand) and choose
    the fastest period whose projected **minimum** stays above the reserve.
    Checking the trajectory rather than the endpoint matters: a horizon that
    reaches past sunrise would otherwise let tomorrow's harvest mask a
    pre-dawn brownout.  If no period qualifies, the controller falls back to
    the slowest (it never switches the node off — the hardware watchdog
    still needs power).
    """

    def __init__(
        self,
        policy: DutyCyclePolicy = DutyCyclePolicy(),
        constants: PaperConstants = PAPER,
    ) -> None:
        self.policy = policy
        self.constants = constants
        self._demand = {
            p: average_power_for_period(p, constants) + policy.baseline_watts
            for p in policy.periods
        }

    def choose_period(
        self,
        now: float,
        battery: Battery,
        forecaster: DiurnalProfileForecaster,
    ) -> float:
        """Pick the wake-up period for the next control interval."""
        reserve_j = self.policy.reserve_soc * battery.capacity
        # Hourly checkpoints across the horizon; incremental harvest per step.
        n_steps = max(int(self.policy.horizon_s / HOUR), 1)
        step = self.policy.horizon_s / n_steps
        harvest_steps = np.zeros(n_steps)
        if forecaster.trained:
            for i in range(n_steps):
                harvest_steps[i] = forecaster.predict_energy(now + i * step, now + (i + 1) * step)
            harvest_steps *= self.policy.forecast_discount * battery.charge_efficiency
        for period in self.policy.periods:  # fastest first
            demand_step = self._demand[period] * step
            # Walk the trajectory; stored energy cannot exceed capacity, so
            # optimistic surpluses are clipped before the next night draws.
            level = battery.stored
            ok = True
            for delta in harvest_steps - demand_step:
                level = min(level + delta, battery.capacity)
                if level < reserve_j:
                    ok = False
                    break
            if ok:
                return period
        return self.policy.periods[-1]


@dataclass
class AdaptiveRunResult:
    """Outcome of an adaptive (or fixed) duty-cycle week."""

    times: np.ndarray
    periods: np.ndarray  # chosen wake-up period per step
    soc: np.ndarray
    available: np.ndarray
    cycles_completed: float

    @property
    def uptime_fraction(self) -> float:
        return float(np.mean(self.available))

    @property
    def mean_period(self) -> float:
        return float(np.mean(self.periods))


def simulate_adaptive_week(
    controller: Optional[AdaptiveDutyCycle] = None,
    fixed_period: Optional[float] = None,
    cloudiness: float = 0.5,
    duration: float = 7 * DAY,
    step: float = 300.0,
    battery_scale: float = 0.25,
    initial_soc: float = 0.6,
    seed: SeedLike = 11,
    constants: PaperConstants = PAPER,
) -> AdaptiveRunResult:
    """Run one smart beehive for a week, adaptively or at a fixed period.

    Exactly one of ``controller`` / ``fixed_period`` must be given.  Returns
    the SoC/availability traces, the chosen period at every step, and the
    number of data-collection cycles completed (the yield metric).
    """
    if (controller is None) == (fixed_period is None):
        raise ValueError("provide exactly one of controller or fixed_period")
    check_positive(duration, "duration")
    check_positive(step, "step")

    weather = WeatherModel(cloudiness=cloudiness).generate(duration=duration, step=step, seed=seed)
    node = EnergyNode(
        panel=SolarPanel(),
        converter=DCDCConverter(),
        battery=Battery(capacity_joules=Battery.DEFAULT_CAPACITY * battery_scale, soc=initial_soc),
    )
    forecaster = DiurnalProfileForecaster()
    policy = controller.policy if controller else DutyCyclePolicy()
    baseline = policy.baseline_watts if controller else DutyCyclePolicy().baseline_watts

    n = int(np.ceil(duration / step))
    times = np.arange(n) * step
    periods = np.empty(n)
    soc = np.empty(n)
    available = np.empty(n, dtype=bool)
    cycles = 0.0
    # Re-decide once per control interval (hourly) to mimic a real scheduler.
    decide_every = max(int(HOUR / step), 1)
    period = fixed_period if fixed_period is not None else policy.periods[-1]

    for i, t in enumerate(times):
        irr = float(weather.irradiance.values[i])
        panel_w = node.panel.output_watts(irr)
        harvest_w = node.converter.convert(panel_w)
        forecaster.observe(float(t), harvest_w)

        if controller is not None and i % decide_every == 0:
            period = controller.choose_period(float(t), node.battery, forecaster)
        periods[i] = period

        avail = node.battery.can_supply
        load_w = baseline + (average_power_for_period(period, constants) if avail else 0.0)
        direct = min(harvest_w, load_w)
        surplus = (harvest_w - direct) * step
        deficit = (load_w - direct) * step
        if surplus > 0:
            node.battery.charge(surplus)
        delivered = direct * step
        if deficit > 0:
            delivered += node.battery.discharge(deficit)
        ok = avail and delivered >= load_w * step - 1e-9
        available[i] = ok
        soc[i] = node.battery.soc
        if ok:
            cycles += step / period

    return AdaptiveRunResult(
        times=times, periods=periods, soc=soc, available=available, cycles_completed=cycles
    )
