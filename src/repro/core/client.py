"""Client (smart beehive) model.

A client is described by its sleep power, its per-cycle active task sequence
and its wake-up period.  §IV's Figure 3 (average power vs wake-up
frequency) is :func:`average_power_for_period` evaluated across periods; the
§VI simulation charges :func:`client_cycle_energy` per client per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.calibration import PAPER, PaperConstants
from repro.core.tasks import TaskSequence
from repro.energy.power import TaskPower
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class ClientProfile:
    """Energy profile of one edge client.

    Attributes
    ----------
    name:
        Profile identifier.
    active_tasks:
        The tasks executed each wake-up (sleep excluded — it is the residual).
    sleep_watts:
        Draw while waiting for the next wake-up call.
    period:
        Seconds between consecutive wake-ups.
    wake_surge_j:
        Per-wake-up energy not captured inside the task windows (§IV boot
        surge; see :class:`repro.core.calibration.PaperConstants`).
    """

    name: str
    active_tasks: TaskSequence
    sleep_watts: float
    period: float
    wake_surge_j: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative(self.sleep_watts, "sleep_watts")
        check_positive(self.period, "period")
        check_non_negative(self.wake_surge_j, "wake_surge_j")
        if self.active_tasks.total_duration > self.period:
            raise ValueError(
                f"client {self.name!r}: active tasks take {self.active_tasks.total_duration:.1f} s "
                f"but the period is only {self.period:.1f} s"
            )

    @property
    def active_duration(self) -> float:
        return self.active_tasks.total_duration

    @property
    def sleep_duration(self) -> float:
        """Residual sleep per cycle."""
        return self.period - self.active_tasks.total_duration

    @property
    def sleep_energy(self) -> float:
        return self.sleep_watts * self.sleep_duration

    @property
    def cycle_energy(self) -> float:
        """Joules per full cycle (active + surge + residual sleep)."""
        return self.active_tasks.total_energy + self.wake_surge_j + self.sleep_energy

    @property
    def average_power(self) -> float:
        """Long-run average watts at this period."""
        return self.cycle_energy / self.period

    def with_period(self, period: float) -> "ClientProfile":
        """Copy at a different wake-up period."""
        return ClientProfile(self.name, self.active_tasks, self.sleep_watts, period, self.wake_surge_j)


def client_cycle_energy(profile: ClientProfile) -> float:
    """Energy of one client cycle (convenience alias)."""
    return profile.cycle_energy


def fallback_inference_task(model: str = "svm", constants: PaperConstants = PAPER) -> TaskPower:
    """The local inference a client runs when the cloud is unreachable.

    Graceful degradation for the edge+cloud scenario: after retries are
    exhausted and no server survives, the client executes the queen
    detection itself at the Table I edge cost (§V) instead of dropping the
    cycle — the detection still happens, it just costs edge energy.
    """
    model = model.lower()
    if model == "svm":
        return TaskPower("fallback_infer_svm", constants.svm_edge_s, measured_energy=constants.svm_edge_j)
    if model == "cnn":
        return TaskPower("fallback_infer_cnn", constants.cnn_edge_s, measured_energy=constants.cnn_edge_j)
    raise ValueError(f"model must be 'svm' or 'cnn', got {model!r}")


def fallback_extra_energy(
    profile: ClientProfile, model: str = "svm", constants: PaperConstants = PAPER
) -> float:
    """Marginal joules a fallback cycle adds over a normal one.

    The local inference displaces sleep for its duration, so the marginal
    cost is ``E_infer − P_sleep · t_infer``.  Raises if the inference no
    longer fits in the client's residual sleep window.
    """
    task = fallback_inference_task(model, constants)
    if task.duration > profile.sleep_duration:
        raise ValueError(
            f"client {profile.name!r}: fallback inference ({task.duration:.1f} s) "
            f"exceeds the residual sleep window ({profile.sleep_duration:.1f} s)"
        )
    return task.energy - profile.sleep_watts * task.duration


def average_power_for_period(
    period: float,
    constants: PaperConstants = PAPER,
) -> float:
    """§IV model: average Pi 3b+ power for a wake-up ``period``.

    One routine of ``constants.routine.energy_j`` (plus the boot surge) per
    period, sleep for the remainder.  Converges to ``sleep_watts`` for long
    periods and reaches Figure 3's 1.19 W at 5 minutes.
    """
    check_positive(period, "period")
    routine = constants.routine
    if period < routine.duration_s:
        raise ValueError(
            f"period {period:.0f} s is shorter than one routine ({routine.duration_s:.0f} s)"
        )
    active_e = routine.energy_j + constants.wake_surge_j
    sleep_e = constants.sleep_watts * (period - routine.duration_s)
    return (active_e + sleep_e) / period


def fig3_curve(constants: PaperConstants = PAPER) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """(periods, average powers) across the paper's Figure 3 frequencies."""
    periods = constants.wakeup_periods_s
    powers = tuple(average_power_for_period(p, constants) for p in periods)
    return periods, powers
