"""Server model and time-slot planning.

A server tiles each cycle with synchronized **time slots** (§VI): every
client assigned to a slot starts its upload at the slot boundary; the server
receives for the transfer window, then executes one service inference per
client, then idles until the next slot.  Slot duration is

    ``transfer_s (+ loss-B stretch) + service_s + guard_s``

and the number of slots per cycle is ``floor(period / slot_duration)``.
With the paper's calibration (transfer 15 s, SVM service 0.1 s, guard 1.5 s)
a 5-minute cycle holds 18 slots, so a server with 35 clients per slot
saturates at 630 clients — the full-server point of Figure 7b.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.core.calibration import CYCLE_SECONDS, PAPER, PaperConstants
from repro.energy.power import TaskPower
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class ServerProfile:
    """Energy/capacity description of one cloud server."""

    name: str
    idle_watts: float
    receive_watts: float
    transfer_s: float
    service: TaskPower
    guard_s: float = PAPER.slot_guard_s
    max_parallel: int = PAPER.default_max_parallel

    def __post_init__(self) -> None:
        check_non_negative(self.idle_watts, "idle_watts")
        check_non_negative(self.receive_watts, "receive_watts")
        check_positive(self.transfer_s, "transfer_s")
        check_non_negative(self.guard_s, "guard_s")
        if self.max_parallel < 1:
            raise ValueError(f"max_parallel must be >= 1, got {self.max_parallel}")

    # -- slot geometry ------------------------------------------------------
    def slot_duration(self, extra_transfer_s: float = 0.0) -> float:
        """Slot length; ``extra_transfer_s`` is the loss-B stretch."""
        check_non_negative(extra_transfer_s, "extra_transfer_s")
        return self.transfer_s + extra_transfer_s + self.service.duration + self.guard_s

    def slots_per_cycle(self, period: float = CYCLE_SECONDS, extra_transfer_s: float = 0.0) -> int:
        """Number of slots tiling one cycle."""
        check_positive(period, "period")
        n = int(math.floor(period / self.slot_duration(extra_transfer_s)))
        if n < 1:
            raise ValueError(
                f"server {self.name!r}: slot duration {self.slot_duration(extra_transfer_s):.1f} s "
                f"does not fit in period {period:.1f} s"
            )
        return n

    def capacity(self, period: float = CYCLE_SECONDS, extra_transfer_s: float = 0.0) -> int:
        """Maximum clients one server admits per cycle."""
        return self.slots_per_cycle(period, extra_transfer_s) * self.max_parallel

    # -- slot energy ----------------------------------------------------------
    def slot_energy(self, n_clients: int, extra_transfer_s: float = 0.0) -> float:
        """Energy of one *occupied* slot over its own window (joules).

        Receive at ``receive_watts`` for the transfer window; each client's
        service inference adds its marginal energy over idling
        (``E_service − idle·t_service``).  Inference runs on the compute
        complex (6 CPU cores + GPU) *concurrently* with the slot timeline —
        this is what makes the paper's slot packing consistent: 35 SVM
        executions (3.5 s) fit a 16.6 s slot only if they pipeline with
        reception/idle rather than serializing on it.
        """
        if not 0 <= n_clients <= self.max_parallel:
            raise ValueError(f"slot occupancy {n_clients} outside [0, {self.max_parallel}]")
        t_rx = self.transfer_s + extra_transfer_s
        slot = self.slot_duration(extra_transfer_s)
        if n_clients == 0:
            return self.idle_watts * slot
        return (
            self.idle_watts * slot
            + (self.receive_watts - self.idle_watts) * t_rx
            + n_clients * (self.service.energy - self.idle_watts * self.service.duration)
        )

    def slot_marginal_energy(self, n_clients: int, extra_transfer_s: float = 0.0) -> float:
        """Energy an occupied slot adds *over idling* for the same window."""
        slot = self.slot_duration(extra_transfer_s)
        return self.slot_energy(n_clients, extra_transfer_s) - self.idle_watts * slot

    def cycle_energy(self, occupancies, period: float = CYCLE_SECONDS, extra_transfer_s: float = 0.0) -> float:
        """Server energy over one cycle given per-slot client counts.

        ``occupancies`` lists clients per slot (length ≤ slots_per_cycle).
        Idle power covers all time not spent receiving or computing.
        """
        n_slots = self.slots_per_cycle(period, extra_transfer_s)
        occupancies = list(occupancies)
        if len(occupancies) > n_slots:
            raise ValueError(f"{len(occupancies)} occupancies for {n_slots} slots")
        total = self.idle_watts * period
        for k in occupancies:
            total += self.slot_marginal_energy(int(k), extra_transfer_s)
        return total

    def with_max_parallel(self, max_parallel: int) -> "ServerProfile":
        """Copy with a different per-slot admission cap."""
        return replace(self, max_parallel=max_parallel)


@dataclass(frozen=True)
class SlotPlan:
    """Resolved slot geometry for a (server, period, loss) combination."""

    slot_duration: float
    slots_per_cycle: int
    max_parallel: int

    @property
    def capacity(self) -> int:
        return self.slots_per_cycle * self.max_parallel

    @staticmethod
    def for_server(
        server: ServerProfile,
        period: float = CYCLE_SECONDS,
        extra_transfer_s: float = 0.0,
    ) -> "SlotPlan":
        return SlotPlan(
            slot_duration=server.slot_duration(extra_transfer_s),
            slots_per_cycle=server.slots_per_cycle(period, extra_transfer_s),
            max_parallel=server.max_parallel,
        )


def paper_server(
    model: str = "svm",
    max_parallel: Optional[int] = None,
    constants: PaperConstants = PAPER,
) -> ServerProfile:
    """The paper's cloud server (i7-8700K + RTX 2070) for a service model."""
    model = model.lower()
    if model == "svm":
        service = TaskPower("queen_detection_svm", constants.svm_cloud_s, measured_energy=constants.svm_cloud_j)
    elif model == "cnn":
        service = TaskPower("queen_detection_cnn", constants.cnn_cloud_s, measured_energy=constants.cnn_cloud_j)
    else:
        raise ValueError(f"model must be 'svm' or 'cnn', got {model!r}")
    return ServerProfile(
        name=f"cloud-{model}",
        idle_watts=constants.server_idle_w,
        receive_watts=constants.server_receive_w,
        transfer_s=constants.send_audio_s,
        service=service,
        guard_s=constants.slot_guard_s,
        max_parallel=max_parallel if max_parallel is not None else constants.default_max_parallel,
    )
