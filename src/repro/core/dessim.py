"""Discrete-event cross-validation of the cycle-level model.

The analytic simulator (:mod:`repro.core.simulate`) collapses each cycle to
closed-form energy sums.  This module replays the same scenario event by
event on the :mod:`repro.des` kernel — wake-ups, slot-boundary uploads,
sequential service executions — charging real device objects, and returns
per-entity ledgers.  Tests assert that the two agree to numerical precision,
which guards both implementations against modelling drift.

Observation windows: each client is observed over ``n_cycles`` periods
*phase-aligned to its own wake-up offset* (energy per cycle is phase
invariant, so this makes the ledgers exactly comparable to the analytic
per-cycle figures without boundary effects).  Servers are observed over
``[0, n_cycles × period)``.

Scaling: with ``cohort=True`` clients that share a wake offset (and servers
that share an occupancy profile) collapse into one simulated representative
carrying a multiplicity count (:mod:`repro.core.cohort`).  The collapse is
exact — member trajectories are bit-for-bit identical — and takes the DES
from O(clients) to O(slots + occupancy profiles) processes, which is what
makes 100k–1M-client fleets interactive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.allocator import Allocation, Allocator, FillingPolicy
from repro.core.calibration import CYCLE_SECONDS
from repro.core.cohort import Cohort, expand_accounts, group_cohorts, weighted_total
from repro.core.losses import LossConfig
from repro.core.routines import Scenario
from repro.des.engine import Engine
from repro.devices.device import AlwaysOnDevice, DutyCycledDevice
from repro.devices.specs import CLOUD_SERVER_I7_RTX2070, RASPBERRY_PI_3B_PLUS


@dataclass(frozen=True)
class DesFleetResult:
    """Per-entity energy ledgers from an event-driven run.

    For per-client runs ``client_accounts`` holds one ledger per client and
    the multiplicity/cohort fields are empty.  For cohort runs each entry is
    the *representative* (per-member, unscaled) ledger of one cohort, with
    ``client_multiplicities``/``client_cohorts`` parallel to it; aggregate
    properties weight by multiplicity, and per-client properties divide by
    ``n_clients`` — the true fleet size, not ``len(client_accounts)``.
    """

    n_cycles: int
    period: float
    client_accounts: tuple
    server_accounts: tuple
    n_clients: int = -1
    client_multiplicities: tuple = ()
    server_multiplicities: tuple = ()
    client_cohorts: tuple = ()  # tuple[tuple[int, ...]] parallel to client_accounts
    server_cohorts: tuple = ()  # tuple[tuple[int, ...]] parallel to server_accounts

    def __post_init__(self) -> None:
        if self.n_clients < 0:
            object.__setattr__(self, "n_clients", len(self.client_accounts))

    @property
    def n_servers(self) -> int:
        """True server count (cohort multiplicities included)."""
        if self.server_multiplicities:
            return sum(self.server_multiplicities)
        return len(self.server_accounts)

    @property
    def edge_energy_j(self) -> float:
        if self.client_multiplicities:
            return weighted_total(self.client_accounts, self.client_multiplicities)
        return sum(acc.total for acc in self.client_accounts)

    @property
    def server_energy_j(self) -> float:
        if self.server_multiplicities:
            return weighted_total(self.server_accounts, self.server_multiplicities)
        return sum(acc.total for acc in self.server_accounts)

    @property
    def total_energy_j(self) -> float:
        return self.edge_energy_j + self.server_energy_j

    @property
    def edge_energy_per_client_cycle(self) -> float:
        n = self.n_clients
        return self.edge_energy_j / (n * self.n_cycles) if n else 0.0

    @property
    def server_energy_per_cycle(self) -> float:
        return self.server_energy_j / self.n_cycles

    def expand_client_accounts(self) -> tuple:
        """Per-client ledger view (shared representative objects, id order)."""
        if not self.client_cohorts:
            return self.client_accounts
        cohorts = [Cohort(key=("client", ids[0]), member_ids=ids) for ids in self.client_cohorts]
        return expand_accounts(self.client_accounts, cohorts, self.n_clients)

    def expand_server_accounts(self) -> tuple:
        """Per-server ledger view (shared representative objects, index order)."""
        if not self.server_cohorts:
            return self.server_accounts
        cohorts = [Cohort(key=("server", ids[0]), member_ids=ids) for ids in self.server_cohorts]
        return expand_accounts(self.server_accounts, cohorts, self.n_servers)


def fleet_wake_offsets(
    n_clients: int,
    scenario: Scenario,
    period: float,
    losses: LossConfig,
    policy: Optional[FillingPolicy],
) -> Tuple[Optional[Allocation], float, Dict[int, float]]:
    """Allocate the fleet and derive each client's wake-up offset.

    Shared by the per-client and cohort paths so both see identical floats:
    a client wakes so its upload lands on its slot boundary (the tasks
    before ``send_audio`` run first).
    """
    tasks = list(scenario.client.active_tasks)
    if scenario.is_edge_only:
        return None, 0.0, {i: 0.0 for i in range(n_clients)}
    allocator = Allocator(scenario.server, period=period, losses=losses, policy=policy)
    allocation = allocator.allocate(n_clients)
    sizing_extra = allocator.sizing_extra_s
    pre_send = 0.0
    for t in tasks:
        if t.name == "send_audio":
            break
        pre_send += t.duration
    slot_dur = scenario.server.slot_duration(sizing_extra)
    wake_offsets: Dict[int, float] = {}
    for srv in allocation.servers:
        for slot_idx, slot in enumerate(srv.slots):
            for cid in slot:
                wake_offsets[cid] = max(slot_idx * slot_dur - pre_send, 0.0)
    return allocation, sizing_extra, wake_offsets


def server_process(engine, device, occupancies, profile, slot_dur, losses, n_cycles, period):
    """Generator driving one always-on server through its slot timeline.

    Shared by the per-client, cohort, and SoA-array kernels: a server only
    ever waits on its own timeouts, so its charge sequence is independent of
    which client kernel runs alongside it — the ledgers come out
    float-identical on a dedicated engine (:mod:`repro.core.dessim_array`
    relies on this).
    """
    for cycle in range(n_cycles):
        base = cycle * period
        for slot_idx, k in enumerate(occupancies):
            if k == 0:
                continue
            start = base + slot_idx * slot_dur
            delay = start - engine.now
            if delay > 0:
                yield engine.timeout(delay)
            device.idle_until(engine.now)
            actual_extra = losses.transfer.actual_extra_s(k) if losses.transfer else 0.0
            t_rx = profile.transfer_s + actual_extra
            device.excursion(engine.now, "receive", t_rx,
                             override=("receive", profile.receive_watts))
            # Service inferences pipeline with the slot timeline
            # (see ServerProfile.slot_energy): the device keeps
            # charging idle for the wall-clock, and the inferences
            # add their marginal energy over idling.
            svc_marginal = k * (
                profile.service.energy - profile.idle_watts * profile.service.duration
            )
            device.account.charge("service", svc_marginal, time=engine.now)
            if losses.saturation is not None:
                mult = losses.saturation.multiplier(k, profile.max_parallel)
                if mult > 1.0:
                    active = (
                        (profile.receive_watts - profile.idle_watts) * t_rx + svc_marginal
                    )
                    pen_base = (
                        profile.idle_watts * slot_dur + active
                        if losses.saturation.base == "slot"
                        else active
                    )
                    device.account.charge(
                        "saturation_penalty", (mult - 1.0) * pen_base, time=engine.now
                    )


def run_des_fleet(
    n_clients: int,
    scenario: Scenario,
    period: float = CYCLE_SECONDS,
    n_cycles: int = 1,
    losses: Optional[LossConfig] = None,
    policy: Optional[FillingPolicy] = None,
    faults=None,
    seed=None,
    cohort: bool = False,
    validate: Optional[bool] = None,
    obs=None,
    engine_queue: str = "heap",
):
    """Replay ``n_cycles`` of the scenario event by event.

    Loss model C (random client dropout) is excluded here — the DES run is
    a deterministic validator; stochastic losses are exercised at the
    analytic level where their statistics are testable in bulk.

    When a :class:`repro.faults.config.FaultConfig` with active injectors is
    passed via ``faults``, the run is delegated to
    :func:`repro.faults.desfaults.run_des_faulty_fleet` (``seed`` drives the
    fault timetable and retry jitter) and a
    :class:`~repro.faults.desfaults.DesFaultyResult` is returned instead.

    ``cohort=True`` enables the exact aggregation fast path: one process per
    distinct wake offset (clients) and per distinct occupancy profile
    (servers), with multiplicity-scaled ledgers.  Member trajectories are
    bit-for-bit identical, so the collapse changes no floats at the ledger
    level — property-tested against the per-client path on small fleets.

    ``validate=True`` (or the global ``--validate`` switch when left at
    ``None``) runs the full invariant suite on the finished run: ledger
    conservation, cohort partition, slot occupancy, clock monotonicity, and
    DES-vs-analytic energy reconciliation (see :mod:`repro.validate`).

    ``obs=`` (or the ambient collector; see :mod:`repro.obs`) attributes the
    run's energy per phase from the event-driven ledgers themselves —
    category totals folded through :func:`repro.obs.ledger.phase_of`, cohort
    multiplicities applied — so the phase sum equals the run total by
    construction, and records a ``des_fleet`` span with per-phase children
    plus the kernel's cumulative event count.

    ``n_clients=0`` is well-defined: an empty fleet drains instantly and
    returns empty ledgers with zero energy.

    ``engine_queue`` selects the event-list backend (``"heap"`` or
    ``"wheel"``); the two produce identical event orders and therefore
    identical ledgers (see :mod:`repro.des.wheel`).
    """
    if faults is not None and faults.any_active:
        from repro.faults.desfaults import run_des_faulty_fleet

        return run_des_faulty_fleet(
            n_clients,
            scenario,
            faults=faults,
            n_cycles=n_cycles,
            period=period,
            losses=losses,
            policy=policy,
            seed=seed,
            cohort=cohort,
            validate=validate,
            obs=obs,
        )
    if n_clients < 0:
        raise ValueError("n_clients must be >= 0")
    if n_cycles < 1:
        raise ValueError("n_cycles must be >= 1")
    losses = losses or LossConfig.none()
    if losses.client_loss is not None:
        raise ValueError("run_des_fleet does not support loss model C (client dropout)")

    engine = Engine(pool_timeouts=True, queue=engine_queue)
    horizon = n_cycles * period
    tasks = list(scenario.client.active_tasks)
    if scenario.client.active_tasks.total_duration > period:
        raise ValueError("client tasks exceed the period")

    allocation, sizing_extra, wake_offsets = fleet_wake_offsets(
        n_clients, scenario, period, losses, policy
    )

    # --- client processes -----------------------------------------------------
    def client_proc(device: DutyCycledDevice, offset: float):
        for cycle in range(n_cycles):
            wake = cycle * period + offset
            delay = wake - engine.now
            if delay > 0:
                yield engine.timeout(delay)
            device.sleep_until(engine.now)
            end = device.run_routine(engine.now, tasks)
            yield engine.timeout(end - engine.now)

    clients: List[DutyCycledDevice] = []
    client_ends: List[float] = []
    client_cohorts: List[Cohort] = []
    if cohort:
        client_cohorts = group_cohorts(wake_offsets)
        for co in client_cohorts:
            offset = wake_offsets[co.representative]
            dev = DutyCycledDevice(
                RASPBERRY_PI_3B_PLUS, start_time=offset, name=f"client-{co.representative}"
            )
            clients.append(dev)
            client_ends.append(offset + horizon)
            engine.process(client_proc(dev, offset))
    else:
        for cid in range(n_clients):
            offset = wake_offsets[cid]
            dev = DutyCycledDevice(RASPBERRY_PI_3B_PLUS, start_time=offset, name=f"client-{cid}")
            clients.append(dev)
            client_ends.append(offset + horizon)
            engine.process(client_proc(dev, offset))

    # --- server processes -------------------------------------------------------
    servers: List[AlwaysOnDevice] = []
    server_cohorts: List[Cohort] = []
    if allocation is not None:
        profile = scenario.server
        slot_dur = profile.slot_duration(sizing_extra)

        if cohort:
            occupancy_of = {
                srv.server_index: tuple(srv.occupancies) for srv in allocation.servers
            }
            server_cohorts = group_cohorts(occupancy_of)
            for co in server_cohorts:
                dev = AlwaysOnDevice(CLOUD_SERVER_I7_RTX2070, name=f"server-{co.representative}")
                servers.append(dev)
                engine.process(server_process(
                    engine, dev, list(occupancy_of[co.representative]),
                    profile, slot_dur, losses, n_cycles, period,
                ))
        else:
            for srv in allocation.servers:
                dev = AlwaysOnDevice(CLOUD_SERVER_I7_RTX2070, name=f"server-{srv.server_index}")
                servers.append(dev)
                engine.process(server_process(
                    engine, dev, list(srv.occupancies),
                    profile, slot_dur, losses, n_cycles, period,
                ))

    engine.run()  # drain every scheduled event

    for dev, end in zip(clients, client_ends):
        dev.finish(end)
    for dev in servers:
        dev.finish(horizon)

    result = DesFleetResult(
        n_cycles=n_cycles,
        period=period,
        client_accounts=tuple(d.account for d in clients),
        server_accounts=tuple(d.account for d in servers),
        n_clients=n_clients,
        client_multiplicities=tuple(c.multiplicity for c in client_cohorts),
        server_multiplicities=tuple(c.multiplicity for c in server_cohorts),
        client_cohorts=tuple(c.member_ids for c in client_cohorts),
        server_cohorts=tuple(c.member_ids for c in server_cohorts),
    )

    from repro.obs.state import resolve as _resolve_obs

    obs_c = _resolve_obs(obs)
    if obs_c is not None:
        from repro.obs.attribution import attribute_accounts, record_run
        from repro.obs.ledger import PhaseLedger

        obs_c.metrics.counter("des.runs").inc()
        obs_c.metrics.counter("des.clients").inc(n_clients)
        obs_c.metrics.counter("des.cycles").inc(n_cycles)
        obs_c.metrics.counter("des.events_fired").inc(engine.events_fired)
        obs_c.metrics.histogram("des.events_per_run").record(engine.events_fired)
        local = PhaseLedger()
        attribute_accounts(
            local, result.client_accounts, result.client_multiplicities or None
        )
        attribute_accounts(
            local, result.server_accounts, result.server_multiplicities or None
        )
        local.note_total(result.total_energy_j)
        record_run(
            obs_c, "des_fleet", 0.0, horizon, local,
            scenario=scenario.name, n_clients=n_clients,
            n_cycles=n_cycles, cohort=cohort,
            events_fired=engine.events_fired,
        )

    from repro.validate.state import resolve

    if resolve(validate):
        from repro.validate.invariants import validate_des_run

        validate_des_run(
            result,
            scenario=scenario,
            engine=engine,
            allocation=allocation,
            devices=tuple(clients) + tuple(servers),
            losses=losses,
            sizing_extra_s=sizing_extra,
            context={"scenario_name": scenario.name, "cohort": cohort},
        )
    return result
