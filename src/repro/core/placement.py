"""Pluggable placement policies: closed-form rank → placement layout maps.

A :class:`PlacementPolicy` answers every placement question the allocator
stack asks — batch or live — from a client's **rank** (its index among
survivors, in admission order):

* ``place(rank, n, plan)``: which (server, slot, position) seats this rank;
* ``slot_occupancy(placement, n, plan)``: how many clients share that slot;
* ``server_ranks(server, n, plan)``: which ranks one logical server holds
  (the failover/orphan-gathering query);
* ``allocate(client_ids, plan)``: the batch fold — admit every client in
  order through :class:`~repro.core.livealloc.LiveAllocation` and
  materialize the canonical :class:`~repro.core.allocator.Allocation`;
* ``repack_preference(...)``: how the mid-cycle failover helper
  (:func:`~repro.core.allocator.repack_failed_servers`) should rank
  candidate seats when re-homing orphans.

Because the batch path *is* the fold of the live path, any policy written
against this interface inherits the online == batch bit-identity guarantee
for free (hypothesis-pinned in ``tests/core/test_livealloc.py``).

Determinism contract
--------------------
Policies must be pure functions of ``(rank, n, plan)`` plus their own
constructor parameters.  Stochastic scores (the swarm policy's pheromone
field) are derived via :func:`repro.util.rng.derive_seed` from an explicit
seed, so two processes given the same seed lay out the same fleet —
never from wall clock, dict order, or module state.

The seven kinds
---------------
``first-fit``     the paper's policy: fill each slot to the cap, slot by
                  slot, server by server.
``round-robin``   deal clients across all slots of the current server.
``balanced``      spread evenly over all slots of all servers.
``best-fit``      saturation-averse tight packing: fill every slot to a
                  *soft* cap (``max_parallel - headroom``) first — the
                  fullest slot that still dodges the loss-model-A
                  saturation penalty — and only then top slots up to the
                  hard cap.
``worst-fit``     emptiest-server spreading: successive admissions rotate
                  across servers, first-fit within each.
``solar-budget``  irradiance-weighted: slots whose wake-up window sees the
                  most sun (``repro.energy.solar.clear_sky_irradiance``)
                  fill first, so the marginal client lands where the
                  panel-side energy budget is largest.
``swarm-scored``  pheromone-style: a seeded score field over the
                  (server, slot) graph, relaxed by a few deterministic
                  diffusion sweeps; admissions follow descending score.

All seven open the *minimal* number of servers (``ceil(n / capacity)``) so
``max_servers`` budget semantics — and :class:`AdmissionFull` timing — are
policy-independent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.server import SlotPlan
from repro.util.rng import derive_seed

#: The filling-policy kinds the closed-form layout maps support.
POLICY_KINDS = (
    "first-fit",
    "round-robin",
    "balanced",
    "best-fit",
    "worst-fit",
    "solar-budget",
    "swarm-scored",
)


@dataclass(frozen=True)
class Placement:
    """Where one client sits: logical server, slot ordinal, position in slot.

    ``slot`` is the *schedule* ordinal (the wake-up window index within the
    cycle, what :meth:`~repro.serve.engine.OrchestrationEngine` prices the
    slot-start latency from).  Policies that fill slots out of schedule
    order (solar-budget, swarm-scored) leave schedule gaps at small ``n``;
    the materialized :class:`~repro.core.allocator.Allocation` then keeps
    only the non-empty slots, in ordinal order.
    """

    server: int
    slot: int
    position: int


class PlacementPolicy:
    """Base class: a deterministic closed-form layout over admission ranks.

    Subclasses implement :meth:`place`, :meth:`slot_occupancy`, and
    :meth:`server_ranks`; everything else (batch fold, server count,
    failover preference, description) has policy-independent defaults.
    """

    kind: str = ""

    # -- the closed-form layout map -----------------------------------------
    def place(self, rank: int, n: int, plan: SlotPlan) -> Placement:
        """(server, slot, position) of the client at ``rank`` among ``n``."""
        raise NotImplementedError

    def slot_occupancy(self, placement: Placement, n: int, plan: SlotPlan) -> int:
        """Number of clients sharing ``placement``'s (server, slot)."""
        raise NotImplementedError

    def server_ranks(self, server: int, n: int, plan: SlotPlan) -> List[int]:
        """All ranks seated on logical server ``server`` (any order)."""
        raise NotImplementedError

    # -- policy-independent structure ---------------------------------------
    def n_servers(self, n: int, plan: SlotPlan) -> int:
        """Servers opened for ``n`` clients — minimal under every policy."""
        return math.ceil(n / plan.capacity) if n else 0

    def allocate(self, client_ids: Sequence[int], plan: SlotPlan):
        """Batch allocation as the fold of ``admit`` over ``client_ids``.

        ``LiveAllocation.bulk_admit`` is the O(n) fused form of admitting
        each client in turn (hypothesis-pinned identical to the one-by-one
        loop); ``to_allocation`` materializes the canonical layout.  The
        batch and online paths therefore share one engine and cannot drift.
        """
        from repro.core.livealloc import LiveAllocation

        live = LiveAllocation(plan, self)
        live.bulk_admit(client_ids)
        return live.to_allocation()

    def repack_preference(
        self,
        server_index: int,
        slot_ordinal: int,
        occupancy: int,
        plan: SlotPlan,
        n_servers: int,
    ) -> float:
        """Sort key (lower = preferred) for one candidate failover seat.

        The mid-cycle repack (:func:`~repro.core.allocator
        .repack_failed_servers`) breaks ties by (survivor order, slot
        order); the default constant preference reduces the greedy fill to
        exactly the historical first-fit repack.
        """
        return 0.0

    def describe(self) -> Dict[str, object]:
        """JSON-safe parameters that pin this policy's layout."""
        return {"kind": self.kind}

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        params = ", ".join(f"{k}={v!r}" for k, v in self.describe().items() if k != "kind")
        return f"{type(self).__name__}({params})"


# ---------------------------------------------------------------------------
# the paper's policy and its two documented extensions (PR 8 closed forms)
# ---------------------------------------------------------------------------


class FirstFitPolicy(PlacementPolicy):
    """The paper's policy: fill each slot to the cap, slot by slot, server by server."""

    kind = "first-fit"

    def place(self, rank: int, n: int, plan: SlotPlan) -> Placement:
        server, r = divmod(rank, plan.capacity)
        slot, pos = divmod(r, plan.max_parallel)
        return Placement(server, slot, pos)

    def slot_occupancy(self, p: Placement, n: int, plan: SlotPlan) -> int:
        start = p.server * plan.capacity + p.slot * plan.max_parallel
        return max(0, min(plan.max_parallel, n - start))

    def server_ranks(self, server: int, n: int, plan: SlotPlan) -> List[int]:
        lo = server * plan.capacity
        return list(range(lo, min(lo + plan.capacity, n)))


class RoundRobinPolicy(PlacementPolicy):
    """Deal clients one-by-one across all slots of the current server.

    Spreads occupancy within a server (delaying loss-A saturation) while
    still opening the minimum number of servers.
    """

    kind = "round-robin"

    def place(self, rank: int, n: int, plan: SlotPlan) -> Placement:
        server, j = divmod(rank, plan.capacity)
        slot = j % plan.slots_per_cycle
        pos = j // plan.slots_per_cycle
        return Placement(server, slot, pos)

    def slot_occupancy(self, p: Placement, n: int, plan: SlotPlan) -> int:
        chunk_n = min(plan.capacity, n - p.server * plan.capacity)
        # members of slot s within the chunk are positions s, s+spc, s+2*spc, ...
        return (chunk_n - p.slot - 1) // plan.slots_per_cycle + 1

    def server_ranks(self, server: int, n: int, plan: SlotPlan) -> List[int]:
        lo = server * plan.capacity
        return list(range(lo, min(lo + plan.capacity, n)))


def _balanced_geometry(n: int, plan: SlotPlan) -> Tuple[int, int, int]:
    """(n_servers, base, extra) of the balanced layout for ``n`` clients."""
    n_servers = math.ceil(n / plan.capacity)
    base, extra = divmod(n, n_servers * plan.slots_per_cycle)
    return n_servers, base, extra


class BalancedPolicy(PlacementPolicy):
    """Spread clients as evenly as possible over *all* slots of *all* servers.

    Uses the same minimal server count as first-fit but flattens occupancy
    globally — the gentlest layout under loss model A.
    """

    kind = "balanced"

    def place(self, rank: int, n: int, plan: SlotPlan) -> Placement:
        _, base, extra = _balanced_geometry(n, plan)
        if base == 0:
            g, pos = rank, 0
        else:
            threshold = extra * (base + 1)
            if rank < threshold:
                g, pos = divmod(rank, base + 1)
            else:
                g, pos = divmod(rank - threshold, base)
                g += extra
        server, slot = divmod(g, plan.slots_per_cycle)
        return Placement(server, slot, pos)

    def slot_occupancy(self, p: Placement, n: int, plan: SlotPlan) -> int:
        _, base, extra = _balanced_geometry(n, plan)
        g = p.server * plan.slots_per_cycle + p.slot
        return base + (1 if g < extra else 0)

    def server_ranks(self, server: int, n: int, plan: SlotPlan) -> List[int]:
        # A server's share is the sum of its slots' ``base (+1 below extra)``
        # takes — recovered from the slot-start prefix ``g·base + min(g, extra)``.
        _, base, extra = _balanced_geometry(n, plan)
        spc = plan.slots_per_cycle
        g0, g1 = server * spc, (server + 1) * spc
        lo = g0 * base + min(g0, extra)
        hi = min(g1 * base + min(g1, extra), n)
        return list(range(lo, hi))


# ---------------------------------------------------------------------------
# occupancy-ranked policies: best-fit and worst-fit
# ---------------------------------------------------------------------------


class BestFitPolicy(PlacementPolicy):
    """Saturation-averse tight packing: the fullest slot below the soft cap.

    With homogeneous unit-size clients and recompaction, textbook best-fit
    ("the fullest slot with room") degenerates to first-fit.  The useful
    best-fit for this system packs against the *soft* cap
    ``max_parallel - headroom`` — the fullest a slot can get before loss
    model A's saturation penalty starts pricing it — and only once every
    slot of every open server sits at the soft cap does it top slots up to
    the hard cap, in slot order.  ``headroom=1`` by default; set it to the
    loss-A margin (5 in the paper calibration) to dodge the penalty region
    entirely while capacity lasts.
    """

    kind = "best-fit"

    def __init__(self, headroom: int = 1) -> None:
        if headroom < 0:
            raise ValueError(f"headroom must be >= 0, got {headroom}")
        self.headroom = headroom

    def _soft(self, plan: SlotPlan) -> int:
        return max(1, plan.max_parallel - self.headroom)

    def place(self, rank: int, n: int, plan: SlotPlan) -> Placement:
        spc = plan.slots_per_cycle
        soft = self._soft(plan)
        scap = spc * soft
        servers = self.n_servers(n, plan)
        if rank < servers * scap:
            server, j = divmod(rank, scap)
            slot, pos = divmod(j, soft)
            return Placement(server, slot, pos)
        # top-up phase: every slot holds ``soft``; fill the remaining
        # ``extra`` seats per slot, slot by slot, server by server.
        extra = plan.max_parallel - soft
        server, j = divmod(rank - servers * scap, spc * extra)
        slot, pos = divmod(j, extra)
        return Placement(server, slot, soft + pos)

    def slot_occupancy(self, p: Placement, n: int, plan: SlotPlan) -> int:
        spc = plan.slots_per_cycle
        soft = self._soft(plan)
        scap = spc * soft
        servers = self.n_servers(n, plan)
        start = p.server * scap + p.slot * soft
        occ = max(0, min(soft, min(n, servers * scap) - start))
        extra = plan.max_parallel - soft
        if n > servers * scap and extra > 0:
            e_start = (p.server * spc + p.slot) * extra
            occ += max(0, min(extra, (n - servers * scap) - e_start))
        return occ

    def server_ranks(self, server: int, n: int, plan: SlotPlan) -> List[int]:
        spc = plan.slots_per_cycle
        soft = self._soft(plan)
        scap = spc * soft
        servers = self.n_servers(n, plan)
        phase1 = min(n, servers * scap)
        lo = server * scap
        ranks = list(range(lo, min(lo + scap, phase1)))
        extra = plan.max_parallel - soft
        if n > servers * scap and extra > 0:
            span = spc * extra
            lo2 = servers * scap + server * span
            ranks.extend(range(min(lo2, n), min(lo2 + span, n)))
        return ranks

    def repack_preference(
        self, server_index: int, slot_ordinal: int, occupancy: int,
        plan: SlotPlan, n_servers: int,
    ) -> float:
        # fullest first: top up the most-occupied slot that still has room
        return -float(occupancy)

    def describe(self) -> Dict[str, object]:
        return {"kind": self.kind, "headroom": self.headroom}


class WorstFitPolicy(PlacementPolicy):
    """Emptiest-server spreading: admissions rotate across all open servers.

    Rank ``r`` lands on server ``r mod n_servers`` — the server with the
    fewest clients at the moment of (recompacted) admission — and fills
    first-fit within that server.  Compared to ``balanced`` (which evens
    out *slots* globally) worst-fit evens out *servers* while keeping each
    server's early slots saturated, a classic load-spreading layout.
    """

    kind = "worst-fit"

    def place(self, rank: int, n: int, plan: SlotPlan) -> Placement:
        servers = self.n_servers(n, plan)
        server = rank % servers
        slot, pos = divmod(rank // servers, plan.max_parallel)
        return Placement(server, slot, pos)

    def _members_of(self, server: int, n: int, plan: SlotPlan) -> int:
        servers = self.n_servers(n, plan)
        return (n - server - 1) // servers + 1

    def slot_occupancy(self, p: Placement, n: int, plan: SlotPlan) -> int:
        m = self._members_of(p.server, n, plan)
        return max(0, min(plan.max_parallel, m - p.slot * plan.max_parallel))

    def server_ranks(self, server: int, n: int, plan: SlotPlan) -> List[int]:
        servers = self.n_servers(n, plan)
        m = self._members_of(server, n, plan)
        return [server + k * servers for k in range(m)]

    def repack_preference(
        self, server_index: int, slot_ordinal: int, occupancy: int,
        plan: SlotPlan, n_servers: int,
    ) -> float:
        # emptiest first: spread orphans over the least-loaded seats
        return float(occupancy)


# ---------------------------------------------------------------------------
# solar-budget-aware placement
# ---------------------------------------------------------------------------


class SolarBudgetPolicy(PlacementPolicy):
    """Fill the slots whose wake-up window sees the most sun first.

    Each slot ordinal ``k`` maps to a window starting ``k · slot_duration``
    after ``anchor_s`` (time-of-day of the cycle start); its score is the
    clear-sky irradiance (:func:`repro.energy.solar.clear_sky_irradiance`)
    at the window's midpoint.  Admissions fill slots in descending score
    (ties broken by ordinal), first-fit within a slot and server by server
    — so the marginal client's radio burst lands where the hive's panel
    budget is largest.  With the default morning anchor the late (sunnier)
    slots fill first; anchored in the dark every score is zero and the
    layout degrades to first-fit.
    """

    kind = "solar-budget"

    def __init__(
        self,
        sunrise_s: float = 6.0 * 3600,
        sunset_s: float = 20.0 * 3600,
        peak_irradiance: float = 900.0,
        anchor_s: float = 6.0 * 3600,
    ) -> None:
        if sunset_s <= sunrise_s:
            raise ValueError("sunset must be after sunrise")
        self.sunrise_s = float(sunrise_s)
        self.sunset_s = float(sunset_s)
        self.peak_irradiance = float(peak_irradiance)
        self.anchor_s = float(anchor_s)
        self._memo: Dict[Tuple[int, float], Tuple[Tuple[int, ...], Dict[int, int], Tuple[float, ...]]] = {}

    def slot_scores(self, plan: SlotPlan) -> Tuple[float, ...]:
        """Irradiance (W/m²) at each slot window's midpoint, by ordinal."""
        return self._layout(plan)[2]

    def _layout(self, plan: SlotPlan):
        from repro.energy.solar import clear_sky_irradiance

        key = (plan.slots_per_cycle, plan.slot_duration)
        cached = self._memo.get(key)
        if cached is None:
            scores = tuple(
                float(
                    clear_sky_irradiance(
                        self.anchor_s + (k + 0.5) * plan.slot_duration,
                        sunrise_s=self.sunrise_s,
                        sunset_s=self.sunset_s,
                        peak_irradiance=self.peak_irradiance,
                    )
                )
                for k in range(plan.slots_per_cycle)
            )
            order = tuple(
                sorted(range(plan.slots_per_cycle), key=lambda k: (-scores[k], k))
            )
            inverse = {slot: idx for idx, slot in enumerate(order)}
            cached = (order, inverse, scores)
            self._memo[key] = cached
        return cached

    def place(self, rank: int, n: int, plan: SlotPlan) -> Placement:
        order, _, _ = self._layout(plan)
        server, j = divmod(rank, plan.capacity)
        k, pos = divmod(j, plan.max_parallel)
        return Placement(server, order[k], pos)

    def slot_occupancy(self, p: Placement, n: int, plan: SlotPlan) -> int:
        _, inverse, _ = self._layout(plan)
        start = p.server * plan.capacity + inverse[p.slot] * plan.max_parallel
        return max(0, min(plan.max_parallel, n - start))

    def server_ranks(self, server: int, n: int, plan: SlotPlan) -> List[int]:
        lo = server * plan.capacity
        return list(range(lo, min(lo + plan.capacity, n)))

    def repack_preference(
        self, server_index: int, slot_ordinal: int, occupancy: int,
        plan: SlotPlan, n_servers: int,
    ) -> float:
        scores = self.slot_scores(plan)
        return -scores[slot_ordinal] if slot_ordinal < len(scores) else 0.0

    def describe(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "sunrise_s": self.sunrise_s,
            "sunset_s": self.sunset_s,
            "peak_irradiance": self.peak_irradiance,
            "anchor_s": self.anchor_s,
        }


# ---------------------------------------------------------------------------
# swarm/graph-scored placement
# ---------------------------------------------------------------------------


class SwarmScoredPolicy(PlacementPolicy):
    """Pheromone-style scores over the (server, slot) graph, seeded.

    Every (server, slot) node starts with a pheromone level derived from
    ``derive_seed(seed, "swarm-scored", server, slot)`` and is relaxed by
    ``iterations`` deterministic diffusion sweeps: each node keeps
    ``1 - evaporation`` of its own level and absorbs ``evaporation`` times
    the mean of its graph neighbours (adjacent servers on a ring, adjacent
    slots within a server) — the synchronous mean-field form of ant-colony
    trail reinforcement.  Admissions then fill (server, slot) pairs in
    descending final score, ``max_parallel`` at a time; everything is a
    pure function of (seed, n_servers, slots_per_cycle), so two processes
    with the same seed score — and place — identically.
    """

    kind = "swarm-scored"

    def __init__(self, seed: int = 0, evaporation: float = 0.5, iterations: int = 3) -> None:
        if not 0.0 <= evaporation <= 1.0:
            raise ValueError(f"evaporation must be in [0, 1], got {evaporation}")
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        self.seed = int(seed)
        self.evaporation = float(evaporation)
        self.iterations = int(iterations)
        self._memo: Dict[Tuple[int, int], Tuple[Tuple[Tuple[int, int], ...], Dict[Tuple[int, int], int], Tuple[Tuple[float, ...], ...]]] = {}

    def pair_scores(self, n_servers: int, plan: SlotPlan) -> Tuple[Tuple[float, ...], ...]:
        """Final pheromone level per (server, slot), ``[server][slot]``."""
        return self._layout(n_servers, plan.slots_per_cycle)[2]

    def _layout(self, n_servers: int, spc: int):
        key = (n_servers, spc)
        cached = self._memo.get(key)
        if cached is None:
            tau = [
                [
                    (derive_seed(self.seed, "swarm-scored", s, k) % 2**53) / 2**53
                    for k in range(spc)
                ]
                for s in range(n_servers)
            ]
            for _ in range(self.iterations):
                nxt = [row[:] for row in tau]
                for s in range(n_servers):
                    for k in range(spc):
                        neigh = []
                        if n_servers > 1:
                            neigh.append(tau[(s - 1) % n_servers][k])
                            if n_servers > 2:
                                neigh.append(tau[(s + 1) % n_servers][k])
                        if k > 0:
                            neigh.append(tau[s][k - 1])
                        if k + 1 < spc:
                            neigh.append(tau[s][k + 1])
                        if neigh:
                            nxt[s][k] = (1.0 - self.evaporation) * tau[s][k] + \
                                self.evaporation * sum(neigh) / len(neigh)
                tau = nxt
            pairs = tuple(
                sorted(
                    ((s, k) for s in range(n_servers) for k in range(spc)),
                    key=lambda p: (-tau[p[0]][p[1]], p),
                )
            )
            inverse = {pair: idx for idx, pair in enumerate(pairs)}
            cached = (pairs, inverse, tuple(tuple(row) for row in tau))
            self._memo[key] = cached
        return cached

    def place(self, rank: int, n: int, plan: SlotPlan) -> Placement:
        servers = self.n_servers(n, plan)
        pairs, _, _ = self._layout(servers, plan.slots_per_cycle)
        g, pos = divmod(rank, plan.max_parallel)
        server, slot = pairs[g]
        return Placement(server, slot, pos)

    def slot_occupancy(self, p: Placement, n: int, plan: SlotPlan) -> int:
        servers = self.n_servers(n, plan)
        _, inverse, _ = self._layout(servers, plan.slots_per_cycle)
        start = inverse[(p.server, p.slot)] * plan.max_parallel
        return max(0, min(plan.max_parallel, n - start))

    def server_ranks(self, server: int, n: int, plan: SlotPlan) -> List[int]:
        servers = self.n_servers(n, plan)
        _, inverse, _ = self._layout(servers, plan.slots_per_cycle)
        mp = plan.max_parallel
        ranks: List[int] = []
        for k in range(plan.slots_per_cycle):
            lo = inverse[(server, k)] * mp
            ranks.extend(range(min(lo, n), min(lo + mp, n)))
        return ranks

    def repack_preference(
        self, server_index: int, slot_ordinal: int, occupancy: int,
        plan: SlotPlan, n_servers: int,
    ) -> float:
        if n_servers <= 0 or server_index >= n_servers or slot_ordinal >= plan.slots_per_cycle:
            return 0.0
        scores = self.pair_scores(n_servers, plan)
        return -scores[server_index][slot_ordinal]

    def describe(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "evaporation": self.evaporation,
            "iterations": self.iterations,
        }


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY = {
    "first-fit": FirstFitPolicy,
    "round-robin": RoundRobinPolicy,
    "balanced": BalancedPolicy,
    "best-fit": BestFitPolicy,
    "worst-fit": WorstFitPolicy,
    "solar-budget": SolarBudgetPolicy,
    "swarm-scored": SwarmScoredPolicy,
}

#: Accepted spellings (CLI/config convenience) → canonical kind.
POLICY_ALIASES = {
    "first-fit": "first-fit",
    "firstfit": "first-fit",
    "round-robin": "round-robin",
    "roundrobin": "round-robin",
    "balanced": "balanced",
    "best-fit": "best-fit",
    "bestfit": "best-fit",
    "worst-fit": "worst-fit",
    "worstfit": "worst-fit",
    "solar-budget": "solar-budget",
    "solarbudget": "solar-budget",
    "solar": "solar-budget",
    "swarm-scored": "swarm-scored",
    "swarmscored": "swarm-scored",
    "swarm": "swarm-scored",
}


def normalize_kind(name: str) -> str:
    """Canonical policy kind for ``name`` (accepting aliases); raises ValueError."""
    kind = POLICY_ALIASES.get(str(name).strip().lower())
    if kind is None:
        raise ValueError(f"policy must be one of {POLICY_KINDS}, got {name!r}")
    return kind


def resolve_policy(spec: object = "first-fit", seed: int = 0) -> PlacementPolicy:
    """Turn a kind string / alias / policy object into a :class:`PlacementPolicy`.

    Policy objects pass through unchanged (so callers can share one memoized
    instance between the batch allocator and the live structure); strings
    resolve through :data:`POLICY_ALIASES` to a default-constructed policy —
    except ``swarm-scored``, which is constructed with ``seed``.  Legacy
    duck-typed objects carrying only a ``kind`` attribute resolve by kind.
    """
    if isinstance(spec, PlacementPolicy):
        return spec
    name = getattr(spec, "kind", spec)
    if isinstance(name, str):
        kind = POLICY_ALIASES.get(name.strip().lower())
        if kind == "swarm-scored":
            return SwarmScoredPolicy(seed=seed)
        if kind is not None:
            return _REGISTRY[kind]()
    raise ValueError(f"policy must be one of {POLICY_KINDS}, got {spec!r}")


__all__ = [
    "POLICY_KINDS",
    "POLICY_ALIASES",
    "Placement",
    "PlacementPolicy",
    "FirstFitPolicy",
    "RoundRobinPolicy",
    "BalancedPolicy",
    "BestFitPolicy",
    "WorstFitPolicy",
    "SolarBudgetPolicy",
    "SwarmScoredPolicy",
    "normalize_kind",
    "resolve_policy",
]
