"""Incrementally-updatable slot state: the live core of the allocator.

The batch :class:`~repro.core.allocator.Allocator` answers "given these
clients, what is the layout?" in one shot.  A *serving* orchestrator
(:mod:`repro.serve`) needs the same answer while clients come and go one
request at a time, without re-running the batch fold per admission.
:class:`LiveAllocation` is that structure: a canonical, policy-shaped slot
layout maintained under ``admit`` / ``release`` / ``repack_on_failure``.

Design
------
The state is *rank-derived*: the structure stores only the admission order
of the surviving clients (a sequence with tombstoned holes plus a Fenwick
tree over the alive flags), and every placement question — which server,
which slot, which position — is answered by a closed-form map from a
client's **rank** (its index among survivors, in admission order) under the
active :class:`~repro.core.placement.PlacementPolicy`.  That gives:

* ``admit``/``release`` in O(log n) (one dict update + one Fenwick update);
* ``placement_of``/``server_of`` in O(log n) (one Fenwick prefix sum);
* ``repack_on_failure`` in O(k log n) for a server holding k clients
  (k Fenwick selects + k release/admit pairs);
* ``to_allocation`` in O(n), materializing a batch
  :class:`~repro.core.allocator.Allocation` bit-identical to what the
  batch policy would produce for the surviving clients in admission order.

Because the layout is always the canonical fold, the equivalence invariant
is structural: **after any interleaving of admit/release/repack, the state
equals the batch policy applied to the surviving client sequence** (pinned
by the hypothesis suite in ``tests/core/test_livealloc.py``).  The batch
policies themselves are expressed as a fold over ``admit`` (see
:meth:`LiveAllocation.bulk_admit` and
:meth:`~repro.core.placement.PlacementPolicy.allocate`), so the online and
batch paths cannot drift: they are one engine — and any new policy written
against the :class:`~repro.core.placement.PlacementPolicy` interface
inherits the guarantee for free.

A consequence worth stating explicitly: unlike the mid-cycle failover
helper :func:`~repro.core.allocator.repack_failed_servers` (which pins the
surviving servers' assignments because their clients' wake-up offsets are
already programmed), :meth:`LiveAllocation.repack_on_failure` *recompacts*
— orphans of the failed logical server re-enter at the tail of the
admission order and every survivor keeps its rank-derived placement, which
may shift down one server index.  The serve layer applies such moves at
the next cycle boundary, where re-slotting is free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.placement import (
    POLICY_KINDS,
    Placement,
    PlacementPolicy,
    resolve_policy,
)
from repro.core.server import SlotPlan
from repro.validate.errors import InvariantViolation

#: Kinds with a specialized O(n) materialize fast path (the PR 8 trio).
_FAST_MATERIALIZE = ("first-fit", "round-robin", "balanced")


class AdmissionFull(RuntimeError):
    """Raised by :meth:`LiveAllocation.admit` when the server budget is spent.

    Carries the rejected ``client_id`` and the binding ``max_servers`` so the
    serve layer can degrade gracefully (the client runs its inference at the
    edge instead).
    """

    def __init__(self, client_id: int, max_servers: int, capacity: int) -> None:
        super().__init__(
            f"cannot admit client {client_id}: all {max_servers} server(s) "
            f"full ({max_servers * capacity} seats)"
        )
        self.client_id = client_id
        self.max_servers = max_servers


@dataclass(frozen=True)
class RepackResult:
    """Outcome of :meth:`LiveAllocation.repack_on_failure`.

    ``orphans`` lists the failed server's clients in slot order;
    ``readmitted`` the ones re-placed (at the tail of the admission order);
    ``dropped`` the ones that no longer fit a reduced server budget.
    """

    orphans: Tuple[int, ...]
    readmitted: Tuple[int, ...]
    dropped: Tuple[int, ...]


class _Fenwick:
    """Append-only Fenwick (binary indexed) tree over 0/1 alive flags.

    Supports O(log n) point update, prefix sum, and *select* (find the
    position of the (r+1)-th alive flag), plus O(n) bulk (re)build.
    """

    __slots__ = ("_tree", "_size", "total")

    def __init__(self) -> None:
        self._tree: List[int] = [0]  # 1-indexed; slot 0 unused
        self._size = 0
        self.total = 0

    def __len__(self) -> int:
        return self._size

    def append(self, bit: int) -> None:
        """Extend the tree by one position holding ``bit``."""
        i = self._size + 1
        # tree[i] aggregates the last lowbit(i) values; derive it from two
        # prefix sums so appends never rebuild.
        t = bit + self.prefix(self._size) - self.prefix(i - (i & -i))
        self._tree.append(t)
        self._size = i
        self.total += bit

    def add(self, pos: int, delta: int) -> None:
        """Add ``delta`` at 0-based ``pos``."""
        self.total += delta
        i = pos + 1
        while i <= self._size:
            self._tree[i] += delta
            i += i & -i

    def prefix(self, count: int) -> int:
        """Sum of the first ``count`` flags (0-based positions < count)."""
        s = 0
        i = count
        while i > 0:
            s += self._tree[i]
            i -= i & -i
        return s

    def select(self, rank: int) -> int:
        """0-based position of the (rank+1)-th alive flag (O(log n))."""
        if not 0 <= rank < self.total:
            raise IndexError(f"rank {rank} outside [0, {self.total})")
        pos = 0
        remaining = rank + 1
        bit = 1 << (self._size.bit_length())
        while bit:
            nxt = pos + bit
            if nxt <= self._size and self._tree[nxt] < remaining:
                remaining -= self._tree[nxt]
                pos = nxt
            bit >>= 1
        return pos  # 0-based: pos is the count of positions strictly before

    def rebuild(self, bits: Sequence[int]) -> None:
        """Replace the contents with ``bits`` in O(n)."""
        n = len(bits)
        tree = [0] * (n + 1)
        for i, b in enumerate(bits, start=1):
            tree[i] += b
            j = i + (i & -i)
            if j <= n:
                tree[j] += tree[i]
        self._tree = tree
        self._size = n
        self.total = sum(bits)


# ---------------------------------------------------------------------------
# batch materialization
# ---------------------------------------------------------------------------


def materialize(policy: object, ordered_ids: Sequence[int], plan: SlotPlan):
    """Batch :class:`~repro.core.allocator.Allocation` of ``ordered_ids``.

    ``policy`` is anything :func:`~repro.core.placement.resolve_policy`
    accepts.  For the PR 8 trio this is bit-identical to what the legacy
    loop-based policies produced — the closed-form layout maps are their
    closed forms (hypothesis-pinned in ``tests/core/test_livealloc.py``);
    the trailing server keeps only its non-empty slots, exactly like the
    original fills.  The generic path (any other policy) buckets every rank
    through ``policy.place`` and lists each server's non-empty slots in
    schedule-ordinal order — so policies that fill slots out of schedule
    order (solar-budget, swarm-scored) leave no gaps in the materialized
    tuple even when high-priority ordinals are late in the cycle.
    """
    from repro.core.allocator import Allocation, ServerAssignment

    pol = resolve_policy(policy)
    ids = list(ordered_ids)
    n = len(ids)
    if n == 0:
        return Allocation((), plan)
    cap, mp, spc = plan.capacity, plan.max_parallel, plan.slots_per_cycle
    kind = pol.kind
    servers = []
    if kind == "first-fit":
        for k, lo in enumerate(range(0, n, cap)):
            chunk = ids[lo : lo + cap]
            slots = tuple(tuple(chunk[s : s + mp]) for s in range(0, len(chunk), mp))
            servers.append(ServerAssignment(k, slots))
    elif kind == "round-robin":
        for k, lo in enumerate(range(0, n, cap)):
            chunk = ids[lo : lo + cap]
            slots = tuple(tuple(chunk[s::spc]) for s in range(min(spc, len(chunk))))
            servers.append(ServerAssignment(k, slots))
    elif kind == "balanced":
        from repro.core.placement import _balanced_geometry

        n_servers, base, extra = _balanced_geometry(n, plan)
        pos = 0
        g = 0
        for k in range(n_servers):
            slots = []
            for _ in range(spc):
                take = base + (1 if g < extra else 0)
                g += 1
                if take == 0:
                    continue
                slots.append(tuple(ids[pos : pos + take]))
                pos += take
            servers.append(ServerAssignment(k, tuple(slots)))
    else:
        buckets: Dict[int, Dict[int, List[Tuple[int, int]]]] = {}
        for rank, cid in enumerate(ids):
            p = pol.place(rank, n, plan)
            buckets.setdefault(p.server, {}).setdefault(p.slot, []).append(
                (p.position, cid)
            )
        for k in range(pol.n_servers(n, plan)):
            slots_of = buckets.get(k, {})
            slots = tuple(
                tuple(cid for _, cid in sorted(slots_of[ordinal]))
                for ordinal in sorted(slots_of)
            )
            servers.append(ServerAssignment(k, slots))
    alloc = Allocation(tuple(servers), plan)
    alloc.validate()
    return alloc


# ---------------------------------------------------------------------------
# the live structure
# ---------------------------------------------------------------------------


class LiveAllocation:
    """Online admit/release/repack over the batch allocator's slot geometry.

    Parameters
    ----------
    plan:
        Resolved slot geometry (:class:`~repro.core.server.SlotPlan`).
    policy:
        A filling-policy kind (one of
        :data:`~repro.core.placement.POLICY_KINDS`, aliases accepted) or a
        :class:`~repro.core.placement.PlacementPolicy` instance — pass the
        instance when sharing memoized score tables with a batch
        :class:`~repro.core.allocator.Allocator`.
    max_servers:
        Optional server budget.  ``None`` (default) is the elastic-cloud
        batch semantics — a new logical server opens whenever needed;
        an integer makes :meth:`admit` raise :class:`AdmissionFull` once
        ``max_servers × plan.capacity`` clients are seated.
    """

    #: Dead fraction beyond which release() compacts the tombstoned
    #: sequence (amortized O(1) extra per release).
    _COMPACT_MIN_DEAD = 32

    def __init__(
        self,
        plan: SlotPlan,
        policy: object = "first-fit",
        max_servers: Optional[int] = None,
    ) -> None:
        self.policy: PlacementPolicy = resolve_policy(policy)
        if max_servers is not None and max_servers < 0:
            raise ValueError(f"max_servers must be >= 0, got {max_servers}")
        self.plan = plan
        self.kind = self.policy.kind
        self.max_servers = max_servers
        self._seq: List[Optional[int]] = []  # admission order; None = released
        self._index: Dict[int, int] = {}  # client id -> position in _seq
        self._bit = _Fenwick()
        self._dead = 0

    # -- size & membership --------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, client_id: int) -> bool:
        return client_id in self._index

    @property
    def n_clients(self) -> int:
        return len(self._index)

    @property
    def n_servers(self) -> int:
        n = len(self._index)
        return math.ceil(n / self.plan.capacity) if n else 0

    @property
    def capacity_left(self) -> Optional[int]:
        """Seats left under ``max_servers`` (``None`` when elastic)."""
        if self.max_servers is None:
            return None
        return self.max_servers * self.plan.capacity - len(self._index)

    # -- mutation ------------------------------------------------------------
    def admit(self, client_id: int) -> Placement:
        """Seat ``client_id`` at the tail of the admission order (O(log n)).

        Raises :class:`~repro.validate.errors.InvariantViolation` on a
        duplicate admission (same contract as the batch validator) and
        :class:`AdmissionFull` when a ``max_servers`` budget is exhausted.
        """
        if client_id in self._index:
            raise InvariantViolation(
                "slot-occupancy",
                f"client {client_id} allocated twice",
                {"client_id": client_id},
            )
        if (
            self.max_servers is not None
            and len(self._index) >= self.max_servers * self.plan.capacity
        ):
            raise AdmissionFull(client_id, self.max_servers, self.plan.capacity)
        pos = len(self._seq)
        self._seq.append(client_id)
        self._index[client_id] = pos
        self._bit.append(1)
        return self.placement_of(client_id)

    def bulk_admit(self, client_ids: Iterable[int]) -> int:
        """Fold :meth:`admit` over ``client_ids``; returns the count seated.

        Semantically identical to ``for cid in client_ids: admit(cid)``
        (hypothesis-pinned) but rebuilds the Fenwick tree once instead of
        per admission, so the batch policies can run their allocation as a
        fold without an O(n log n) constant.
        """
        count = 0
        budget = (
            None
            if self.max_servers is None
            else self.max_servers * self.plan.capacity - len(self._index)
        )
        for cid in client_ids:
            if cid in self._index:
                # roll nothing back: the structure is still consistent (the
                # Fenwick rebuild below covers everything appended so far).
                self._bit.rebuild([1 if c is not None else 0 for c in self._seq])
                raise InvariantViolation(
                    "slot-occupancy",
                    f"client {cid} allocated twice",
                    {"client_id": cid},
                )
            if budget is not None and count >= budget:
                self._bit.rebuild([1 if c is not None else 0 for c in self._seq])
                raise AdmissionFull(cid, self.max_servers, self.plan.capacity)
            self._index[cid] = len(self._seq)
            self._seq.append(cid)
            count += 1
        self._bit.rebuild([1 if c is not None else 0 for c in self._seq])
        return count

    def release(self, client_id: int) -> None:
        """Free ``client_id``'s seat (O(log n) amortized).

        Later-admitted clients' rank-derived placements shift down to fill
        the hole, preserving the canonical batch layout over survivors.
        Raises :class:`KeyError` for a client that is not seated.
        """
        pos = self._index.pop(client_id)
        self._seq[pos] = None
        self._bit.add(pos, -1)
        self._dead += 1
        if self._dead > self._COMPACT_MIN_DEAD and self._dead > len(self._index):
            self._compact()

    def repack_on_failure(
        self, server_index: int, reduce_capacity: bool = False,
        policy_order: bool = False,
    ) -> RepackResult:
        """React to the loss of logical server ``server_index``.

        The failed server's clients (gathered in slot order, the same order
        :func:`~repro.core.allocator.repack_failed_servers` uses) are
        released and re-admitted at the tail of the admission order, so the
        state stays the canonical batch fold over the surviving sequence.
        With ``reduce_capacity=True`` and a finite ``max_servers``, the
        budget shrinks by one first — orphans that no longer fit are
        *dropped* (returned for the edge-fallback path) instead of seated.

        With ``policy_order=True`` the orphans' *readmission order* is
        steered by the policy's
        :meth:`~repro.core.placement.PlacementPolicy.repack_preference`:
        the tail seats the orphans will occupy are previewed, ranked by
        preference, and the slot-order orphan queue is dealt onto the
        seats most-preferred-first — so a best-fit repack tops up full
        slots with its highest-priority orphans while a policy with a
        constant preference (the default) keeps the historical order
        exactly.  The final *layout* is rank-derived either way; only
        which orphan lands in which tail seat changes.

        O(k log n) for k orphans.
        """
        if not 0 <= server_index < self.n_servers:
            known = ", ".join(str(i) for i in range(self.n_servers))
            raise ValueError(
                f"no server {server_index} in allocation (servers: {known})"
            )
        orphans = self._server_members_slot_order(server_index)
        for cid in orphans:
            self.release(cid)
        if reduce_capacity and self.max_servers is not None:
            self.max_servers = max(0, self.max_servers - 1)
        admit_order = list(orphans)
        if policy_order and len(orphans) > 1:
            admit_order = self._policy_readmission_order(orphans)
        readmitted: List[int] = []
        dropped: List[int] = []
        for cid in admit_order:
            try:
                self.admit(cid)
            except AdmissionFull:
                dropped.append(cid)
            else:
                readmitted.append(cid)
        return RepackResult(tuple(orphans), tuple(readmitted), tuple(dropped))

    def _policy_readmission_order(self, orphans: List[int]) -> List[int]:
        """Deal slot-ordered orphans onto their previewed tail seats,
        most-preferred seat first (stable: a constant preference is the
        identity, preserving the historical admit order bit-for-bit)."""
        n0 = len(self._index)
        k = len(orphans)
        final_n = n0 + k
        n_servers = self.policy.n_servers(final_n, self.plan)
        prefs = []
        for i in range(k):
            p = self.policy.place(n0 + i, final_n, self.plan)
            occ = self.policy.slot_occupancy(p, final_n, self.plan)
            prefs.append(
                self.policy.repack_preference(p.server, p.slot, occ, self.plan, n_servers)
            )
        seat_order = sorted(range(k), key=lambda i: (prefs[i], i))
        order: List[Optional[int]] = [None] * k
        for priority, seat in enumerate(seat_order):
            order[seat] = orphans[priority]
        return [cid for cid in order if cid is not None]

    # -- queries -------------------------------------------------------------
    def rank_of(self, client_id: int) -> int:
        """Index of ``client_id`` among survivors, in admission order."""
        try:
            pos = self._index[client_id]
        except KeyError:
            raise KeyError(f"client {client_id} is not allocated") from None
        return self._bit.prefix(pos)

    def placement_of(self, client_id: int) -> Placement:
        """Closed-form (server, slot, position) for ``client_id`` (O(log n))."""
        return self.policy.place(self.rank_of(client_id), len(self._index), self.plan)

    def server_of(self, client_id: int) -> int:
        return self.placement_of(client_id).server

    def slot_occupancy(self, placement: Placement) -> int:
        """Number of clients sharing ``placement``'s (server, slot) (O(1))."""
        return self.policy.slot_occupancy(placement, len(self._index), self.plan)

    def client_ids(self) -> List[int]:
        """Surviving client ids in admission order (O(n))."""
        return [cid for cid in self._seq if cid is not None]

    def to_allocation(self):
        """Materialize the canonical batch :class:`Allocation` (O(n))."""
        return materialize(self.policy, self.client_ids(), self.plan)

    # -- invariants ----------------------------------------------------------
    def check(self) -> None:
        """Verify internal consistency and the slot-occupancy invariants.

        Raises :class:`~repro.validate.errors.InvariantViolation` on any
        breach; used by the property suite after every step.
        """
        if len(self._bit) != len(self._seq):
            raise InvariantViolation(
                "live-allocation",
                f"Fenwick spans {len(self._bit)} positions, sequence {len(self._seq)}",
                {},
            )
        if self._bit.total != len(self._index):
            raise InvariantViolation(
                "live-allocation",
                f"Fenwick counts {self._bit.total} alive, index holds {len(self._index)}",
                {},
            )
        for cid, pos in self._index.items():
            if self._seq[pos] != cid:
                raise InvariantViolation(
                    "live-allocation",
                    f"index maps client {cid} to position {pos} holding {self._seq[pos]!r}",
                    {"client_id": cid},
                )
        if self.max_servers is not None and self.n_servers > self.max_servers:
            raise InvariantViolation(
                "live-allocation",
                f"{self.n_servers} servers open under a budget of {self.max_servers}",
                {},
            )
        alloc = self.to_allocation()  # validates slot occupancy itself
        if alloc.n_clients != len(self._index):
            raise InvariantViolation(
                "live-allocation",
                f"materialized allocation seats {alloc.n_clients} clients, "
                f"live state holds {len(self._index)}",
                {},
            )

    # -- internals -----------------------------------------------------------
    def _server_members_slot_order(self, server_index: int) -> List[int]:
        """Clients of one logical server, in slot order (O(k log n)).

        The policy names the server's ranks; each rank's placement then
        orders the members by (slot ordinal, position) — for the PR 8 trio
        this reproduces the historical gathering order exactly.
        """
        n = len(self._index)
        ranks = self.policy.server_ranks(server_index, n, self.plan)
        members = []
        for r in ranks:
            p = self.policy.place(r, n, self.plan)
            members.append((p.slot, p.position, self._seq[self._bit.select(r)]))
        members.sort(key=lambda item: (item[0], item[1]))
        return [cid for _, _, cid in members]  # type: ignore[misc]

    def _compact(self) -> None:
        """Drop tombstones; survivor order (and thus every rank) is unchanged."""
        self._seq = [cid for cid in self._seq if cid is not None]
        self._index = {cid: pos for pos, cid in enumerate(self._seq)}
        self._bit.rebuild([1] * len(self._seq))
        self._dead = 0


__all__ = [
    "POLICY_KINDS",
    "AdmissionFull",
    "Placement",
    "RepackResult",
    "LiveAllocation",
    "materialize",
]
